//! Per-tenant mutable runtime of one cyber range: a [`RangeState`].
//!
//! Everything that changes while an exercise runs lives here — the emulated
//! network with its attached virtual devices, the process store, the
//! tenant's clone of the power model, retained statistics, fault plans —
//! while everything derived from the model files stays in the shared
//! immutable [`CompiledModel`](crate::CompiledModel). Instantiation clones
//! the pristine power model and stamps out fresh device instances from the
//! compiled blueprints; no XML or Structured Text is ever re-parsed.

use crate::keymap;
use crate::model::CompiledModel;
use crate::range::{RangeError, StepStats};
use sgcr_faults::{DegradationSignal, LinkFault, SensorFault};
use sgcr_ied::{IedHandle, VirtualIedApp};
use sgcr_kvstore::{ProcessStore, Value};
use sgcr_net::{AppPlane, Ipv4Addr, LinkSpec, Network, NodeId, SimDuration, SimTime, SocketApp};
use sgcr_obs::{buckets, Counter, Event as ObsEvent, Gauge, Histogram, Plane, Telemetry};
use sgcr_plc::{PlcApp, PlcHandle, PlcRuntime};
use sgcr_powerflow::{
    solve_traced, PowerFlowError, PowerFlowResult, PowerNetwork, SimulationSchedule, SolveOptions,
};
use sgcr_scada::{ScadaApp, ScadaHandle};
use std::collections::{HashMap, VecDeque};

/// Default bound on retained per-step statistics — large enough for any of
/// the paper's experiments, small enough to cap a long-running range.
pub const DEFAULT_STEP_STATS_CAPACITY: usize = 65_536;

/// Default bound on retained solve errors. A persistently diverging model
/// fails every step, so retention must be capped the same way as step
/// statistics; [`RangeState::solve_errors_total`] keeps the lifetime count.
pub const DEFAULT_SOLVE_ERRORS_CAPACITY: usize = 1_024;

/// Per-tenant instantiation settings — everything about a range that is
/// *not* derived from the model files. Captured by
/// [`RangeSnapshot`](crate::RangeSnapshot) so a restored range replays
/// byte-identically.
#[derive(Debug, Clone)]
pub struct RangeSettings {
    /// Step-interval override (`None` = the model's interval).
    pub interval: Option<SimDuration>,
    /// Bound on retained [`StepStats`] records.
    pub step_stats_capacity: usize,
    /// Bound on retained solve errors.
    pub solve_errors_capacity: usize,
    /// Deterministic fault-injection seed (`None` = seed 0).
    pub fault_seed: Option<u64>,
}

impl Default for RangeSettings {
    fn default() -> RangeSettings {
        RangeSettings {
            interval: None,
            step_stats_capacity: DEFAULT_STEP_STATS_CAPACITY,
            solve_errors_capacity: DEFAULT_SOLVE_ERRORS_CAPACITY,
            fault_seed: None,
        }
    }
}

/// The mutable simulation state of one tenant's cyber range.
///
/// Constructed through
/// [`RangeBuilder::from_model`](crate::RangeBuilder::from_model) (or
/// [`CyberRange::instantiate`](crate::CyberRange::instantiate));
/// [`CyberRange`](crate::CyberRange) dereferences to this type, so every
/// method here is available on a range directly.
pub struct RangeState {
    /// The emulated network (attach attacker tools, capture traffic, …).
    pub net: Network,
    /// The cyber↔physical process cache.
    pub store: ProcessStore,
    /// This tenant's physical model (cloned from the compiled model).
    pub power: PowerNetwork,
    /// This tenant's simulation schedule (profiles advance per tenant).
    pub schedule: SimulationSchedule,
    /// Power-flow step interval.
    pub interval: SimDuration,
    /// Handles to every virtual IED, by name.
    pub ieds: HashMap<String, IedHandle>,
    /// Handles to every virtual PLC, by name.
    pub plcs: HashMap<String, PlcHandle>,
    /// Handle to the SCADA HMI, when configured.
    pub scada: Option<ScadaHandle>,
    /// The latest power-flow solution.
    pub last_result: PowerFlowResult,
    /// Per-step wall-clock statistics, bounded to `step_stats_capacity`.
    step_stats: VecDeque<StepStats>,
    step_stats_capacity: usize,
    /// Lifetime number of power-flow steps executed.
    steps_total: u64,
    /// Errors from failed re-solves (range keeps running with stale state),
    /// bounded to `solve_errors_capacity`.
    solve_errors: VecDeque<(u64, PowerFlowError)>,
    solve_errors_capacity: usize,
    /// Lifetime number of failed re-solves.
    solve_errors_total: u64,
    /// Degradation flags shared with every virtual IED and the SCADA HMI;
    /// raised while `last_result` is a held (stale) solution.
    degradation_signals: Vec<DegradationSignal>,
    /// `steps_total` at the moment the current hold began, if holding.
    held_since_step: Option<u64>,
    /// Crashed hosts due to come back: `(node, host name, restart at ms)`.
    restart_plans: Vec<(NodeId, String, u64)>,
    telemetry: Telemetry,
    steps_counter: Counter,
    step_seconds_hist: Histogram,
    overrun_gauge: Gauge,
    overrun_counter: Counter,
    /// Per-plane wall-time attribution histograms (`step.plane.*`); all
    /// detached no-ops when telemetry is off.
    plane_hists: PlaneHists,
    cmd_cursor: u64,
    node_by_name: HashMap<String, NodeId>,
    /// Simulation time of the next due power-flow step.
    next_step_at: SimTime,
    /// Simulation time of the previous power-flow step (profile window start).
    last_step_ms: u64,
}

/// Resolved `step.plane.*` histograms: where one co-simulation step's wall
/// time goes. `power` is the power-flow solve, `net` is event-loop dispatch
/// *outside* application code, and the rest attribute time spent inside the
/// device applications by [`AppPlane`]. The timed intervals are disjoint
/// sub-intervals of the step, so their sum never exceeds the step's total
/// wall time.
struct PlaneHists {
    power: Histogram,
    net: Histogram,
    ied: Histogram,
    plc: Histogram,
    scada: Histogram,
    other: Histogram,
}

impl PlaneHists {
    fn resolve(telemetry: &Telemetry) -> PlaneHists {
        let hist = |name: &str| telemetry.histogram(name, &buckets::LATENCY_SECONDS);
        PlaneHists {
            power: hist("step.plane.power_seconds"),
            net: hist("step.plane.net_seconds"),
            ied: hist("step.plane.ied_seconds"),
            plc: hist("step.plane.plc_seconds"),
            scada: hist("step.plane.scada_seconds"),
            other: hist("step.plane.other_seconds"),
        }
    }
}

impl RangeState {
    /// Instantiates fresh per-tenant state from a compiled model: builds the
    /// emulated network from the plan, stamps out virtual devices from the
    /// blueprints, clones the pristine power model, and solves + publishes
    /// the initial physical state.
    ///
    /// # Errors
    ///
    /// Returns [`RangeError::PowerFlow`] when the initial power flow cannot
    /// be solved. (Model-shaped failures — bad XML, unknown hosts, invalid
    /// programs — are compile-time errors and cannot occur here.)
    pub(crate) fn instantiate(
        model: &CompiledModel,
        settings: &RangeSettings,
        telemetry: Telemetry,
    ) -> Result<RangeState, RangeError> {
        // --- Emulated network from the plan --------------------------------
        let mut net = Network::new();
        net.set_telemetry(telemetry.clone());
        if let Some(seed) = settings.fault_seed {
            net.set_fault_seed(seed);
        }
        let mut node_by_name: HashMap<String, NodeId> = HashMap::new();
        let mut switch_by_name: HashMap<String, NodeId> = HashMap::new();
        let mut wan: Option<NodeId> = None;
        for sw in &model.plan.switches {
            let id = net.add_switch(&sw.name);
            switch_by_name.insert(sw.name.clone(), id);
            if sw.is_wan {
                wan = Some(id);
            }
        }
        if let Some(wan) = wan {
            for sw in &model.plan.switches {
                if !sw.is_wan {
                    net.connect(switch_by_name[&sw.name], wan, LinkSpec::wan());
                }
            }
        }
        for host in &model.plan.hosts {
            let id = match host.mac {
                Some(mac) => net.add_host_with_mac(&host.name, host.ip, mac),
                None => net.add_host(&host.name, host.ip),
            };
            net.connect(id, switch_by_name[&host.switch], LinkSpec::default());
            node_by_name.insert(host.name.clone(), id);
        }

        let store = ProcessStore::new();
        let interval = settings.interval.unwrap_or(model.interval);

        // --- Virtual IEDs from compiled specs ------------------------------
        let mut ieds = HashMap::new();
        for spec in &model.ieds {
            let Some(&node) = node_by_name.get(&spec.name) else {
                return Err(RangeError::UnknownHost {
                    host: spec.name.clone(),
                    referenced_by: "IED Config XML",
                });
            };
            let (app, handle) =
                VirtualIedApp::with_telemetry(spec.clone(), store.clone(), telemetry.clone());
            net.attach_app(node, Box::new(app));
            ieds.insert(spec.name.clone(), handle);
        }

        // --- Virtual PLCs from compiled programs ---------------------------
        let mut plcs = HashMap::new();
        for def in &model.plcs {
            let Some(&node) = node_by_name.get(&def.name) else {
                return Err(RangeError::UnknownHost {
                    host: def.name.clone(),
                    referenced_by: "PLC Config XML",
                });
            };
            let registers = sgcr_modbus::SharedRegisters::with_size(1024);
            let runtime = PlcRuntime::new(def.program.clone(), registers.clone()).map_err(|e| {
                RangeError::Model {
                    what: "PLC program",
                    detail: e.message,
                }
            })?;
            let (mut app, handle) = PlcApp::with_telemetry(
                runtime,
                registers,
                SimDuration::from_millis(def.scan_ms),
                def.reads.clone(),
                def.writes.clone(),
                telemetry.clone(),
            );
            if !def.gooses.is_empty() {
                app.set_goose_bindings(def.gooses.clone());
            }
            net.attach_app(node, Box::new(app));
            plcs.insert(def.name.clone(), handle);
        }

        // --- SCADA HMI ------------------------------------------------------
        let mut scada = None;
        if let Some(blueprint) = &model.scada {
            let Some(&node) = node_by_name.get(&blueprint.host) else {
                return Err(RangeError::UnknownHost {
                    host: blueprint.host.clone(),
                    referenced_by: "SCADA Config XML",
                });
            };
            let (app, handle) =
                ScadaApp::with_telemetry(blueprint.config.clone(), telemetry.clone());
            net.attach_app(node, Box::new(app));
            scada = Some(handle);
        }

        // --- Initial physical state ----------------------------------------
        // Share one degradation flag per consumer: the range raises them all
        // while it is holding a stale solution, IEDs stamp measurement
        // quality `invalid`, SCADA degrades incoming tag quality.
        let mut degradation_signals: Vec<DegradationSignal> =
            ieds.values().map(IedHandle::degradation).collect();
        if let Some(scada) = &scada {
            degradation_signals.push(scada.degradation());
        }
        let mut state = RangeState {
            net,
            store,
            power: model.power.clone(),
            schedule: model.schedule.clone(),
            interval,
            ieds,
            plcs,
            scada,
            last_result: PowerFlowResult::default(),
            step_stats: VecDeque::new(),
            step_stats_capacity: settings.step_stats_capacity,
            steps_total: 0,
            solve_errors: VecDeque::new(),
            solve_errors_capacity: settings.solve_errors_capacity,
            solve_errors_total: 0,
            degradation_signals,
            held_since_step: None,
            restart_plans: Vec::new(),
            steps_counter: telemetry.counter("range.steps"),
            step_seconds_hist: telemetry.histogram("range.step_seconds", &buckets::LATENCY_SECONDS),
            overrun_gauge: telemetry.gauge("range.step_overrun_ratio"),
            overrun_counter: telemetry.counter("range.step_overruns"),
            plane_hists: PlaneHists::resolve(&telemetry),
            telemetry,
            cmd_cursor: 0,
            node_by_name,
            next_step_at: SimTime::ZERO + interval,
            last_step_ms: 0,
        };
        // Publish the initial switch states and solution before anything runs.
        state.publish_switch_states();
        let tracer = state.telemetry.tracer();
        let init_span = tracer.open("range.init", Plane::Range, None, 0u64);
        let (result, solve_ctx) = solve_traced(
            &state.power,
            &SolveOptions::default(),
            &state.telemetry,
            0,
            init_span.ctx(),
        );
        let result = result.map_err(RangeError::PowerFlow)?;
        if let Some(solve_ctx) = solve_ctx {
            // Device samples taken before the first step trace to this solve.
            tracer.set_provenance("power.solve", solve_ctx);
        }
        init_span.end(0u64);
        state.publish_measurements(&result);
        state.last_result = result;
        state.cmd_cursor = state.store.version();
        Ok(state)
    }

    /// The node id of a generated host (for captures, link failures, …).
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.node_by_name.get(name).copied()
    }

    /// Adds an extra host (e.g. an attacker machine) to a named switch.
    ///
    /// # Panics
    ///
    /// Panics if the switch does not exist.
    pub fn add_host(&mut self, name: &str, ip: Ipv4Addr, switch: &str) -> NodeId {
        let switch_id = self
            .net
            .node_by_name(switch)
            .unwrap_or_else(|| panic!("no such switch {switch:?}"));
        let id = self.net.add_host(name, ip);
        self.net.connect(id, switch_id, LinkSpec::default());
        self.node_by_name.insert(name.to_string(), id);
        id
    }

    /// Attaches an application to a generated host.
    ///
    /// # Panics
    ///
    /// Panics if the host does not exist.
    pub fn attach_app(&mut self, host: &str, app: Box<dyn SocketApp>) {
        let node = self
            .node(host)
            .unwrap_or_else(|| panic!("no such host {host:?}"));
        self.net.attach_app(node, app);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Runs one co-simulation step: advances the cyber side to the next due
    /// step time, then applies profiles/events → commands → solve → publish.
    ///
    /// The step's wall time is attributed per plane into the `step.plane.*`
    /// histograms: power solve, net dispatch, and app execution by
    /// [`AppPlane`] (IED / PLC / SCADA / other). Each timed interval is a
    /// disjoint sub-interval of the step on the same monotonic clock, so the
    /// summed plane time never exceeds the step's total wall time.
    pub fn step(&mut self) {
        let wall_start = std::time::Instant::now();
        let due = self.next_step_at.max(self.net.now());
        // App time accumulated between steps (the trailing remainder of
        // `run_for`) belongs to no step; discard it so plane attribution
        // stays within this step's wall-time envelope.
        let _ = self.net.take_plane_nanos();
        self.net.run_until(due);
        let net_elapsed = wall_start.elapsed().as_secs_f64();
        self.power_step(due, wall_start, net_elapsed);
        self.next_step_at = due + self.interval;
    }

    /// The physical half of one step, executed with the clock at `now`.
    /// `wall_start` is the instant the whole step (including the cyber
    /// advance) began; `net_elapsed` is the wall time `run_until` took.
    fn power_step(&mut self, now: SimTime, wall_start: std::time::Instant, net_elapsed: f64) {
        let t1 = now;
        let t0_ms = self.last_step_ms;
        self.last_step_ms = t1.as_millis();

        // Root span of this step's trace: everything the solve causes —
        // device samples, protection operations, GOOSE, SCADA updates —
        // hangs transitively below it.
        let tracer = self.telemetry.tracer();
        let mut step_span = tracer.open("range.step", Plane::Range, None, t1);
        if step_span.is_recording() {
            step_span.attr("step", (self.steps_total + 1).to_string());
        }

        // Crash watchdog: bring crashed hosts back when their restart is due.
        if !self.restart_plans.is_empty() {
            let now_ms = t1.as_millis();
            let mut i = 0;
            while i < self.restart_plans.len() {
                if self.restart_plans[i].2 <= now_ms {
                    let (node, host, _) = self.restart_plans.swap_remove(i);
                    self.net.set_host_enabled(node, true);
                    self.telemetry
                        .record(t1.as_nanos(), || ObsEvent::DeviceRestarted {
                            host: host.clone(),
                        });
                } else {
                    i += 1;
                }
            }
        }

        // Profiles and scheduled disturbances.
        self.schedule.apply(&mut self.power, t0_ms, t1.as_millis());

        // Commands written by the cyber side since the last step.
        let changes = self.store.changes_since(self.cmd_cursor);
        self.cmd_cursor = self.store.version();
        for change in changes {
            if !change.key.starts_with("cmd/") {
                continue;
            }
            let segments: Vec<&str> = change.key.split('/').collect();
            // cmd/<sub>/<class>/<name>/<field>
            if segments.len() != 5 {
                continue;
            }
            let scoped = format!("{}/{}", segments[1], segments[2 + 1]);
            match (segments[2], segments[4]) {
                ("cb", "close") => {
                    if let Some(closed) = change.value.as_bool() {
                        self.power.set_switch(&scoped, closed);
                    }
                }
                ("load", "p_mw") => {
                    if let (Some(p), Some(id)) =
                        (change.value.as_float(), self.power.load_by_name(&scoped))
                    {
                        self.power.load[id.index()].p_mw = p;
                    }
                }
                ("gen", "p_mw") => {
                    if let Some(p) = change.value.as_float() {
                        if let Some(id) = self.power.gen_by_name(&scoped) {
                            self.power.gen[id.index()].p_mw = p;
                        } else if let Some(id) = self.power.sgen_by_name(&scoped) {
                            self.power.sgen[id.index()].p_mw = p;
                        }
                    }
                }
                _ => {}
            }
        }

        // Solve and publish.
        let solve_start = std::time::Instant::now();
        let (solved, solve_ctx) = solve_traced(
            &self.power,
            &SolveOptions::default(),
            &self.telemetry,
            t1.as_nanos(),
            step_span.ctx(),
        );
        match solved {
            Ok(result) => {
                if let Some(solve_ctx) = solve_ctx {
                    // Until the next solve, IED samples are caused by this
                    // one: they read the measurements it publishes.
                    tracer.set_provenance("power.solve", solve_ctx);
                }
                self.publish_switch_states();
                self.publish_measurements(&result);
                self.last_result = result;
                if let Some(since) = self.held_since_step.take() {
                    // Recovered: fresh measurements flow again.
                    for signal in &self.degradation_signals {
                        signal.set(false);
                    }
                    let held_steps = self.steps_total - since;
                    self.telemetry
                        .record(t1.as_nanos(), || ObsEvent::MeasurementsRecovered {
                            held_steps,
                        });
                }
            }
            Err(e) => {
                let detail = e.to_string();
                if self.solve_errors.len() == self.solve_errors_capacity {
                    self.solve_errors.pop_front();
                }
                self.solve_errors.push_back((t1.as_millis(), e));
                self.solve_errors_total += 1;
                if self.held_since_step.is_none() {
                    // Graceful degradation: keep serving the last-good
                    // solution, but tell every consumer it is stale.
                    self.held_since_step = Some(self.steps_total);
                    for signal in &self.degradation_signals {
                        signal.set(true);
                    }
                    self.telemetry
                        .record(t1.as_nanos(), || ObsEvent::MeasurementsHeld {
                            detail: detail.clone(),
                        });
                }
            }
        }
        let solve_seconds = solve_start.elapsed().as_secs_f64();
        let total_seconds = wall_start.elapsed().as_secs_f64();

        if self.telemetry.is_enabled() {
            let app_nanos = self.net.take_plane_nanos();
            let ied = app_nanos[AppPlane::Ied.index()] as f64 * 1e-9;
            let plc = app_nanos[AppPlane::Plc.index()] as f64 * 1e-9;
            let scada = app_nanos[AppPlane::Scada.index()] as f64 * 1e-9;
            let other = app_nanos[AppPlane::Other.index()] as f64 * 1e-9;
            // Event-loop dispatch outside app code: the cyber advance's wall
            // time minus the time spent inside applications.
            let net_dispatch = (net_elapsed - (ied + plc + scada + other)).max(0.0);
            self.plane_hists.power.observe(solve_seconds);
            self.plane_hists.net.observe(net_dispatch);
            self.plane_hists.ied.observe(ied);
            self.plane_hists.plc.observe(plc);
            self.plane_hists.scada.observe(scada);
            self.plane_hists.other.observe(other);
        }

        if self.step_stats.len() == self.step_stats_capacity {
            self.step_stats.pop_front();
        }
        self.step_stats.push_back(StepStats {
            solve_seconds,
            total_seconds,
            iterations: self.last_result.iterations,
        });
        self.steps_total += 1;

        self.steps_counter.inc();
        self.step_seconds_hist.observe(total_seconds);
        let budget = self.interval.as_secs_f64();
        if budget > 0.0 {
            let ratio = total_seconds / budget;
            self.overrun_gauge.set(ratio);
            if ratio > 1.0 {
                self.overrun_counter.inc();
                let step = self.steps_total;
                self.telemetry
                    .record(t1.as_nanos(), || ObsEvent::StepOverrun { step, ratio });
            }
        }
        step_span.end(t1);
    }

    /// Runs the range for a duration. Power-flow steps fire at their due
    /// times on the global schedule (every `interval`), interleaved with the
    /// cyber side; any trailing remainder advances the cyber side alone, and
    /// the pending step fires in a later call — so short durations compose
    /// correctly.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.net.now() + duration;
        while self.next_step_at <= end {
            self.step();
        }
        if self.net.now() < end {
            self.net.run_until(end);
        }
    }

    fn publish_switch_states(&self) {
        for switch in &self.power.switch {
            self.store.set(
                &keymap::breaker_state_key(&switch.name),
                Value::Bool(switch.closed),
            );
        }
    }

    fn publish_measurements(&self, result: &PowerFlowResult) {
        for (i, bus) in self.power.bus.iter().enumerate() {
            let r = &result.bus[i];
            self.store
                .set(&keymap::bus_vm_key(&bus.name), Value::Float(r.vm_pu));
            self.store
                .set(&keymap::bus_va_key(&bus.name), Value::Float(r.va_degree));
        }
        for (i, line) in self.power.line.iter().enumerate() {
            let r = &result.line[i];
            self.store
                .set(&keymap::branch_p_key(&line.name), Value::Float(r.p_from_mw));
            self.store.set(
                &keymap::branch_q_key(&line.name),
                Value::Float(r.q_from_mvar),
            );
            self.store
                .set(&keymap::branch_i_key(&line.name), Value::Float(r.i_from_ka));
            self.store.set(
                &keymap::branch_loading_key(&line.name),
                Value::Float(r.loading_percent),
            );
        }
        for (i, trafo) in self.power.trafo.iter().enumerate() {
            let r = &result.trafo[i];
            self.store.set(
                &keymap::branch_p_key(&trafo.name),
                Value::Float(r.p_from_mw),
            );
            self.store.set(
                &keymap::branch_q_key(&trafo.name),
                Value::Float(r.q_from_mvar),
            );
            self.store.set(
                &keymap::branch_i_key(&trafo.name),
                Value::Float(r.i_from_ka),
            );
            self.store.set(
                &keymap::branch_loading_key(&trafo.name),
                Value::Float(r.loading_percent),
            );
        }
        for (i, eg) in self.power.ext_grid.iter().enumerate() {
            self.store.set(
                &keymap::source_p_key(&eg.name),
                Value::Float(result.ext_grid[i].p_mw),
            );
        }
        for (i, gen) in self.power.gen.iter().enumerate() {
            self.store.set(
                &keymap::source_p_key(&gen.name),
                Value::Float(result.gen[i].p_mw),
            );
        }
        for sgen in &self.power.sgen {
            let p = if sgen.in_service {
                sgen.p_mw * sgen.scaling
            } else {
                0.0
            };
            self.store
                .set(&keymap::source_p_key(&sgen.name), Value::Float(p));
        }
        for load in &self.power.load {
            let p = if load.in_service {
                load.p_mw * load.scaling
            } else {
                0.0
            };
            self.store
                .set(&keymap::load_p_key(&load.name), Value::Float(p));
        }
        self.store
            .set("sim/step", Value::Int(self.steps_total as i64));
    }

    /// Retained per-step wall-clock statistics, oldest first. Retention is
    /// bounded (see [`RangeBuilder::step_stats_capacity`](crate::RangeBuilder::step_stats_capacity));
    /// use [`steps_total`](RangeState::steps_total) for the lifetime count.
    pub fn step_stats(&self) -> impl ExactSizeIterator<Item = &StepStats> + '_ {
        self.step_stats.iter()
    }

    /// Lifetime number of power-flow steps executed (monotonic even after
    /// old [`StepStats`] records are evicted).
    pub fn steps_total(&self) -> u64 {
        self.steps_total
    }

    /// The most recent errors from failed re-solves `(sim_time_ms, error)`,
    /// oldest first. The range keeps running on the held last-good solution
    /// after a failure (see [`measurements_held`](RangeState::measurements_held)).
    /// Retention is bounded (see
    /// [`RangeBuilder::solve_errors_capacity`](crate::RangeBuilder::solve_errors_capacity));
    /// use [`solve_errors_total`](RangeState::solve_errors_total) for the
    /// lifetime count.
    pub fn solve_errors(&self) -> impl ExactSizeIterator<Item = &(u64, PowerFlowError)> + '_ {
        self.solve_errors.iter()
    }

    /// Lifetime number of failed re-solves (monotonic even after old
    /// entries are evicted from [`solve_errors`](RangeState::solve_errors)).
    pub fn solve_errors_total(&self) -> u64 {
        self.solve_errors_total
    }

    /// True while the power plane is serving a held (stale) solution because
    /// the solver stopped converging. While held, every virtual IED stamps
    /// its measurements with quality `invalid` and SCADA degrades incoming
    /// tag quality.
    pub fn measurements_held(&self) -> bool {
        self.held_since_step.is_some()
    }

    /// The telemetry handle the range was built with (disabled unless one
    /// was attached through [`RangeBuilder::telemetry`](crate::RangeBuilder::telemetry)).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The store version up to which cyber-side commands have been consumed
    /// — part of the deterministic replay position a checkpoint verifies.
    pub(crate) fn cmd_cursor(&self) -> u64 {
        self.cmd_cursor
    }

    // --- State probes for exercise evaluation -----------------------------
    //
    // The scenario objective evaluator polls these between steps; they read
    // the live model state (not SCADA's possibly-deceived view) so scoring
    // reflects ground truth.

    /// Whether a named switch (`Substation/Name`) is currently closed, or
    /// `None` if the switch does not exist.
    pub fn switch_is_closed(&self, name: &str) -> Option<bool> {
        let id = self.power.switch_by_name(name)?;
        Some(self.power.switch[id.index()].closed)
    }

    /// A bus's solved voltage magnitude in per-unit (0.0 when de-energized),
    /// or `None` if the connectivity-node path is unknown.
    pub fn bus_voltage_pu(&self, path: &str) -> Option<f64> {
        let id = self.power.bus_by_name(path)?;
        self.last_result.bus.get(id.index()).map(|b| b.vm_pu)
    }

    /// Whether the SCADA HMI currently shows an active alarm on `point`.
    pub fn scada_alarm_active(&self, point: &str) -> bool {
        self.scada
            .as_ref()
            .is_some_and(|s| s.active_alarms().iter().any(|(p, _)| p == point))
    }

    /// The SCADA HMI's current value for a tag (the *displayed* value — a
    /// man-in-the-middle can make this diverge from ground truth).
    pub fn scada_tag(&self, point: &str) -> Option<f64> {
        self.scada.as_ref().and_then(|s| s.tag_value(point))
    }

    /// How many times a named IED's protection has tripped, or `None` if
    /// the IED does not exist.
    pub fn ied_trip_count(&self, name: &str) -> Option<usize> {
        self.ieds.get(name).map(IedHandle::trip_count)
    }

    /// Takes the link between two named nodes up or down (failure
    /// injection). Returns `false` if either name or the link is unknown.
    pub fn set_link_state(&mut self, a: &str, b: &str, up: bool) -> bool {
        match (self.net.node_by_name(a), self.net.node_by_name(b)) {
            (Some(a), Some(b)) => self.net.set_link_state(a, b, up),
            _ => false,
        }
    }

    /// Changes the latency of the link between two named nodes (congestion
    /// or tampering injection). Returns `false` if either name or the link
    /// is unknown.
    pub fn set_link_latency(&mut self, a: &str, b: &str, latency: SimDuration) -> bool {
        match (self.net.node_by_name(a), self.net.node_by_name(b)) {
            (Some(a), Some(b)) => self.net.set_link_latency(a, b, latency),
            _ => false,
        }
    }

    // --- Fault injection ---------------------------------------------------

    /// Re-seeds the deterministic fault generator (see
    /// [`RangeBuilder::fault_seed`](crate::RangeBuilder::fault_seed)).
    /// Applies to all draws made after the call.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.net.set_fault_seed(seed);
    }

    /// Installs (or, with a no-op profile, clears) an impairment profile on
    /// the link between two named nodes. Returns `false` if either name or
    /// the link is unknown.
    pub fn set_link_fault(&mut self, a: &str, b: &str, fault: LinkFault) -> bool {
        match (self.net.node_by_name(a), self.net.node_by_name(b)) {
            (Some(a), Some(b)) => self.net.set_link_fault(a, b, fault),
            _ => false,
        }
    }

    /// Crashes a named host: its NIC goes silent and its applications stop
    /// until restart. With `restart_after_ms` the range's watchdog brings it
    /// back automatically; with `None` it stays down until
    /// [`restart_host`](RangeState::restart_host). Returns `false` for an
    /// unknown host or a switch.
    pub fn crash_host(&mut self, host: &str, restart_after_ms: Option<u64>) -> bool {
        let Some(node) = self.node(host) else {
            return false;
        };
        if !self.net.set_host_enabled(node, false) {
            return false;
        }
        let now = self.net.now();
        self.telemetry
            .record(now.as_nanos(), || ObsEvent::DeviceCrashed {
                host: host.to_string(),
            });
        if let Some(after) = restart_after_ms {
            self.restart_plans
                .push((node, host.to_string(), now.as_millis() + after));
        }
        true
    }

    /// Restarts a crashed host immediately. Returns `false` for an unknown
    /// host or a switch.
    pub fn restart_host(&mut self, host: &str) -> bool {
        let Some(node) = self.node(host) else {
            return false;
        };
        if !self.net.set_host_enabled(node, true) {
            return false;
        }
        self.restart_plans.retain(|(n, _, _)| *n != node);
        self.telemetry
            .record(self.net.now().as_nanos(), || ObsEvent::DeviceRestarted {
                host: host.to_string(),
            });
        true
    }

    /// Engages a sensor fault on one sampled value (by process-store key)
    /// inside a named IED. The faulted value feeds both published
    /// measurements and the IED's own protection functions. Returns `false`
    /// for an unknown IED.
    pub fn set_sensor_fault(&mut self, ied: &str, key: &str, fault: SensorFault) -> bool {
        let Some(handle) = self.ieds.get(ied) else {
            return false;
        };
        handle.set_sensor_fault(key, fault, self.net.now().as_millis());
        true
    }

    /// Clears a sensor fault. Returns `false` if the IED is unknown or no
    /// fault was engaged on `key`.
    pub fn clear_sensor_fault(&mut self, ied: &str, key: &str) -> bool {
        self.ieds
            .get(ied)
            .is_some_and(|handle| handle.clear_sensor_fault(key))
    }

    /// Configures (or disables, with `None`) the SCADA stale-tag window.
    /// Returns `false` when no SCADA HMI is configured.
    pub fn set_scada_stale_window(&mut self, window_ms: Option<u64>) -> bool {
        match &self.scada {
            Some(scada) => {
                scada.set_stale_window_ms(window_ms);
                true
            }
            None => false,
        }
    }
}
