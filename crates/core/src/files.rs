//! Loading and saving SG-ML model bundles as directories of files — the
//! form in which the paper's users hold their models ("power grid operators
//! can recycle their own IEC 61850 SCL files").
//!
//! Naming conventions within a bundle directory:
//!
//! * `*.ssd.xml`, `*.scd.xml`, `*.icd.xml`, `*.sed.xml` — SCL files (any
//!   number of each, loaded in lexicographic order);
//! * `ied_config.xml`, `scada_config.xml`, `plc_config.xml`,
//!   `power_config.xml` — the supplementary schemas (each optional);
//! * `*.scenario.xml` — exercise scenarios (any number, loaded in
//!   lexicographic order).

use crate::range::SgmlBundle;
use std::fmt;
use std::fs;
use std::path::Path;

/// An error loading or saving a bundle directory.
#[derive(Debug)]
pub struct BundleIoError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BundleIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BundleIoError {}

fn io_err(context: &str, e: std::io::Error) -> BundleIoError {
    BundleIoError {
        message: format!("{context}: {e}"),
    }
}

impl SgmlBundle {
    /// Loads a bundle from a directory using the naming conventions above.
    ///
    /// # Errors
    ///
    /// Returns [`BundleIoError`] on I/O failures or if the directory holds
    /// no SCL files at all.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<SgmlBundle, BundleIoError> {
        let dir = dir.as_ref();
        let mut bundle = SgmlBundle::default();
        let mut names: Vec<_> = fs::read_dir(dir)
            .map_err(|e| io_err(&format!("reading {}", dir.display()), e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        names.sort();
        for path in names {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let read = || {
                fs::read_to_string(&path)
                    .map_err(|e| io_err(&format!("reading {}", path.display()), e))
            };
            if name.ends_with(".ssd.xml") {
                bundle.ssds.push(read()?);
            } else if name.ends_with(".scd.xml") {
                bundle.scds.push(read()?);
            } else if name.ends_with(".icd.xml") {
                bundle.icds.push(read()?);
            } else if name.ends_with(".sed.xml") {
                bundle.seds.push(read()?);
            } else if name == "ied_config.xml" {
                bundle.ied_config = Some(read()?);
            } else if name == "scada_config.xml" {
                bundle.scada_config = Some(read()?);
            } else if name == "plc_config.xml" {
                bundle.plc_config = Some(read()?);
            } else if name == "power_config.xml" {
                bundle.power_extra = Some(read()?);
            } else if name.ends_with(".scenario.xml") {
                bundle.scenarios.push(read()?);
            }
        }
        if bundle.ssds.is_empty() && bundle.scds.is_empty() {
            return Err(BundleIoError {
                message: format!(
                    "{} contains no SCL model files (*.ssd.xml / *.scd.xml)",
                    dir.display()
                ),
            });
        }
        Ok(bundle)
    }

    /// Writes the bundle into a directory (created if needed) using the
    /// same conventions, so a generated model can be inspected, edited, and
    /// reloaded — the open-source sharing workflow the paper describes.
    ///
    /// # Errors
    ///
    /// Returns [`BundleIoError`] on I/O failures.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), BundleIoError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| io_err(&format!("creating {}", dir.display()), e))?;
        let write = |name: String, contents: &str| -> Result<(), BundleIoError> {
            let path = dir.join(&name);
            fs::write(&path, contents)
                .map_err(|e| io_err(&format!("writing {}", path.display()), e))
        };
        for (i, text) in self.ssds.iter().enumerate() {
            write(format!("substation{:02}.ssd.xml", i + 1), text)?;
        }
        for (i, text) in self.scds.iter().enumerate() {
            write(format!("substation{:02}.scd.xml", i + 1), text)?;
        }
        for (i, text) in self.icds.iter().enumerate() {
            // Use the IED name when parsable for self-documenting files.
            let name = sgcr_scl::parse_icd(text)
                .ok()
                .and_then(|doc| doc.ieds.first().map(|ied| ied.name.clone()))
                .unwrap_or_else(|| format!("ied{:03}", i + 1));
            write(format!("{name}.icd.xml"), text)?;
        }
        for (i, text) in self.seds.iter().enumerate() {
            write(format!("tie{:02}.sed.xml", i + 1), text)?;
        }
        if let Some(text) = &self.ied_config {
            write("ied_config.xml".into(), text)?;
        }
        if let Some(text) = &self.scada_config {
            write("scada_config.xml".into(), text)?;
        }
        if let Some(text) = &self.plc_config {
            write("plc_config.xml".into(), text)?;
        }
        if let Some(text) = &self.power_extra {
            write("power_config.xml".into(), text)?;
        }
        for (i, text) in self.scenarios.iter().enumerate() {
            write(format!("exercise{:02}.scenario.xml", i + 1), text)?;
        }
        Ok(())
    }
}
