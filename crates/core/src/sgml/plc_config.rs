//! The SG-ML *PLC Config XML*: which logic each PLC runs (Structured Text,
//! inline or as PLCopen XML) and how its variables bind to IED points over
//! MMS — the information OpenPLC61850 takes as its ICD list + mapping file.

use sgcr_xml::Document;
use std::fmt;

/// How the control logic is provided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlcLogic {
    /// Inline IEC 61131-3 Structured Text.
    StructuredText(String),
    /// A complete PLCopen XML project document.
    PlcOpenXml(String),
}

/// A point polled from an IED into a PLC variable (server by IED name,
/// resolved against the SCD's communication section).
#[derive(Debug, Clone, PartialEq)]
pub struct PlcReadRule {
    /// IED name (resolved to an IP via the SCD).
    pub server: String,
    /// MMS item id.
    pub item: String,
    /// PLC variable.
    pub variable: String,
    /// Scaling multiplier.
    pub scale: f64,
}

/// A PLC boolean variable driving an IED control on change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlcWriteRule {
    /// IED name.
    pub server: String,
    /// Control item id.
    pub item: String,
    /// PLC variable watched for changes.
    pub variable: String,
}

/// A GOOSE dataset entry mapped into a PLC variable: the PLC subscribes to
/// the control block on the station bus and copies the entry's value into
/// the variable whenever a publication is accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlcGooseRule {
    /// Control block reference (`GIED1LD0/LLN0$GO$gcb01`).
    pub gocb_ref: String,
    /// Dataset entry index.
    pub index: usize,
    /// PLC variable receiving the value.
    pub variable: String,
}

/// One PLC's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlcDef {
    /// PLC name (must match a ConnectedAP in the SCD).
    pub name: String,
    /// Scan period in milliseconds.
    pub scan_ms: u64,
    /// The program.
    pub logic: PlcLogic,
    /// IED read bindings.
    pub reads: Vec<PlcReadRule>,
    /// IED write bindings.
    pub writes: Vec<PlcWriteRule>,
    /// GOOSE subscription bindings.
    pub gooses: Vec<PlcGooseRule>,
}

/// The parsed PLC Config file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlcConfig {
    /// PLC definitions in file order.
    pub plcs: Vec<PlcDef>,
}

/// An error parsing PLC Config XML.
#[derive(Debug, Clone, PartialEq)]
pub struct PlcConfigError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PlcConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PlcConfigError {}

fn err(message: impl Into<String>) -> PlcConfigError {
    PlcConfigError {
        message: message.into(),
    }
}

impl PlcConfig {
    /// Parses the XML.
    ///
    /// # Errors
    ///
    /// Returns [`PlcConfigError`] on malformed XML or a PLC without logic.
    pub fn parse(text: &str) -> Result<PlcConfig, PlcConfigError> {
        let doc = Document::parse(text).map_err(|e| err(e.to_string()))?;
        let root = doc.root_element();
        if root.name() != "PLCConfig" {
            return Err(err(format!(
                "expected <PLCConfig>, found <{}>",
                root.name()
            )));
        }
        let mut config = PlcConfig::default();
        for plc_el in root.children_named("PLC") {
            let name = plc_el.attr_or("name", "").to_string();
            if name.is_empty() {
                return Err(err("PLC without a name"));
            }
            let logic_el = plc_el
                .child("Logic")
                .ok_or_else(|| err(format!("PLC {name:?} has no <Logic>")))?;
            let body = logic_el.deep_text();
            let logic = match logic_el.attr_or("type", "st") {
                "st" => PlcLogic::StructuredText(body),
                "plcopen" => PlcLogic::PlcOpenXml(body),
                other => return Err(err(format!("unknown logic type {other:?}"))),
            };
            let reads = plc_el
                .children_named("Read")
                .iter()
                .map(|r| {
                    Ok(PlcReadRule {
                        server: r
                            .attr("server")
                            .ok_or_else(|| err("Read missing server"))?
                            .to_string(),
                        item: r
                            .attr("item")
                            .ok_or_else(|| err("Read missing item"))?
                            .to_string(),
                        variable: r
                            .attr("variable")
                            .ok_or_else(|| err("Read missing variable"))?
                            .to_string(),
                        scale: r.attr_parse("scale").unwrap_or(1.0),
                    })
                })
                .collect::<Result<Vec<_>, PlcConfigError>>()?;
            let writes = plc_el
                .children_named("Write")
                .iter()
                .map(|w| {
                    Ok(PlcWriteRule {
                        server: w
                            .attr("server")
                            .ok_or_else(|| err("Write missing server"))?
                            .to_string(),
                        item: w
                            .attr("item")
                            .ok_or_else(|| err("Write missing item"))?
                            .to_string(),
                        variable: w
                            .attr("variable")
                            .ok_or_else(|| err("Write missing variable"))?
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, PlcConfigError>>()?;
            let gooses = plc_el
                .children_named("Goose")
                .iter()
                .map(|g| {
                    Ok(PlcGooseRule {
                        gocb_ref: g
                            .attr("gocb")
                            .ok_or_else(|| err("Goose missing gocb"))?
                            .to_string(),
                        index: g
                            .attr_parse("index")
                            .ok_or_else(|| err("Goose missing index"))?,
                        variable: g
                            .attr("variable")
                            .ok_or_else(|| err("Goose missing variable"))?
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, PlcConfigError>>()?;
            config.plcs.push(PlcDef {
                name,
                scan_ms: plc_el.attr_parse("scanMs").unwrap_or(100),
                logic,
                reads,
                writes,
                gooses,
            });
        }
        Ok(config)
    }

    /// Serializes back to XML.
    pub fn to_xml(&self) -> String {
        let mut doc = Document::new("PLCConfig");
        let root = doc.root_id();
        for plc in &self.plcs {
            let p = doc.add_element(root, "PLC");
            doc.set_attr(p, "name", &plc.name);
            doc.set_attr(p, "scanMs", &plc.scan_ms.to_string());
            let l = doc.add_element(p, "Logic");
            match &plc.logic {
                PlcLogic::StructuredText(st) => {
                    doc.set_attr(l, "type", "st");
                    doc.add_cdata(l, st);
                }
                PlcLogic::PlcOpenXml(xml) => {
                    doc.set_attr(l, "type", "plcopen");
                    doc.add_cdata(l, xml);
                }
            }
            for r in &plc.reads {
                let e = doc.add_element(p, "Read");
                doc.set_attr(e, "server", &r.server);
                doc.set_attr(e, "item", &r.item);
                doc.set_attr(e, "variable", &r.variable);
                if r.scale != 1.0 {
                    doc.set_attr(e, "scale", &r.scale.to_string());
                }
            }
            for w in &plc.writes {
                let e = doc.add_element(p, "Write");
                doc.set_attr(e, "server", &w.server);
                doc.set_attr(e, "item", &w.item);
                doc.set_attr(e, "variable", &w.variable);
            }
            for g in &plc.gooses {
                let e = doc.add_element(p, "Goose");
                doc.set_attr(e, "gocb", &g.gocb_ref);
                doc.set_attr(e, "index", &g.index.to_string());
                doc.set_attr(e, "variable", &g.variable);
            }
        }
        doc.to_xml()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<PLCConfig>
  <PLC name="CPLC" scanMs="100">
    <Logic type="st"><![CDATA[
      PROGRAM cplc VAR total AT %QW0 : INT; p1 : REAL; END_VAR
      total := TO_INT(p1);
      END_PROGRAM
    ]]></Logic>
    <Read server="GIED1" item="GIED1LD0/MMXU1$MX$TotW$mag$f" variable="p1" scale="10"/>
    <Write server="GIED1" item="GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal" variable="cb_cmd"/>
    <Goose gocb="GIED1LD0/LLN0$GO$gcb01" index="1" variable="prot_op"/>
  </PLC>
</PLCConfig>"#;

    #[test]
    fn parse_sample() {
        let config = PlcConfig::parse(SAMPLE).unwrap();
        assert_eq!(config.plcs.len(), 1);
        let plc = &config.plcs[0];
        assert_eq!(plc.scan_ms, 100);
        assert!(matches!(&plc.logic, PlcLogic::StructuredText(st) if st.contains("PROGRAM cplc")));
        assert_eq!(plc.reads[0].scale, 10.0);
        assert_eq!(plc.writes[0].variable, "cb_cmd");
        assert_eq!(
            plc.gooses[0],
            PlcGooseRule {
                gocb_ref: "GIED1LD0/LLN0$GO$gcb01".to_string(),
                index: 1,
                variable: "prot_op".to_string(),
            }
        );
    }

    #[test]
    fn roundtrip() {
        let config = PlcConfig::parse(SAMPLE).unwrap();
        let text = config.to_xml();
        let reparsed = PlcConfig::parse(&text).unwrap();
        // Whitespace in CDATA is preserved exactly, so compare parsed forms.
        assert_eq!(reparsed.plcs[0].reads, config.plcs[0].reads);
        assert_eq!(reparsed.plcs[0].writes, config.plcs[0].writes);
        assert_eq!(reparsed.plcs[0].gooses, config.plcs[0].gooses);
    }

    #[test]
    fn errors() {
        assert!(PlcConfig::parse("<Nope/>").is_err());
        assert!(PlcConfig::parse(r#"<PLCConfig><PLC name="x"/></PLCConfig>"#).is_err());
        assert!(PlcConfig::parse(
            r#"<PLCConfig><PLC name="x"><Logic type="ladder">x</Logic></PLC></PLCConfig>"#
        )
        .is_err());
    }
}
