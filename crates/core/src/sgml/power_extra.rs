//! The SG-ML *Power System Extra Config XML* supplementary schema.
//!
//! Per the paper, SCL cannot express dynamic behaviour: "load profile and
//! disturbance scenarios … cannot be configured in the SCL files". This
//! schema "specifies the amount of load and circuit breaker status in a
//! time series for each component in the simulation model", read at each
//! simulation step.

use sgcr_powerflow::{Profile, ProfileTarget, ScenarioAction, ScenarioEvent, SimulationSchedule};
use sgcr_xml::Document;
use std::fmt;

/// An error parsing Power System Extra Config XML.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerExtraError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PowerExtraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PowerExtraError {}

fn err(message: impl Into<String>) -> PowerExtraError {
    PowerExtraError {
        message: message.into(),
    }
}

/// The parsed extra configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerExtraConfig {
    /// Power-flow step interval in milliseconds (paper default: 100 ms).
    pub interval_ms: u64,
    /// Profiles and scheduled disturbance events.
    pub schedule: SimulationSchedule,
}

impl Default for PowerExtraConfig {
    fn default() -> Self {
        PowerExtraConfig {
            interval_ms: 100,
            schedule: SimulationSchedule::new(),
        }
    }
}

impl PowerExtraConfig {
    /// Parses the XML.
    ///
    /// # Errors
    ///
    /// Returns [`PowerExtraError`] on malformed XML or unknown actions.
    pub fn parse(text: &str) -> Result<PowerExtraConfig, PowerExtraError> {
        let doc = Document::parse(text).map_err(|e| err(e.to_string()))?;
        let root = doc.root_element();
        if root.name() != "PowerSystemConfig" {
            return Err(err(format!(
                "expected <PowerSystemConfig>, found <{}>",
                root.name()
            )));
        }
        let mut config = PowerExtraConfig {
            interval_ms: root.attr_parse("intervalMs").unwrap_or(100),
            schedule: SimulationSchedule::new(),
        };
        for (element, make_target) in [
            (
                "LoadProfile",
                Box::new(|name: String| ProfileTarget::LoadScaling(name))
                    as Box<dyn Fn(String) -> ProfileTarget>,
            ),
            (
                "SgenProfile",
                Box::new(|name: String| ProfileTarget::SgenScaling(name)),
            ),
            (
                "GenProfile",
                Box::new(|name: String| ProfileTarget::GenSetpoint(name)),
            ),
        ] {
            for profile_el in root.children_named(element) {
                let target_name = profile_el
                    .attr("target")
                    .ok_or_else(|| err(format!("{element} missing target")))?
                    .to_string();
                let mut points = Vec::new();
                for p in profile_el.children_named("P") {
                    let t: u64 = p
                        .attr_parse("t")
                        .ok_or_else(|| err(format!("{element} point missing t")))?;
                    let value: f64 = p
                        .attr_parse("value")
                        .ok_or_else(|| err(format!("{element} point missing value")))?;
                    points.push((t, value));
                }
                points.sort_by_key(|(t, _)| *t);
                config.schedule.profiles.push(Profile {
                    target: make_target(target_name),
                    points,
                });
            }
        }
        for event_el in root.children_named("Event") {
            let at_ms: u64 = event_el
                .attr_parse("t")
                .ok_or_else(|| err("Event missing t"))?;
            let target = event_el.attr_or("target", "").to_string();
            let action = match event_el.attr_or("action", "") {
                "openSwitch" => ScenarioAction::OpenSwitch(target),
                "closeSwitch" => ScenarioAction::CloseSwitch(target),
                "lineOutage" => ScenarioAction::LineOutage(target),
                "lineRestore" => ScenarioAction::LineRestore(target),
                "genLoss" => ScenarioAction::GenLoss(target),
                "genRestore" => ScenarioAction::GenRestore(target),
                "setLoad" => {
                    let value: f64 = event_el
                        .attr_parse("value")
                        .ok_or_else(|| err("setLoad event missing value"))?;
                    ScenarioAction::SetLoadP(target, value)
                }
                other => return Err(err(format!("unknown event action {other:?}"))),
            };
            config.schedule.events.push(ScenarioEvent { at_ms, action });
        }
        config.schedule.events.sort_by_key(|e| e.at_ms);
        Ok(config)
    }

    /// Serializes back to XML.
    pub fn to_xml(&self) -> String {
        let mut doc = Document::new("PowerSystemConfig");
        let root = doc.root_id();
        doc.set_attr(root, "intervalMs", &self.interval_ms.to_string());
        for profile in &self.schedule.profiles {
            let (element, target) = match &profile.target {
                ProfileTarget::LoadScaling(n) => ("LoadProfile", n),
                ProfileTarget::SgenScaling(n) => ("SgenProfile", n),
                ProfileTarget::GenSetpoint(n) => ("GenProfile", n),
            };
            let e = doc.add_element(root, element);
            doc.set_attr(e, "target", target);
            for (t, value) in &profile.points {
                let p = doc.add_element(e, "P");
                doc.set_attr(p, "t", &t.to_string());
                doc.set_attr(p, "value", &value.to_string());
            }
        }
        for event in &self.schedule.events {
            let e = doc.add_element(root, "Event");
            doc.set_attr(e, "t", &event.at_ms.to_string());
            let (action, target, value) = match &event.action {
                ScenarioAction::OpenSwitch(t) => ("openSwitch", t.clone(), None),
                ScenarioAction::CloseSwitch(t) => ("closeSwitch", t.clone(), None),
                ScenarioAction::LineOutage(t) => ("lineOutage", t.clone(), None),
                ScenarioAction::LineRestore(t) => ("lineRestore", t.clone(), None),
                ScenarioAction::GenLoss(t) => ("genLoss", t.clone(), None),
                ScenarioAction::GenRestore(t) => ("genRestore", t.clone(), None),
                ScenarioAction::SetLoadP(t, v) => ("setLoad", t.clone(), Some(*v)),
            };
            doc.set_attr(e, "action", action);
            doc.set_attr(e, "target", &target);
            if let Some(v) = value {
                doc.set_attr(e, "value", &v.to_string());
            }
        }
        doc.to_xml()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<PowerSystemConfig intervalMs="100">
  <LoadProfile target="S1/LOAD1">
    <P t="0" value="1.0"/>
    <P t="5000" value="1.4"/>
  </LoadProfile>
  <SgenProfile target="S1/PV1">
    <P t="0" value="0.8"/>
  </SgenProfile>
  <GenProfile target="S1/G1">
    <P t="0" value="10"/>
    <P t="3000" value="12"/>
  </GenProfile>
  <Event t="8000" action="openSwitch" target="S1/CB2"/>
  <Event t="6000" action="genLoss" target="S1/PV1"/>
  <Event t="9000" action="setLoad" target="S1/LOAD1" value="25"/>
</PowerSystemConfig>"#;

    #[test]
    fn parse_sample() {
        let config = PowerExtraConfig::parse(SAMPLE).unwrap();
        assert_eq!(config.interval_ms, 100);
        assert_eq!(config.schedule.profiles.len(), 3);
        assert_eq!(config.schedule.events.len(), 3);
        // Events sorted by time.
        assert_eq!(config.schedule.events[0].at_ms, 6000);
        assert!(matches!(
            &config.schedule.profiles[0].target,
            ProfileTarget::LoadScaling(n) if n == "S1/LOAD1"
        ));
    }

    #[test]
    fn xml_roundtrip() {
        let config = PowerExtraConfig::parse(SAMPLE).unwrap();
        let text = config.to_xml();
        assert_eq!(PowerExtraConfig::parse(&text).unwrap(), config);
    }

    #[test]
    fn xml_roundtrip_every_action_variant() {
        let mut config = PowerExtraConfig::default();
        let actions = [
            ScenarioAction::OpenSwitch("S1/CB1".into()),
            ScenarioAction::CloseSwitch("S1/CB1".into()),
            ScenarioAction::LineOutage("S1/L1".into()),
            ScenarioAction::LineRestore("S1/L1".into()),
            ScenarioAction::GenLoss("S1/G1".into()),
            ScenarioAction::GenRestore("S1/G1".into()),
            ScenarioAction::SetLoadP("S1/LOAD1".into(), 12.625),
            ScenarioAction::SetLoadP("S1/LOAD2".into(), 0.033),
        ];
        for (i, action) in actions.into_iter().enumerate() {
            config.schedule.events.push(ScenarioEvent {
                at_ms: (i as u64 + 1) * 500,
                action,
            });
        }
        let text = config.to_xml();
        let reparsed = PowerExtraConfig::parse(&text).unwrap();
        assert_eq!(reparsed, config);
        // And the round trip is a fixed point: writing again is identical.
        assert_eq!(reparsed.to_xml(), text);
    }

    #[test]
    fn errors() {
        assert!(PowerExtraConfig::parse("<Nope/>").is_err());
        assert!(PowerExtraConfig::parse(
            r#"<PowerSystemConfig><Event t="1" action="teleport" target="x"/></PowerSystemConfig>"#
        )
        .is_err());
        assert!(PowerExtraConfig::parse(
            r#"<PowerSystemConfig><LoadProfile><P t="0" value="1"/></LoadProfile></PowerSystemConfig>"#
        )
        .is_err());
    }
}
