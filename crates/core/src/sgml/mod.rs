//! The SG-ML supplementary XML schemas: IED Config, PLC Config, SCADA
//! Config (in `sgcr-scada`), and Power System Extra Config.

pub mod ied_config;
pub mod plc_config;
pub mod power_extra;
