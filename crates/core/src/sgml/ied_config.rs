//! The SG-ML *IED Config XML* supplementary schema.
//!
//! Per the paper: an ICD alone is not sufficient to instantiate a virtual
//! IED, because "actual threshold for each protection function is not
//! specified in the ICD file" and "the mapping between the naming of data
//! item in the ICD file and the power system simulation output" is missing.
//! This schema supplies both.

use sgcr_ied::{
    BreakerMap, GooseEntry, GooseSpec, IedSpec, MeasurementMap, MonitoredBreaker, ProtectionSpec,
    RsvSpec,
};
use sgcr_kvstore::Keys;
use sgcr_net::{Ipv4Addr, SimDuration};
use sgcr_xml::{Document, ElementRef};
use std::fmt;

/// An error parsing IED Config XML.
#[derive(Debug, Clone, PartialEq)]
pub struct IedConfigError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for IedConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for IedConfigError {}

fn err(message: impl Into<String>) -> IedConfigError {
    IedConfigError {
        message: message.into(),
    }
}

/// The parsed IED Config file: one [`IedSpec`] per configured IED.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IedConfig {
    /// Per-IED specs, in file order.
    pub ieds: Vec<IedSpec>,
}

impl IedConfig {
    /// Finds a spec by IED name.
    pub fn ied(&self, name: &str) -> Option<&IedSpec> {
        self.ieds.iter().find(|s| s.name == name)
    }

    /// Parses the IED Config XML.
    ///
    /// # Errors
    ///
    /// Returns [`IedConfigError`] on malformed XML, unknown protection
    /// types, or missing required attributes.
    pub fn parse(text: &str) -> Result<IedConfig, IedConfigError> {
        let doc = Document::parse(text).map_err(|e| err(e.to_string()))?;
        let root = doc.root_element();
        if root.name() != "IEDConfig" {
            return Err(err(format!(
                "expected <IEDConfig>, found <{}>",
                root.name()
            )));
        }
        let mut config = IedConfig::default();
        for ied_el in root.children_named("IED") {
            config.ieds.push(parse_ied(&ied_el)?);
        }
        Ok(config)
    }

    /// Serializes to IED Config XML.
    pub fn to_xml(&self) -> String {
        let mut doc = Document::new("IEDConfig");
        let root = doc.root_id();
        for spec in &self.ieds {
            let i = doc.add_element(root, "IED");
            doc.set_attr(i, "name", &spec.name);
            doc.set_attr(i, "substation", &spec.substation);
            doc.set_attr(i, "ld", &spec.ld);
            doc.set_attr(
                i,
                "samplePeriodMs",
                &spec.sample_period.as_millis().to_string(),
            );
            for m in &spec.measurements {
                let e = doc.add_element(i, "Measurement");
                doc.set_attr(e, "item", &m.item);
                doc.set_attr(e, "key", &m.kv_key);
            }
            for b in &spec.breakers {
                let e = doc.add_element(i, "Breaker");
                doc.set_attr(e, "name", &b.name);
                doc.set_attr(e, "xcbr", &b.xcbr);
                doc.set_attr(e, "cswi", &b.cswi);
                if b.interlocked {
                    doc.set_attr(e, "interlocked", "true");
                }
            }
            for p in &spec.protections {
                let e = doc.add_element(i, "Protection");
                doc.set_attr(e, "ln", p.ln());
                match p {
                    ProtectionSpec::Ptoc {
                        measurement_key,
                        pickup,
                        delay_ms,
                        breaker,
                        ..
                    } => {
                        doc.set_attr(e, "type", "PTOC");
                        doc.set_attr(e, "measurementKey", measurement_key);
                        doc.set_attr(e, "threshold", &pickup.to_string());
                        doc.set_attr(e, "delayMs", &delay_ms.to_string());
                        doc.set_attr(e, "breaker", breaker);
                    }
                    ProtectionSpec::Ptov {
                        voltage_key,
                        threshold_pu,
                        delay_ms,
                        breaker,
                        ..
                    } => {
                        doc.set_attr(e, "type", "PTOV");
                        doc.set_attr(e, "measurementKey", voltage_key);
                        doc.set_attr(e, "threshold", &threshold_pu.to_string());
                        doc.set_attr(e, "delayMs", &delay_ms.to_string());
                        doc.set_attr(e, "breaker", breaker);
                    }
                    ProtectionSpec::Ptuv {
                        voltage_key,
                        threshold_pu,
                        delay_ms,
                        breaker,
                        ..
                    } => {
                        doc.set_attr(e, "type", "PTUV");
                        doc.set_attr(e, "measurementKey", voltage_key);
                        doc.set_attr(e, "threshold", &threshold_pu.to_string());
                        doc.set_attr(e, "delayMs", &delay_ms.to_string());
                        doc.set_attr(e, "breaker", breaker);
                    }
                    ProtectionSpec::Pdif {
                        local_current_key,
                        threshold,
                        delay_ms,
                        breaker,
                        ..
                    } => {
                        doc.set_attr(e, "type", "PDIF");
                        doc.set_attr(e, "measurementKey", local_current_key);
                        doc.set_attr(e, "threshold", &threshold.to_string());
                        doc.set_attr(e, "delayMs", &delay_ms.to_string());
                        doc.set_attr(e, "breaker", breaker);
                    }
                    ProtectionSpec::Cilo {
                        breaker, monitored, ..
                    } => {
                        doc.set_attr(e, "type", "CILO");
                        doc.set_attr(e, "breaker", breaker);
                        for m in monitored {
                            let mon = doc.add_element(e, "Monitor");
                            doc.set_attr(mon, "reference", &m.reference);
                            doc.set_attr(mon, "gocbRef", &m.gocb_ref);
                            doc.set_attr(mon, "index", &m.dataset_index.to_string());
                        }
                    }
                }
            }
            if let Some(goose) = &spec.goose {
                let e = doc.add_element(i, "Goose");
                doc.set_attr(e, "appid", &format!("{:04X}", goose.appid));
                doc.set_attr(e, "gocbRef", &goose.gocb_ref);
                doc.set_attr(e, "dataset", &goose.dataset);
                for entry in &goose.entries {
                    let en = doc.add_element(e, "Entry");
                    match entry {
                        GooseEntry::BreakerState(name) => {
                            doc.set_attr(en, "kind", "breaker");
                            doc.set_attr(en, "name", name);
                        }
                        GooseEntry::ProtectionOp(ln) => {
                            doc.set_attr(en, "kind", "protection");
                            doc.set_attr(en, "ln", ln);
                        }
                    }
                }
                for peer in &goose.rgoose_peers {
                    let pe = doc.add_element(e, "RGoosePeer");
                    doc.set_attr(pe, "ip", &peer.to_string());
                }
            }
            if let Some(rsv) = &spec.rsv {
                let e = doc.add_element(i, "Rsv");
                doc.set_attr(e, "svId", &rsv.sv_id);
                doc.set_attr(e, "currentKey", &rsv.current_key);
                if let Some(sub) = &rsv.subscribe_sv_id {
                    doc.set_attr(e, "subscribe", sub);
                }
                for peer in &rsv.peers {
                    let pe = doc.add_element(e, "Peer");
                    doc.set_attr(pe, "ip", &peer.to_string());
                }
            }
        }
        doc.to_xml()
    }
}

fn parse_ied(ied_el: &ElementRef<'_>) -> Result<IedSpec, IedConfigError> {
    let name = ied_el.attr_or("name", "").to_string();
    if name.is_empty() {
        return Err(err("IED without a name"));
    }
    let substation = ied_el.attr_or("substation", "").to_string();
    let mut spec = IedSpec::new(&name, &substation);
    if let Some(ld) = ied_el.attr("ld") {
        spec.ld = ld.to_string();
    }
    if let Some(ms) = ied_el.attr_parse::<u64>("samplePeriodMs") {
        spec.sample_period = SimDuration::from_millis(ms);
    }
    for m in ied_el.children_named("Measurement") {
        spec.measurements.push(MeasurementMap {
            item: m
                .attr("item")
                .ok_or_else(|| err(format!("{name}: Measurement missing item")))?
                .to_string(),
            kv_key: m
                .attr("key")
                .ok_or_else(|| err(format!("{name}: Measurement missing key")))?
                .to_string(),
        });
    }
    for b in ied_el.children_named("Breaker") {
        let breaker_name = b
            .attr("name")
            .ok_or_else(|| err(format!("{name}: Breaker missing name")))?
            .to_string();
        spec.breakers.push(BreakerMap {
            state_key: Keys::breaker_state(&substation, &breaker_name),
            cmd_key: Keys::breaker_cmd(&substation, &breaker_name),
            name: breaker_name,
            xcbr: b.attr_or("xcbr", "XCBR1").to_string(),
            cswi: b.attr_or("cswi", "CSWI1").to_string(),
            interlocked: b.attr("interlocked") == Some("true"),
        });
    }
    for p in ied_el.children_named("Protection") {
        let ln = p.attr_or("ln", "").to_string();
        let breaker = p.attr_or("breaker", "").to_string();
        let key = p.attr_or("measurementKey", "").to_string();
        let threshold: f64 = p.attr_parse("threshold").unwrap_or(0.0);
        let delay_ms: u64 = p.attr_parse("delayMs").unwrap_or(0);
        let protection = match p.attr_or("type", "") {
            "PTOC" => ProtectionSpec::Ptoc {
                ln,
                measurement_key: key,
                pickup: threshold,
                delay_ms,
                breaker,
            },
            "PTOV" => ProtectionSpec::Ptov {
                ln,
                voltage_key: key,
                threshold_pu: threshold,
                delay_ms,
                breaker,
            },
            "PTUV" => ProtectionSpec::Ptuv {
                ln,
                voltage_key: key,
                threshold_pu: threshold,
                delay_ms,
                breaker,
            },
            "PDIF" => ProtectionSpec::Pdif {
                ln,
                local_current_key: key,
                threshold,
                delay_ms,
                breaker,
            },
            "CILO" => {
                let monitored = p
                    .children_named("Monitor")
                    .iter()
                    .map(|m| {
                        Ok(MonitoredBreaker {
                            reference: m
                                .attr("reference")
                                .ok_or_else(|| err("Monitor missing reference"))?
                                .to_string(),
                            gocb_ref: m
                                .attr("gocbRef")
                                .ok_or_else(|| err("Monitor missing gocbRef"))?
                                .to_string(),
                            dataset_index: m.attr_parse("index").unwrap_or(0),
                        })
                    })
                    .collect::<Result<Vec<_>, IedConfigError>>()?;
                ProtectionSpec::Cilo {
                    ln,
                    breaker,
                    monitored,
                }
            }
            other => return Err(err(format!("{name}: unknown protection type {other:?}"))),
        };
        spec.protections.push(protection);
    }
    if let Some(g) = ied_el.child("Goose") {
        let appid = u16::from_str_radix(g.attr_or("appid", "0"), 16)
            .map_err(|_| err(format!("{name}: bad GOOSE appid")))?;
        let entries = g
            .children_named("Entry")
            .iter()
            .map(|e| match e.attr_or("kind", "") {
                "breaker" => Ok(GooseEntry::BreakerState(e.attr_or("name", "").to_string())),
                "protection" => Ok(GooseEntry::ProtectionOp(e.attr_or("ln", "").to_string())),
                other => Err(err(format!("{name}: unknown GOOSE entry kind {other:?}"))),
            })
            .collect::<Result<Vec<_>, IedConfigError>>()?;
        let rgoose_peers = g
            .children_named("RGoosePeer")
            .iter()
            .filter_map(|p| p.attr("ip").and_then(|ip| ip.parse::<Ipv4Addr>().ok()))
            .collect();
        spec.goose = Some(GooseSpec {
            appid,
            gocb_ref: g.attr_or("gocbRef", "").to_string(),
            dataset: g.attr_or("dataset", "").to_string(),
            entries,
            rgoose_peers,
        });
    }
    if let Some(r) = ied_el.child("Rsv") {
        spec.rsv = Some(RsvSpec {
            sv_id: r.attr_or("svId", "").to_string(),
            current_key: r.attr_or("currentKey", "").to_string(),
            subscribe_sv_id: r.attr("subscribe").map(str::to_string),
            peers: r
                .children_named("Peer")
                .iter()
                .filter_map(|p| p.attr("ip").and_then(|ip| ip.parse().ok()))
                .collect(),
        });
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<IEDConfig>
  <IED name="GIED1" substation="S1" ld="GIED1LD0" samplePeriodMs="100">
    <Measurement item="MMXU1$MX$TotW$mag$f" key="meas/S1/branch/S1.l1/p_mw"/>
    <Breaker name="CB1" xcbr="XCBR1" cswi="CSWI1" interlocked="true"/>
    <Protection type="PTOC" ln="PTOC1" measurementKey="meas/S1/branch/S1.l1/i_ka"
                threshold="1.2" delayMs="200" breaker="CB1"/>
    <Protection type="CILO" ln="CILO1" breaker="CB1">
      <Monitor reference="S2/CB1" gocbRef="S2IED1LD0/LLN0$GO$gcb01" index="0"/>
    </Protection>
    <Goose appid="3001" gocbRef="GIED1LD0/LLN0$GO$gcb01" dataset="GIED1LD0/LLN0$DS1">
      <Entry kind="breaker" name="CB1"/>
      <Entry kind="protection" ln="PTOC1"/>
      <RGoosePeer ip="10.0.2.11"/>
    </Goose>
    <Rsv svId="GIED1-SV" currentKey="meas/S1/branch/S1.l1/i_ka" subscribe="S2IED1-SV">
      <Peer ip="10.0.2.11"/>
    </Rsv>
  </IED>
</IEDConfig>"#;

    #[test]
    fn parse_sample() {
        let config = IedConfig::parse(SAMPLE).unwrap();
        assert_eq!(config.ieds.len(), 1);
        let spec = config.ied("GIED1").unwrap();
        assert_eq!(spec.substation, "S1");
        assert_eq!(spec.measurements.len(), 1);
        assert_eq!(spec.breakers[0].state_key, "meas/S1/cb/CB1/closed");
        assert_eq!(spec.breakers[0].cmd_key, "cmd/S1/cb/CB1/close");
        assert!(spec.breakers[0].interlocked);
        assert_eq!(spec.protections.len(), 2);
        assert!(matches!(
            &spec.protections[0],
            ProtectionSpec::Ptoc { pickup, delay_ms, .. } if *pickup == 1.2 && *delay_ms == 200
        ));
        let goose = spec.goose.as_ref().unwrap();
        assert_eq!(goose.appid, 0x3001);
        assert_eq!(goose.entries.len(), 2);
        assert_eq!(goose.rgoose_peers.len(), 1);
        let rsv = spec.rsv.as_ref().unwrap();
        assert_eq!(rsv.subscribe_sv_id.as_deref(), Some("S2IED1-SV"));
    }

    #[test]
    fn xml_roundtrip() {
        let config = IedConfig::parse(SAMPLE).unwrap();
        let text = config.to_xml();
        let reparsed = IedConfig::parse(&text).unwrap();
        assert_eq!(reparsed, config);
    }

    #[test]
    fn errors() {
        assert!(IedConfig::parse("<Wrong/>").is_err());
        assert!(IedConfig::parse(
            r#"<IEDConfig><IED name="x"><Protection type="PFREQ"/></IED></IEDConfig>"#
        )
        .is_err());
        assert!(IedConfig::parse(
            r#"<IEDConfig><IED name="x"><Measurement item="a"/></IED></IEDConfig>"#
        )
        .is_err());
    }
}
