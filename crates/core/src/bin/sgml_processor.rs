//! `sgml-processor` — the command-line face of the SG-ML Processor: loads a
//! bundle directory of SG-ML model files, compiles it into an operational
//! cyber range, reports the generated inventory, and optionally runs it.
//!
//! ```text
//! sgml_processor <bundle-dir> [--run <seconds>] [--dot] [--validate-only]
//! ```

use sgcr_core::{CyberRange, SgmlBundle};
use sgcr_net::SimDuration;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: sgml_processor <bundle-dir> [--run <seconds>] [--dot] [--validate-only]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(dir) = args.first() else {
        return usage();
    };
    let mut run_seconds: Option<u64> = None;
    let mut dot = false;
    let mut validate_only = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--run" => {
                i += 1;
                let Some(value) = args.get(i).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                run_seconds = Some(value);
            }
            "--dot" => dot = true,
            "--validate-only" => validate_only = true,
            _ => return usage(),
        }
        i += 1;
    }

    let bundle = match SgmlBundle::from_dir(dir) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} SSD, {} SCD, {} ICD, {} SED, supplementary: ied={} scada={} plc={} power={}",
        dir,
        bundle.ssds.len(),
        bundle.scds.len(),
        bundle.icds.len(),
        bundle.seds.len(),
        bundle.ied_config.is_some(),
        bundle.scada_config.is_some(),
        bundle.plc_config.is_some(),
        bundle.power_extra.is_some(),
    );

    let mut range = match CyberRange::generate(&bundle) {
        Ok(range) => range,
        Err(e) => {
            eprintln!("error: model set does not compile:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &range.diagnostics {
        eprintln!("  {d}");
    }
    println!("{}", range.summary());
    if dot {
        println!("{}", range.plan.to_dot());
    }
    if validate_only {
        return ExitCode::SUCCESS;
    }
    if let Some(seconds) = run_seconds {
        eprintln!("running {seconds} s of co-simulated time…");
        let wall = std::time::Instant::now();
        range.run_for(SimDuration::from_secs(seconds));
        eprintln!(
            "done: {} power-flow steps ({} solve errors) in {:.2} s wall clock",
            range.step_stats.len(),
            range.solve_errors.len(),
            wall.elapsed().as_secs_f64()
        );
        if let Some(scada) = &range.scada {
            println!("SCADA tags:");
            for tag in scada.tag_names() {
                println!("  {:20} = {:?}", tag, scada.tag_value(&tag));
            }
            for (point, message) in scada.active_alarms() {
                println!("  ALARM {point}: {message}");
            }
        }
        for (name, handle) in &range.ieds {
            let trips = handle.trip_count();
            if trips > 0 {
                println!("  IED {name}: {trips} protection trip(s)");
            }
        }
    }
    ExitCode::SUCCESS
}
