//! Content fingerprints for SG-ML bundles.
//!
//! The lint layer's incremental engine keys its memoized queries on the
//! *content* of model files, not their timestamps: a file that is rewritten
//! with identical bytes reuses every cached result, and a one-character
//! edit invalidates exactly the queries that read it. The hash is FNV-1a 64
//! — not cryptographic, just a fast, stable, dependency-free identity for
//! cache keys (a collision costs a stale lint result, not a security hole).

use crate::range::SgmlBundle;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// An incremental FNV-1a 64 accumulator for fingerprinting multiple
/// length-delimited fields without concatenating them first.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    hash: u64,
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint { hash: FNV_OFFSET }
    }
}

impl Fingerprint {
    /// Starts a fresh accumulator.
    pub fn new() -> Fingerprint {
        Fingerprint::default()
    }

    /// Mixes a field in, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn update(&mut self, bytes: &[u8]) {
        for byte in (bytes.len() as u64)
            .to_le_bytes()
            .iter()
            .chain(bytes.iter())
        {
            self.hash ^= u64::from(*byte);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl SgmlBundle {
    /// A content fingerprint over every model file of the bundle, stable
    /// across processes. Two bundles with identical file contents (in the
    /// same order) share a fingerprint; any edit changes it.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        // Each section is tagged so content moving between fields (e.g. a
        // PLC config mistakenly saved as SCADA config) changes the hash.
        for (tag, texts) in [
            ("ssd", &self.ssds),
            ("scd", &self.scds),
            ("icd", &self.icds),
            ("sed", &self.seds),
            ("scenario", &self.scenarios),
        ] {
            for text in texts {
                fp.update(tag.as_bytes());
                fp.update(text.as_bytes());
            }
        }
        for (tag, text) in [
            ("ied_config", &self.ied_config),
            ("scada_config", &self.scada_config),
            ("plc_config", &self.plc_config),
            ("power_extra", &self.power_extra),
            ("scada_host", &self.scada_host),
        ] {
            if let Some(text) = text {
                fp.update(tag.as_bytes());
                fp.update(text.as_bytes());
            }
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_separates_fields() {
        let mut a = Fingerprint::new();
        a.update(b"ab");
        a.update(b"c");
        let mut b = Fingerprint::new();
        b.update(b"a");
        b.update(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn bundle_fingerprint_tracks_content() {
        let bundle = SgmlBundle {
            ssds: vec!["<SCL/>".into()],
            plc_config: Some("<PLCConfig/>".into()),
            ..SgmlBundle::default()
        };
        let base = bundle.fingerprint();
        assert_eq!(base, bundle.clone().fingerprint());
        let mut edited = bundle.clone();
        edited.plc_config = Some("<PLCConfig />".into());
        assert_ne!(base, edited.fingerprint());
        let mut moved = bundle;
        moved.scada_config = moved.plc_config.take();
        assert_ne!(base, moved.fingerprint());
    }
}
