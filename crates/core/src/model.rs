//! The immutable, shareable output of SG-ML compilation: a [`CompiledModel`].
//!
//! The SG-ML Processor is a compiler, and like any compiler its output is an
//! artifact that can be *executed many times*: one IEC 61850 model set is
//! compiled once — XML parsing, SED consolidation, power-model generation,
//! network planning, ICD feature gating, Structured-Text parsing — and the
//! resulting [`CompiledModel`] is wrapped in an [`Arc`] and instantiated
//! into any number of independent [`CyberRange`](crate::CyberRange)s. No
//! per-tenant work re-touches XML or ST source text; instantiation only
//! clones the pristine power model and stamps out fresh virtual devices
//! from the compiled blueprints.
//!
//! This is the model/state split behind the multi-tenant range farm: the
//! compiled model is the paper's "generated cyber range" as a reusable
//! artifact, while [`RangeState`](crate::state::RangeState) is one
//! exercise's mutable world.

use crate::compile::ied::compile_ied;
use crate::compile::network::{compile_network, NetworkPlan};
use crate::compile::power::{compile_power, PowerCompilation};
use crate::fingerprint::Fingerprint;
use crate::range::{RangeError, SgmlBundle};
use crate::sgml::ied_config::IedConfig;
use crate::sgml::plc_config::{PlcConfig, PlcLogic};
use crate::sgml::power_extra::PowerExtraConfig;
use sgcr_ied::IedSpec;
use sgcr_net::{Ipv4Addr, SimDuration};
use sgcr_plc::{GooseBinding, MmsReadBinding, MmsWriteBinding, Program};
use sgcr_powerflow::{PowerNetwork, SimulationSchedule};
use sgcr_scada::ScadaConfig;
use sgcr_scl::{
    consolidate_scd, consolidate_ssd, parse_icd, parse_scd, parse_sed, parse_ssd, Diagnostic,
    SclDocument,
};
use std::sync::Arc;

/// A PLC ready to instantiate: parsed program plus fully resolved bindings
/// (server names already mapped to IPs against the network plan).
#[derive(Debug, Clone)]
pub struct CompiledPlc {
    /// Host name (a ConnectedAP in the SCD).
    pub name: String,
    /// Scan period.
    pub scan_ms: u64,
    /// The parsed IEC 61131-3 program (ST or imported PLCopen XML).
    pub program: Program,
    /// MMS read bindings with resolved server IPs.
    pub reads: Vec<MmsReadBinding>,
    /// MMS write bindings with resolved server IPs.
    pub writes: Vec<MmsWriteBinding>,
    /// GOOSE subscription bindings.
    pub gooses: Vec<GooseBinding>,
}

/// The SCADA HMI blueprint: which host runs it and its tag/alarm config.
#[derive(Debug, Clone)]
pub struct CompiledScada {
    /// Host name of the workstation in the SCD.
    pub host: String,
    /// The parsed HMI configuration.
    pub config: ScadaConfig,
}

/// The immutable output of compiling an [`SgmlBundle`] — everything the
/// SG-ML Processor derives from the model files, and nothing that changes
/// while a range runs.
///
/// Wrap it in an [`Arc`] (see [`CompiledModel::shared`]) and hand clones of
/// the handle to [`RangeBuilder::from_model`](crate::RangeBuilder::from_model)
/// to stamp out tenants:
///
/// ```no_run
/// use sgcr_core::{CompiledModel, RangeBuilder, SgmlBundle};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bundle = SgmlBundle::from_dir("examples/epic_bundle")?;
/// let model = CompiledModel::shared(&bundle)?;
/// let tenant_a = RangeBuilder::from_model(model.clone()).build()?;
/// let tenant_b = RangeBuilder::from_model(model.clone()).build()?;
/// # let _ = (tenant_a, tenant_b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// The pristine physical model; every tenant starts from a clone of it.
    pub power: PowerNetwork,
    /// The cyber network plan (host IPs, switches, Figure-4 dot rendering).
    pub plan: NetworkPlan,
    /// Load profiles and scheduled disturbances from the Power Extra config.
    pub schedule: SimulationSchedule,
    /// Power-flow step interval from the Power Extra config (100 ms default).
    pub interval: SimDuration,
    /// Compiled virtual-IED specs (ICD-gated), in config order.
    pub ieds: Vec<IedSpec>,
    /// Compiled virtual PLCs, in config order.
    pub plcs: Vec<CompiledPlc>,
    /// The SCADA HMI blueprint, when configured.
    pub scada: Option<CompiledScada>,
    /// All diagnostics accumulated while compiling (warnings only — an
    /// error-severity diagnostic fails compilation).
    pub diagnostics: Vec<Diagnostic>,
}

impl CompiledModel {
    /// Finds a compiled IED spec by name.
    pub fn ied(&self, name: &str) -> Option<&IedSpec> {
        self.ieds.iter().find(|i| i.name == name)
    }

    /// Finds a compiled PLC by host name.
    pub fn plc(&self, name: &str) -> Option<&CompiledPlc> {
        self.plcs.iter().find(|p| p.name == name)
    }

    /// Compiles an SG-ML bundle into an immutable model — the complete
    /// parse/consolidate/generate pipeline of the paper's Figures 2–3, run
    /// exactly once per bundle.
    ///
    /// # Errors
    ///
    /// Returns [`RangeError`] when any model file fails to parse, cross-file
    /// validation produces an error-severity diagnostic, or a supplementary
    /// config references a host absent from the SCD.
    pub fn compile(bundle: &SgmlBundle) -> Result<CompiledModel, RangeError> {
        let mut diagnostics: Vec<Diagnostic> = Vec::new();

        // --- 1. Parse all SCL files ---------------------------------------
        let model = |what: &'static str| {
            move |e: sgcr_scl::SclError| RangeError::Model {
                what,
                detail: e.to_string(),
            }
        };
        let ssds: Vec<SclDocument> = bundle
            .ssds
            .iter()
            .map(|t| parse_ssd(t).map_err(model("SSD")))
            .collect::<Result<_, _>>()?;
        let scds: Vec<SclDocument> = bundle
            .scds
            .iter()
            .map(|t| parse_scd(t).map_err(model("SCD")))
            .collect::<Result<_, _>>()?;
        let icds: Vec<SclDocument> = bundle
            .icds
            .iter()
            .map(|t| parse_icd(t).map_err(model("ICD")))
            .collect::<Result<_, _>>()?;
        let seds: Vec<SclDocument> = bundle
            .seds
            .iter()
            .map(|t| parse_sed(t).map_err(model("SED")))
            .collect::<Result<_, _>>()?;

        // --- 2. SED-driven consolidation -----------------------------------
        let consolidated_ssd = consolidate_ssd(&ssds, &seds).map_err(model("consolidated SSD"))?;
        let consolidated_scd = consolidate_scd(&scds).map_err(model("consolidated SCD"))?;

        // --- 3. Compile the physical and cyber models ----------------------
        let PowerCompilation {
            network: power,
            bus_by_path: _,
            diagnostics: power_diags,
        } = compile_power(&consolidated_ssd);
        diagnostics.extend(power_diags);

        let plan = compile_network(&consolidated_scd);
        diagnostics.extend(plan.diagnostics.clone());
        if diagnostics
            .iter()
            .any(|d| d.severity == sgcr_scl::Severity::Error)
        {
            return Err(RangeError::Validation(diagnostics));
        }

        // --- 4. Simulation schedule ----------------------------------------
        let (interval, schedule) = match &bundle.power_extra {
            Some(text) => {
                let extra = PowerExtraConfig::parse(text).map_err(|e| RangeError::Model {
                    what: "Power System Extra Config XML",
                    detail: e.to_string(),
                })?;
                (SimDuration::from_millis(extra.interval_ms), extra.schedule)
            }
            None => (SimDuration::from_millis(100), SimulationSchedule::new()),
        };

        // --- 5. Virtual-IED specs (ICD feature gating) ---------------------
        let mut ieds: Vec<IedSpec> = Vec::new();
        if let Some(text) = &bundle.ied_config {
            let config = IedConfig::parse(text).map_err(|e| RangeError::Model {
                what: "IED Config XML",
                detail: e.to_string(),
            })?;
            for config_spec in &config.ieds {
                let icd = icds.iter().find(|d| d.ied(&config_spec.name).is_some());
                let spec = match icd {
                    Some(icd) => {
                        let compiled = compile_ied(config_spec, icd);
                        diagnostics.extend(compiled.diagnostics);
                        compiled.spec
                    }
                    None => {
                        diagnostics.push(Diagnostic::warning(
                            sgcr_scl::codes::ORPHAN_ICD,
                            format!(
                                "no ICD describes IED {:?}; instantiating from config alone",
                                config_spec.name
                            ),
                            "generate".to_string(),
                        ));
                        config_spec.clone()
                    }
                };
                if plan.host(&spec.name).is_none() {
                    return Err(RangeError::UnknownHost {
                        host: spec.name.clone(),
                        referenced_by: "IED Config XML",
                    });
                }
                ieds.push(spec);
            }
        }

        // --- 6. Virtual-PLC programs and bindings --------------------------
        let mut plcs: Vec<CompiledPlc> = Vec::new();
        if let Some(text) = &bundle.plc_config {
            let config = PlcConfig::parse(text).map_err(|e| RangeError::Model {
                what: "PLC Config XML",
                detail: e.to_string(),
            })?;
            for def in &config.plcs {
                if plan.host(&def.name).is_none() {
                    return Err(RangeError::UnknownHost {
                        host: def.name.clone(),
                        referenced_by: "PLC Config XML",
                    });
                }
                let program = match &def.logic {
                    PlcLogic::StructuredText(st) => {
                        sgcr_plc::parse_program(st).map_err(|e| RangeError::Model {
                            what: "PLC Structured Text",
                            detail: e.to_string(),
                        })?
                    }
                    PlcLogic::PlcOpenXml(xml) => {
                        sgcr_plc::parse_plcopen(xml).map_err(|e| RangeError::Model {
                            what: "PLCopen XML",
                            detail: e.to_string(),
                        })?
                    }
                };
                // Validate the program against the runtime once at compile
                // time, so instantiation cannot trip over it per tenant.
                let probe_registers = sgcr_modbus::SharedRegisters::with_size(1024);
                sgcr_plc::PlcRuntime::new(program.clone(), probe_registers).map_err(|e| {
                    RangeError::Model {
                        what: "PLC program",
                        detail: e.message,
                    }
                })?;
                let resolve_ip = |server: &str| -> Result<Ipv4Addr, RangeError> {
                    plan.host_ip(server).ok_or(RangeError::UnknownHost {
                        host: server.to_string(),
                        referenced_by: "PLC Config XML binding",
                    })
                };
                let reads = def
                    .reads
                    .iter()
                    .map(|r| {
                        Ok(MmsReadBinding {
                            server: resolve_ip(&r.server)?,
                            item: r.item.clone(),
                            variable: r.variable.clone(),
                            scale: r.scale,
                        })
                    })
                    .collect::<Result<Vec<_>, RangeError>>()?;
                let writes = def
                    .writes
                    .iter()
                    .map(|w| {
                        Ok(MmsWriteBinding {
                            server: resolve_ip(&w.server)?,
                            item: w.item.clone(),
                            variable: w.variable.clone(),
                        })
                    })
                    .collect::<Result<Vec<_>, RangeError>>()?;
                let gooses = def
                    .gooses
                    .iter()
                    .map(|g| GooseBinding {
                        gocb_ref: g.gocb_ref.clone(),
                        index: g.index,
                        variable: g.variable.clone(),
                    })
                    .collect();
                plcs.push(CompiledPlc {
                    name: def.name.clone(),
                    scan_ms: def.scan_ms,
                    program,
                    reads,
                    writes,
                    gooses,
                });
            }
        }

        // --- 7. SCADA HMI blueprint ----------------------------------------
        let mut scada = None;
        if let Some(text) = &bundle.scada_config {
            let config = ScadaConfig::parse(text).map_err(|e| RangeError::Model {
                what: "SCADA Config XML",
                detail: e.to_string(),
            })?;
            let host = bundle
                .scada_host
                .clone()
                .unwrap_or_else(|| "SCADA".to_string());
            if plan.host(&host).is_none() {
                return Err(RangeError::UnknownHost {
                    host,
                    referenced_by: "SCADA Config XML",
                });
            }
            scada = Some(CompiledScada { host, config });
        }

        Ok(CompiledModel {
            power,
            plan,
            schedule,
            interval,
            ieds,
            plcs,
            scada,
            diagnostics,
        })
    }

    /// Compiles a bundle straight into an [`Arc`] handle — the form every
    /// multi-tenant consumer wants.
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::compile`].
    pub fn shared(bundle: &SgmlBundle) -> Result<Arc<CompiledModel>, RangeError> {
        Ok(Arc::new(CompiledModel::compile(bundle)?))
    }

    /// A structural fingerprint of the compiled artifact: the model summary
    /// plus the names that drive instantiation (hosts, switches, IEDs, PLCs,
    /// SCADA host, power elements). Two models that fingerprint equal stamp
    /// out behaviourally identical tenants, which is the compatibility check
    /// a [`Checkpoint`](crate::Checkpoint) performs before resuming — a
    /// checkpoint taken against one model must not silently resume against
    /// another.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.update(self.summary().as_bytes());
        for host in &self.plan.hosts {
            fp.update(host.name.as_bytes());
            fp.update(host.ip.to_string().as_bytes());
        }
        for sw in &self.plan.switches {
            fp.update(sw.name.as_bytes());
        }
        for ied in &self.ieds {
            fp.update(ied.name.as_bytes());
        }
        for plc in &self.plcs {
            fp.update(plc.name.as_bytes());
        }
        if let Some(scada) = &self.scada {
            fp.update(scada.host.as_bytes());
        }
        for bus in &self.power.bus {
            fp.update(bus.name.as_bytes());
        }
        for line in &self.power.line {
            fp.update(line.name.as_bytes());
        }
        for switch in &self.power.switch {
            fp.update(switch.name.as_bytes());
        }
        fp.finish()
    }

    /// One-line inventory of the compiled artifact.
    pub fn summary(&self) -> String {
        format!(
            "compiled model: {} hosts, {} switches | {} | {} IEDs, {} PLCs, SCADA: {} | interval {} ms",
            self.plan.hosts.len(),
            self.plan.switches.len(),
            self.power.summary(),
            self.ieds.len(),
            self.plcs.len(),
            self.scada.is_some(),
            self.interval.as_millis(),
        )
    }
}
