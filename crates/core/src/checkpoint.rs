//! Mid-run checkpoints: a deterministic, versioned capture of one tenant's
//! [`RangeState`](crate::state::RangeState) that can be resumed against the
//! same shared [`CompiledModel`] — ROADMAP item 2's missing half.
//!
//! [`RangeSnapshot`](crate::RangeSnapshot) is a *restart-from-zero* recipe;
//! a [`Checkpoint`] is a *mid-run* capture. Because every source of
//! randomness in a range is the seeded fault RNG and the co-simulation is
//! otherwise a pure function of its inputs, the checkpoint does not need to
//! deep-copy live device state (virtual IED apps hold closures and shared
//! handles that cannot be cloned): it records the tenant's instantiation
//! settings plus its exact *replay position* — step count, simulation
//! clock, fault-RNG stream state, the full process store with per-entry
//! write versions, and a bit-exact digest of the power solution.
//!
//! [`Checkpoint::resume`] re-instantiates from the shared model and
//! re-executes the recorded number of steps, re-emitting journal events
//! into the new telemetry handle — so a resumed tenant's journal is
//! **byte-identical** to one that never paused (modulo wall-clock solve
//! times, exactly like the fault-determinism tests). The reconstructed
//! state is then verified against every recorded digest; any disagreement
//! is a typed [`CheckpointError::Divergence`], never silent drift. Capture
//! is cheap (a store dump plus a few hashes), suiting periodic supervision;
//! the O(steps) replay cost is paid only when a tenant actually restarts.
//!
//! The serialized form ([`Checkpoint::to_json`]) is versioned: a checkpoint
//! whose [`CHECKPOINT_VERSION`] does not match the running code is rejected
//! with [`CheckpointError::VersionMismatch`], and one taken against a
//! different compiled model with [`CheckpointError::ModelMismatch`].

use crate::fingerprint::fnv1a_64;
use crate::model::CompiledModel;
use crate::range::{CyberRange, RangeBuilder, RangeError};
use crate::state::{RangeSettings, RangeState};
use sgcr_kvstore::{Entry, Value};
use sgcr_obs::{json, Telemetry};
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// The checkpoint serialization format version this build writes and reads.
pub const CHECKPOINT_VERSION: u32 = 1;

/// An error capturing, decoding, or resuming a [`Checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// The checkpoint was written by an incompatible format version.
    VersionMismatch {
        /// Version recorded in the checkpoint.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The checkpoint was captured against a different compiled model.
    ModelMismatch {
        /// Fingerprint of the model offered for resume.
        found: u64,
        /// Fingerprint recorded in the checkpoint.
        expected: u64,
    },
    /// Re-instantiating the range from the shared model failed.
    Instantiate(RangeError),
    /// Replay reconstructed a state that disagrees with the recorded
    /// digests — the determinism contract was broken.
    Divergence {
        /// Which recorded quantity disagreed, with expected/actual values.
        detail: String,
    },
    /// The serialized checkpoint could not be decoded.
    Decode {
        /// What was malformed.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version {found} is not resumable by this build (expected {expected})"
            ),
            CheckpointError::ModelMismatch { found, expected } => write!(
                f,
                "checkpoint was captured against a different compiled model \
                 (model fingerprint {found:#018x}, checkpoint expects {expected:#018x})"
            ),
            CheckpointError::Instantiate(e) => write!(f, "cannot re-instantiate range: {e}"),
            CheckpointError::Divergence { detail } => {
                write!(f, "replay diverged from checkpoint: {detail}")
            }
            CheckpointError::Decode { detail } => write!(f, "malformed checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Instantiate(e) => Some(e),
            _ => None,
        }
    }
}

/// A deterministic, versioned mid-run capture of one tenant range. See the
/// module docs for the capture/replay design.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Serialization format version. Public so compatibility handling (and
    /// the version-rejection tests) can inspect and manipulate it.
    pub version: u32,
    model_fingerprint: u64,
    settings: RangeSettings,
    steps: u64,
    sim_time_ns: u64,
    fault_rng_state: u64,
    store_version: u64,
    cmd_cursor: u64,
    solve_errors_total: u64,
    power_digest: u64,
    store: Vec<(String, Entry)>,
}

/// Bit-exact digest of a power solution: FNV-1a over its debug rendering,
/// which prints every float with shortest-round-trip precision.
fn power_digest(state: &RangeState) -> u64 {
    fnv1a_64(format!("{:?}", state.last_result).as_bytes())
}

/// Bitwise value equality: floats compare by bit pattern, so `NaN` equals
/// itself and `-0.0` differs from `0.0` — replay verification must not be
/// weaker than the byte-identical journal contract.
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

impl Checkpoint {
    /// Captures the replay position of a live range (read-only; the range
    /// continues unaffected). Called between steps by
    /// [`CyberRange::checkpoint`].
    pub(crate) fn capture(
        model: &Arc<CompiledModel>,
        settings: &RangeSettings,
        state: &RangeState,
    ) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            model_fingerprint: model.fingerprint(),
            settings: settings.clone(),
            steps: state.steps_total(),
            sim_time_ns: state.now().as_nanos(),
            fault_rng_state: state.net.fault_rng_state(),
            store_version: state.store.version(),
            cmd_cursor: state.cmd_cursor(),
            solve_errors_total: state.solve_errors_total(),
            power_digest: power_digest(state),
            store: state.store.dump(),
        }
    }

    /// The number of co-simulation steps the captured tenant had executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulated nanoseconds at capture time.
    pub fn sim_time_ns(&self) -> u64 {
        self.sim_time_ns
    }

    /// Fingerprint of the compiled model the checkpoint was captured against.
    pub fn model_fingerprint(&self) -> u64 {
        self.model_fingerprint
    }

    /// Resumes the checkpoint against the shared compiled model: validates
    /// the format version and model fingerprint, re-instantiates a fresh
    /// range with the recorded settings, deterministically re-executes the
    /// recorded number of steps (journal events re-emit into `telemetry`,
    /// so the resumed tenant's full journal is byte-identical to an
    /// uninterrupted run), and verifies the reconstructed state against
    /// every recorded digest.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::VersionMismatch`] for a foreign format version,
    /// [`CheckpointError::ModelMismatch`] for a different model,
    /// [`CheckpointError::Instantiate`] when the range cannot be rebuilt,
    /// and [`CheckpointError::Divergence`] when replay disagrees with any
    /// recorded digest.
    pub fn resume(
        &self,
        model: Arc<CompiledModel>,
        telemetry: Telemetry,
    ) -> Result<CyberRange, CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: self.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        let found = model.fingerprint();
        if found != self.model_fingerprint {
            return Err(CheckpointError::ModelMismatch {
                found,
                expected: self.model_fingerprint,
            });
        }
        let mut builder = RangeBuilder::from_model(model)
            .telemetry(telemetry)
            .step_stats_capacity(self.settings.step_stats_capacity)
            .solve_errors_capacity(self.settings.solve_errors_capacity);
        if let Some(interval) = self.settings.interval {
            builder = builder.interval(interval);
        }
        if let Some(seed) = self.settings.fault_seed {
            builder = builder.fault_seed(seed);
        }
        let mut range = builder.build().map_err(CheckpointError::Instantiate)?;
        for _ in 0..self.steps {
            range.step();
        }
        self.verify(&range)?;
        Ok(range)
    }

    /// Compares a replayed range against every recorded digest.
    fn verify(&self, range: &CyberRange) -> Result<(), CheckpointError> {
        let diverged = |what: &str, expected: String, actual: String| {
            Err(CheckpointError::Divergence {
                detail: format!("{what}: checkpoint recorded {expected}, replay produced {actual}"),
            })
        };
        if range.steps_total() != self.steps {
            return diverged(
                "steps",
                self.steps.to_string(),
                range.steps_total().to_string(),
            );
        }
        if range.now().as_nanos() != self.sim_time_ns {
            return diverged(
                "sim clock (ns)",
                self.sim_time_ns.to_string(),
                range.now().as_nanos().to_string(),
            );
        }
        if range.net.fault_rng_state() != self.fault_rng_state {
            return diverged(
                "fault-RNG state",
                format!("{:#018x}", self.fault_rng_state),
                format!("{:#018x}", range.net.fault_rng_state()),
            );
        }
        if range.solve_errors_total() != self.solve_errors_total {
            return diverged(
                "solve errors",
                self.solve_errors_total.to_string(),
                range.solve_errors_total().to_string(),
            );
        }
        if range.store.version() != self.store_version {
            return diverged(
                "store version",
                self.store_version.to_string(),
                range.store.version().to_string(),
            );
        }
        if range.cmd_cursor() != self.cmd_cursor {
            return diverged(
                "command cursor",
                self.cmd_cursor.to_string(),
                range.cmd_cursor().to_string(),
            );
        }
        let replayed = range.store.dump();
        if replayed.len() != self.store.len() {
            return diverged(
                "store size",
                self.store.len().to_string(),
                replayed.len().to_string(),
            );
        }
        for ((key_a, entry_a), (key_b, entry_b)) in self.store.iter().zip(replayed.iter()) {
            if key_a != key_b
                || entry_a.version != entry_b.version
                || !values_equal(&entry_a.value, &entry_b.value)
            {
                return diverged(
                    "store entry",
                    format!("{key_a}={:?} @v{}", entry_a.value, entry_a.version),
                    format!("{key_b}={:?} @v{}", entry_b.value, entry_b.version),
                );
            }
        }
        let digest = power_digest(range);
        if digest != self.power_digest {
            return diverged(
                "power solution digest",
                format!("{:#018x}", self.power_digest),
                format!("{digest:#018x}"),
            );
        }
        Ok(())
    }

    /// Serializes the checkpoint as one JSON object (single line). All
    /// 64-bit quantities that may exceed JSON's exact-integer range — RNG
    /// state, digests, fingerprints, seeds, float payloads — are encoded as
    /// hex/decimal *strings* so nothing is rounded through an `f64`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.store.len() * 64);
        let _ = write!(
            out,
            "{{\"format\":\"sgcr-checkpoint\",\"version\":{},\"model_fingerprint\":\"{:#018x}\",",
            self.version, self.model_fingerprint
        );
        out.push_str("\"settings\":{");
        match self.settings.interval {
            Some(interval) => {
                let _ = write!(out, "\"interval_ns\":{},", interval.as_nanos());
            }
            None => out.push_str("\"interval_ns\":null,"),
        }
        let _ = write!(
            out,
            "\"step_stats_capacity\":{},\"solve_errors_capacity\":{},",
            self.settings.step_stats_capacity, self.settings.solve_errors_capacity
        );
        match self.settings.fault_seed {
            Some(seed) => {
                let _ = write!(out, "\"fault_seed\":\"{seed}\"");
            }
            None => out.push_str("\"fault_seed\":null"),
        }
        let _ = write!(
            out,
            "}},\"steps\":{},\"sim_time_ns\":{},\"fault_rng_state\":\"{:#018x}\",\
             \"store_version\":{},\"cmd_cursor\":{},\"solve_errors_total\":{},\
             \"power_digest\":\"{:#018x}\",\"store\":[",
            self.steps,
            self.sim_time_ns,
            self.fault_rng_state,
            self.store_version,
            self.cmd_cursor,
            self.solve_errors_total,
            self.power_digest,
        );
        for (i, (key, entry)) in self.store.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (tag, payload) = match &entry.value {
                Value::Bool(b) => ("b", b.to_string()),
                Value::Int(v) => ("i", v.to_string()),
                Value::Float(v) => ("f", format!("{:#018x}", v.to_bits())),
                Value::Str(s) => ("s", s.clone()),
            };
            let _ = write!(
                out,
                "[{},{},\"{tag}\",{}]",
                json::quote(key),
                entry.version,
                json::quote(&payload)
            );
        }
        out.push_str("]}");
        out
    }

    /// Decodes a checkpoint serialized by [`Checkpoint::to_json`]. The
    /// format version is *not* validated here — decoding a future version
    /// succeeds structurally and [`resume`](Checkpoint::resume) rejects it
    /// with the typed [`CheckpointError::VersionMismatch`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Decode`] for malformed JSON or schema violations.
    pub fn from_json(text: &str) -> Result<Checkpoint, CheckpointError> {
        let bad = |detail: String| CheckpointError::Decode { detail };
        let root = json::parse(text).map_err(bad)?;
        if root.get("format").and_then(json::Value::as_str) != Some("sgcr-checkpoint") {
            return Err(bad("missing sgcr-checkpoint format marker".to_string()));
        }
        let num = |key: &str| -> Result<u64, CheckpointError> {
            root.get(key)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| bad(format!("missing numeric field {key:?}")))
        };
        let hex = |key: &str| -> Result<u64, CheckpointError> {
            let text = root
                .get(key)
                .and_then(json::Value::as_str)
                .ok_or_else(|| bad(format!("missing hex field {key:?}")))?;
            parse_u64_text(text).ok_or_else(|| bad(format!("bad hex field {key:?}: {text}")))
        };
        let settings_value = root
            .get("settings")
            .ok_or_else(|| bad("missing settings".to_string()))?;
        let interval = match settings_value.get("interval_ns") {
            None | Some(json::Value::Null) => None,
            Some(v) => Some(sgcr_net::SimDuration::from_nanos(
                v.as_u64()
                    .ok_or_else(|| bad("bad settings.interval_ns".to_string()))?,
            )),
        };
        let capacity = |key: &str| -> Result<usize, CheckpointError> {
            settings_value
                .get(key)
                .and_then(json::Value::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| bad(format!("missing settings.{key}")))
        };
        let fault_seed = match settings_value.get("fault_seed") {
            None | Some(json::Value::Null) => None,
            Some(v) => {
                let text = v
                    .as_str()
                    .ok_or_else(|| bad("bad settings.fault_seed".to_string()))?;
                Some(
                    parse_u64_text(text)
                        .ok_or_else(|| bad(format!("bad settings.fault_seed: {text}")))?,
                )
            }
        };
        let settings = RangeSettings {
            interval,
            step_stats_capacity: capacity("step_stats_capacity")?,
            solve_errors_capacity: capacity("solve_errors_capacity")?,
            fault_seed,
        };
        let store_value = root
            .get("store")
            .and_then(json::Value::as_array)
            .ok_or_else(|| bad("missing store array".to_string()))?;
        let mut store = Vec::with_capacity(store_value.len());
        for item in store_value {
            let fields = item
                .as_array()
                .filter(|f| f.len() == 4)
                .ok_or_else(|| bad("store entry is not a 4-tuple".to_string()))?;
            let key = fields[0]
                .as_str()
                .ok_or_else(|| bad("store entry key is not a string".to_string()))?
                .to_string();
            let version = fields[1]
                .as_u64()
                .ok_or_else(|| bad(format!("store entry {key:?} has a bad version")))?;
            let tag = fields[2].as_str().unwrap_or("");
            let payload = fields[3]
                .as_str()
                .ok_or_else(|| bad(format!("store entry {key:?} has a bad payload")))?;
            let value = match tag {
                "b" => Value::Bool(payload == "true"),
                "i" => Value::Int(
                    payload
                        .parse::<i64>()
                        .map_err(|e| bad(format!("store entry {key:?}: {e}")))?,
                ),
                "f" => Value::Float(f64::from_bits(parse_u64_text(payload).ok_or_else(
                    || {
                        bad(format!(
                            "store entry {key:?} has bad float bits {payload:?}"
                        ))
                    },
                )?)),
                "s" => Value::Str(payload.to_string()),
                other => {
                    return Err(bad(format!(
                        "store entry {key:?} has unknown value tag {other:?}"
                    )))
                }
            };
            store.push((key, Entry { value, version }));
        }
        Ok(Checkpoint {
            version: num("version")? as u32,
            model_fingerprint: hex("model_fingerprint")?,
            settings,
            steps: num("steps")?,
            sim_time_ns: num("sim_time_ns")?,
            fault_rng_state: hex("fault_rng_state")?,
            store_version: num("store_version")?,
            cmd_cursor: num("cmd_cursor")?,
            solve_errors_total: num("solve_errors_total")?,
            power_digest: hex("power_digest")?,
            store,
        })
    }
}

/// Parses a `u64` written as `0x…` hex or plain decimal.
fn parse_u64_text(text: &str) -> Option<u64> {
    match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse::<u64>().ok(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn u64_text_round_trips() {
        assert_eq!(parse_u64_text("0x00000000000000ff"), Some(255));
        assert_eq!(parse_u64_text("42"), Some(42));
        assert_eq!(parse_u64_text("0xzz"), None);
        assert_eq!(parse_u64_text(""), None);
        assert_eq!(
            parse_u64_text(&format!("{:#018x}", u64::MAX)),
            Some(u64::MAX)
        );
    }

    #[test]
    fn float_values_compare_bitwise() {
        assert!(values_equal(
            &Value::Float(f64::NAN),
            &Value::Float(f64::NAN)
        ));
        assert!(!values_equal(&Value::Float(0.0), &Value::Float(-0.0)));
        assert!(values_equal(&Value::Int(3), &Value::Int(3)));
        assert!(!values_equal(&Value::Int(3), &Value::Float(3.0)));
    }
}
