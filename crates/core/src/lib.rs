#![warn(missing_docs)]

//! # sgcr-core
//!
//! **SG-ML**: the modelling language and processor for automated generation
//! of smart grid cyber ranges — the primary contribution of the paper this
//! repository reproduces.
//!
//! A cyber range is described by a set of XML model files (the
//! [`SgmlBundle`]): standardized IEC 61850 SCL files (SSD/SCD/ICD/SED,
//! parsed by `sgcr-scl`), IEC 61131-3 PLCopen XML (parsed by `sgcr-plc`),
//! and the SG-ML supplementary schemas defined here — [`IedConfig`] XML
//! (protection thresholds + cyber↔physical mapping), [`PlcConfig`] XML,
//! SCADA Config XML (in `sgcr-scada`), and [`PowerExtraConfig`] XML (load
//! profiles, disturbance scenarios, and the simulation interval).
//!
//! [`CompiledModel::compile`] is the *SG-ML Processor*: like a compiler, it
//! parses the models, consolidates multi-substation files along SED
//! connectivity, generates the power-flow model from the SSD, the network
//! emulation model from the SCD, and compiles virtual-IED specs (features
//! gated by their ICDs), PLC programs, and the SCADA HMI blueprint into an
//! immutable, [`Arc`](std::sync::Arc)-shareable artifact. Instantiating
//! that artifact ([`CyberRange::instantiate`]) yields an *operational*
//! cyber range ready for interactive experiments — cheaply enough that one
//! compiled model can back thousands of concurrent tenant ranges (see the
//! [`RangeSnapshot`] restart recipe and the `sgcr-farm` crate).
//!
//! # Examples
//!
//! Compiling model files once and running a range:
//!
//! ```no_run
//! use sgcr_core::{CompiledModel, CyberRange, SgmlBundle};
//! use sgcr_net::SimDuration;
//!
//! # fn load(_: &str) -> String { String::new() }
//! let bundle = SgmlBundle {
//!     ssds: vec![load("substation.ssd.xml")],
//!     scds: vec![load("substation.scd.xml")],
//!     icds: vec![load("ied1.icd.xml")],
//!     ied_config: Some(load("ied_config.xml")),
//!     scada_config: Some(load("scada_config.xml")),
//!     ..SgmlBundle::default()
//! };
//! let model = CompiledModel::shared(&bundle)?;
//! let mut range = CyberRange::instantiate(model)?;
//! range.run_for(SimDuration::from_secs(10));
//! # Ok::<(), sgcr_core::RangeError>(())
//! ```

mod checkpoint;
mod files;
mod fingerprint;
mod keymap;
mod model;
mod range;
mod state;

pub mod compile;
pub mod sgml;

pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_VERSION};
pub use files::BundleIoError;
pub use fingerprint::{fnv1a_64, Fingerprint};
pub use keymap::{
    branch_i_key, branch_loading_key, branch_p_key, branch_q_key, breaker_cmd_key,
    breaker_state_key, bus_va_key, bus_vm_key, load_p_key, source_p_key, split_scoped,
};
pub use model::{CompiledModel, CompiledPlc, CompiledScada};
pub use range::{
    CyberRange, RangeBuilder, RangeError, RangeSnapshot, SgmlBundle, StepStats,
    DEFAULT_SOLVE_ERRORS_CAPACITY, DEFAULT_STEP_STATS_CAPACITY,
};
pub use sgml::ied_config::{IedConfig, IedConfigError};
pub use sgml::plc_config::{
    PlcConfig, PlcConfigError, PlcDef, PlcGooseRule, PlcLogic, PlcReadRule, PlcWriteRule,
};
pub use sgml::power_extra::{PowerExtraConfig, PowerExtraError};
pub use state::{RangeSettings, RangeState};

pub use compile::ied::{compile_ied, IedCompilation};
pub use compile::network::{compile_network, NetworkPlan, PlannedHost, PlannedSwitch};
pub use compile::power::{compile_power, PowerCompilation};
