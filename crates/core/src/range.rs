//! The operational cyber range: compiled model + per-tenant runtime state.
//!
//! The runtime mirrors the paper's architecture exactly: an emulated cyber
//! network hosting virtual IEDs, PLCs, and a SCADA HMI, coupled to a
//! steady-state power-flow simulation through a key-value process cache.
//! The power flow is re-solved periodically (default every 100 ms); each
//! step applies load profiles and scenario events, executes breaker/set-point
//! commands written by the cyber side, solves, and publishes fresh
//! measurements for the virtual devices to sample.
//!
//! Since the model/state split, a [`CyberRange`] is a thin pairing of an
//! immutable, `Arc`-shared [`CompiledModel`] with one tenant's mutable
//! [`RangeState`]; it [`Deref`]s to the state, so `range.step()`,
//! `range.net`, `range.ieds`, fault injection, and every probe keep their
//! familiar spelling. Compile once, instantiate many:
//!
//! ```no_run
//! use sgcr_core::{CompiledModel, CyberRange, SgmlBundle};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bundle = SgmlBundle::from_dir("examples/epic_bundle")?;
//! let model = CompiledModel::shared(&bundle)?;   // parse + compile, once
//! let mut a = CyberRange::instantiate(model.clone())?; // cheap, per tenant
//! let mut b = CyberRange::instantiate(model.clone())?;
//! # let _ = (&mut a, &mut b);
//! # Ok(())
//! # }
//! ```

use crate::compile::network::NetworkPlan;
use crate::model::CompiledModel;
use crate::state::{RangeSettings, RangeState};
use sgcr_net::SimDuration;
use sgcr_obs::Telemetry;
use sgcr_powerflow::PowerFlowError;
use sgcr_scl::Diagnostic;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

pub use crate::state::{DEFAULT_SOLVE_ERRORS_CAPACITY, DEFAULT_STEP_STATS_CAPACITY};

/// The set of SG-ML model files a cyber range is generated from — the
/// left-hand side of the paper's Figure 2.
#[derive(Debug, Clone, Default)]
pub struct SgmlBundle {
    /// SSD files (one per substation).
    pub ssds: Vec<String>,
    /// SCD files (one per substation).
    pub scds: Vec<String>,
    /// ICD files (one per IED type/instance).
    pub icds: Vec<String>,
    /// SED files (one per substation pair).
    pub seds: Vec<String>,
    /// Supplementary IED Config XML.
    pub ied_config: Option<String>,
    /// Supplementary SCADA Config XML.
    pub scada_config: Option<String>,
    /// Supplementary PLC Config XML.
    pub plc_config: Option<String>,
    /// Supplementary Power System Extra Config XML.
    pub power_extra: Option<String>,
    /// Exercise Scenario XML files (`*.scenario.xml`, any number). Not used
    /// by range generation itself; `sgcr-scenario` runs them on the built
    /// range and `sgcr-lint` validates them against the bundle.
    pub scenarios: Vec<String>,
    /// Host name of the SCADA workstation in the SCD (default `SCADA`).
    pub scada_host: Option<String>,
}

/// An error producing or running a cyber range.
#[derive(Debug)]
pub enum RangeError {
    /// A model file failed to parse.
    Model {
        /// Which file kind.
        what: &'static str,
        /// The parse error text.
        detail: String,
    },
    /// Cross-file validation failed.
    Validation(Vec<Diagnostic>),
    /// The initial power flow failed.
    PowerFlow(PowerFlowError),
    /// An IED/PLC/SCADA host named in a config is absent from the SCD.
    UnknownHost {
        /// The missing host.
        host: String,
        /// What referenced it.
        referenced_by: &'static str,
    },
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeError::Model { what, detail } => write!(f, "cannot parse {what}: {detail}"),
            RangeError::Validation(diagnostics) => {
                write!(f, "model validation failed:")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            RangeError::PowerFlow(e) => write!(f, "initial power flow failed: {e}"),
            RangeError::UnknownHost {
                host,
                referenced_by,
            } => write!(
                f,
                "{referenced_by} references host {host:?} absent from the SCD"
            ),
        }
    }
}

impl std::error::Error for RangeError {}

/// Wall-clock statistics of one co-simulation step (for the paper's
/// scalability experiment).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Wall time spent in the power-flow solve.
    pub solve_seconds: f64,
    /// Wall time of the complete step (solve + event processing).
    pub total_seconds: f64,
    /// Newton–Raphson iterations.
    pub iterations: usize,
}

/// A deterministic restart recipe for a range: the shared model handle plus
/// the tenant's instantiation settings (interval, retention bounds, fault
/// seed).
///
/// Because the whole co-simulation is deterministic under a fixed fault
/// seed, re-instantiating from a snapshot and re-running the same exercise
/// replays the original journal byte-for-byte — which is what an "instant
/// exercise restart" needs. Snapshots are cheap (`Arc` bump + a few
/// integers) and `Clone`.
#[derive(Debug, Clone)]
pub struct RangeSnapshot {
    model: Arc<CompiledModel>,
    settings: RangeSettings,
}

impl RangeSnapshot {
    /// The shared compiled model this snapshot restarts from.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// Builds a fresh range at generation zero from this snapshot, with its
    /// own telemetry handle (pass [`Telemetry::disabled()`] when journals
    /// are not needed).
    ///
    /// # Errors
    ///
    /// See [`CyberRange::instantiate`].
    pub fn instantiate(&self, telemetry: Telemetry) -> Result<CyberRange, RangeError> {
        let state = RangeState::instantiate(&self.model, &self.settings, telemetry)?;
        Ok(CyberRange {
            model: self.model.clone(),
            settings: self.settings.clone(),
            state,
        })
    }
}

/// A generated, operational smart grid cyber range: one tenant's
/// [`RangeState`] bound to its `Arc`-shared [`CompiledModel`].
///
/// Dereferences to [`RangeState`], so all runtime methods and fields
/// (`net`, `store`, `power`, `ieds`, `step()`, `run_for()`, fault
/// injection, state probes) are used directly on the range.
pub struct CyberRange {
    model: Arc<CompiledModel>,
    settings: RangeSettings,
    state: RangeState,
}

impl Deref for CyberRange {
    type Target = RangeState;

    fn deref(&self) -> &RangeState {
        &self.state
    }
}

impl DerefMut for CyberRange {
    fn deref_mut(&mut self) -> &mut RangeState {
        &mut self.state
    }
}

/// Configures and instantiates a [`CyberRange`] — the front door of the
/// SG-ML Processor pipeline.
///
/// [`RangeBuilder::from_model`] is the multi-tenant path: it reuses an
/// already-compiled model, so building a range costs one power-model clone
/// and some virtual-device setup (no XML or ST parsing). The builder is how
/// a step interval override, a [`Telemetry`] handle, a fault seed, or
/// different retention bounds are attached:
///
/// ```no_run
/// use sgcr_core::{CompiledModel, RangeBuilder, SgmlBundle};
/// use sgcr_net::SimDuration;
/// use sgcr_obs::Telemetry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bundle = SgmlBundle::from_dir("examples/epic_bundle")?;
/// let model = CompiledModel::shared(&bundle)?;
/// let telemetry = Telemetry::new();
/// let mut range = RangeBuilder::from_model(model)
///     .interval(SimDuration::from_millis(50))
///     .telemetry(telemetry.clone())
///     .build()?;
/// range.run_for(SimDuration::from_secs(2));
/// println!("{}", telemetry.snapshot().to_text());
/// # Ok(())
/// # }
/// ```
pub struct RangeBuilder {
    source: Source,
    interval: Option<SimDuration>,
    telemetry: Telemetry,
    step_stats_capacity: usize,
    solve_errors_capacity: usize,
    fault_seed: Option<u64>,
}

enum Source {
    /// Compile this bundle first (deprecated single-tenant path).
    Bundle(Box<SgmlBundle>),
    /// Instantiate straight from a shared compiled model.
    Model(Arc<CompiledModel>),
}

impl RangeBuilder {
    /// Starts a builder over an already-compiled, `Arc`-shared model with
    /// defaults: interval from the model (100 ms absent a Power Extra
    /// config), telemetry disabled, and the
    /// [default](DEFAULT_STEP_STATS_CAPACITY) retention bounds.
    pub fn from_model(model: Arc<CompiledModel>) -> RangeBuilder {
        RangeBuilder {
            source: Source::Model(model),
            interval: None,
            telemetry: Telemetry::disabled(),
            step_stats_capacity: DEFAULT_STEP_STATS_CAPACITY,
            solve_errors_capacity: DEFAULT_SOLVE_ERRORS_CAPACITY,
            fault_seed: None,
        }
    }

    /// Starts a builder over a model bundle. The bundle is cloned and
    /// compiled privately inside [`build`](RangeBuilder::build) — every
    /// range built this way pays the full XML/ST compilation cost.
    #[deprecated(
        note = "compile once with `CompiledModel::shared(&bundle)` and use `RangeBuilder::from_model` so ranges share the artifact"
    )]
    pub fn new(bundle: &SgmlBundle) -> RangeBuilder {
        RangeBuilder {
            source: Source::Bundle(Box::new(bundle.clone())),
            interval: None,
            telemetry: Telemetry::disabled(),
            step_stats_capacity: DEFAULT_STEP_STATS_CAPACITY,
            solve_errors_capacity: DEFAULT_SOLVE_ERRORS_CAPACITY,
            fault_seed: None,
        }
    }

    /// Overrides the power-flow step interval (takes precedence over the
    /// Power Extra config).
    pub fn interval(mut self, interval: SimDuration) -> RangeBuilder {
        self.interval = Some(interval);
        self
    }

    /// Attaches a telemetry handle. It is threaded through the emulated
    /// network, the power-flow solver, every virtual IED/PLC, the SCADA HMI,
    /// and the co-simulation loop itself.
    pub fn telemetry(mut self, telemetry: Telemetry) -> RangeBuilder {
        self.telemetry = telemetry;
        self
    }

    /// Bounds how many per-step [`StepStats`] records the range retains
    /// (oldest evicted first; minimum 1). [`RangeState::steps_total`] keeps
    /// the lifetime count regardless.
    pub fn step_stats_capacity(mut self, capacity: usize) -> RangeBuilder {
        self.step_stats_capacity = capacity.max(1);
        self
    }

    /// Bounds how many solve errors the range retains (oldest evicted first;
    /// minimum 1). [`RangeState::solve_errors_total`] keeps the lifetime
    /// count regardless.
    pub fn solve_errors_capacity(mut self, capacity: usize) -> RangeBuilder {
        self.solve_errors_capacity = capacity.max(1);
        self
    }

    /// Seeds the deterministic fault-injection generator (frame loss,
    /// corruption, duplication, jitter draws). Two runs of the same range
    /// with the same seed and the same fault profiles replay byte-identical
    /// journals. Unseeded ranges use seed 0.
    pub fn fault_seed(mut self, seed: u64) -> RangeBuilder {
        self.fault_seed = Some(seed);
        self
    }

    /// Builds the operational cyber range. From a shared model this is the
    /// cheap per-tenant path; from a bundle it runs the complete SG-ML
    /// Processor pipeline of the paper's Figures 2–3 first.
    ///
    /// # Errors
    ///
    /// Returns [`RangeError`] when compilation fails (bundle path only) or
    /// the initial power flow cannot be solved.
    pub fn build(self) -> Result<CyberRange, RangeError> {
        let model = match self.source {
            Source::Model(model) => model,
            Source::Bundle(bundle) => CompiledModel::shared(&bundle)?,
        };
        let settings = RangeSettings {
            interval: self.interval,
            step_stats_capacity: self.step_stats_capacity,
            solve_errors_capacity: self.solve_errors_capacity,
            fault_seed: self.fault_seed,
        };
        let state = RangeState::instantiate(&model, &settings, self.telemetry)?;
        Ok(CyberRange {
            model,
            settings,
            state,
        })
    }
}

impl CyberRange {
    /// Instantiates a range from a shared compiled model with default
    /// settings — shorthand for `RangeBuilder::from_model(model).build()`.
    /// This is the cheap path the multi-tenant farm takes per tenant.
    ///
    /// # Errors
    ///
    /// See [`RangeBuilder::build`].
    pub fn instantiate(model: Arc<CompiledModel>) -> Result<CyberRange, RangeError> {
        RangeBuilder::from_model(model).build()
    }

    /// Generates an operational cyber range from an SG-ML model bundle with
    /// default settings, compiling the bundle privately.
    ///
    /// # Errors
    ///
    /// See [`RangeBuilder::build`].
    #[deprecated(
        note = "compile once with `CompiledModel::shared(&bundle)` and use `CyberRange::instantiate` so ranges share the artifact"
    )]
    pub fn generate(bundle: &SgmlBundle) -> Result<CyberRange, RangeError> {
        let model = CompiledModel::shared(bundle)?;
        CyberRange::instantiate(model)
    }

    /// The `Arc`-shared compiled model this range was instantiated from.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The compiled network plan (host IPs, Figure-4 dot rendering) —
    /// part of the shared model.
    pub fn plan(&self) -> &NetworkPlan {
        &self.model.plan
    }

    /// All diagnostics accumulated while compiling the model.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.model.diagnostics
    }

    /// Captures a deterministic restart recipe: the model handle plus this
    /// tenant's instantiation settings. See [`RangeSnapshot`].
    pub fn snapshot(&self) -> RangeSnapshot {
        RangeSnapshot {
            model: self.model.clone(),
            settings: self.settings.clone(),
        }
    }

    /// Captures a deterministic *mid-run* checkpoint: the replay position of
    /// this tenant — step count, simulation clock, fault-RNG stream state,
    /// full process store with write versions, and a bit-exact digest of the
    /// power solution. Cheap and read-only; call it between steps. See
    /// [`Checkpoint`](crate::Checkpoint) for the resume contract.
    pub fn checkpoint(&self) -> crate::Checkpoint {
        crate::Checkpoint::capture(&self.model, &self.settings, &self.state)
    }

    /// Rewinds this range to generation zero in place: fresh network, fresh
    /// devices, fresh power state, simulation clock back at 0 — an instant
    /// exercise restart. The existing telemetry handle is kept, so restart
    /// events append to the same journal; use
    /// [`restore_with`](CyberRange::restore_with) to attach a fresh one
    /// (e.g. for byte-identical replay comparison).
    ///
    /// # Errors
    ///
    /// See [`CyberRange::instantiate`] (the initial solve re-runs).
    pub fn restore(&mut self) -> Result<(), RangeError> {
        self.restore_with(self.state.telemetry().clone())
    }

    /// Rewinds this range to generation zero with a replacement telemetry
    /// handle. A restored range replays an identical exercise byte-for-byte
    /// under the same fault seed.
    ///
    /// # Errors
    ///
    /// See [`CyberRange::instantiate`] (the initial solve re-runs).
    pub fn restore_with(&mut self, telemetry: Telemetry) -> Result<(), RangeError> {
        self.state = RangeState::instantiate(&self.model, &self.settings, telemetry)?;
        Ok(())
    }

    /// Summary line for logs and the pipeline demonstration binary.
    pub fn summary(&self) -> String {
        let trips: usize = self
            .ieds
            .values()
            .map(sgcr_ied::IedHandle::trip_count)
            .sum();
        format!(
            "cyber range: {} hosts, {} switches | {} | {} IEDs, {} PLCs, SCADA: {} | interval {} ms | {} solve errors, {} trips",
            self.model.plan.hosts.len(),
            self.model.plan.switches.len(),
            self.power.summary(),
            self.ieds.len(),
            self.plcs.len(),
            self.scada.is_some(),
            self.interval.as_millis(),
            self.solve_errors_total(),
            trips,
        )
    }
}
