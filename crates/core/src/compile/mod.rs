//! The SG-ML Processor compilation stages (the paper's Figure 3 modules):
//! SSD → power model, SCD → network plan, ICD + config → IED spec.

pub mod ied;
pub mod network;
pub mod power;
