//! Virtual IED instantiation: combining an ICD (which logical nodes the IED
//! declares → which features are enabled) with the supplementary IED Config
//! XML (thresholds + cyber↔physical mapping).
//!
//! Per the paper: *"Each virtual IED is instantiated by an IEC 61850 ICD
//! file by enabling features defined in it. For instance, if the ICD file
//! contains definition of logical node PTOV, overvoltage protection function
//! is enabled … an ICD file alone is not sufficient because actual threshold
//! for each protection function is not specified"*.

use sgcr_ied::IedSpec;
use sgcr_scl::{codes, Diagnostic, SclDocument};

/// The outcome of resolving one IED against its ICD.
#[derive(Debug)]
pub struct IedCompilation {
    /// The validated spec (functions without ICD backing removed).
    pub spec: IedSpec,
    /// Diagnostics (missing LNs, disabled functions).
    pub diagnostics: Vec<Diagnostic>,
}

/// Resolves a configured spec against the IED's ICD: protection functions
/// whose LN class the ICD does not declare are disabled (with a diagnostic),
/// and GOOSE publication requires an LLN0 on the IED.
pub fn compile_ied(config_spec: &IedSpec, icd: &SclDocument) -> IedCompilation {
    let mut diagnostics = Vec::new();
    let mut spec = config_spec.clone();

    let Some(ied) = icd.ied(&spec.name).or_else(|| icd.ieds.first()) else {
        diagnostics.push(Diagnostic::error(
            codes::ORPHAN_ICD,
            format!("ICD does not describe IED {:?}", spec.name),
            "compile_ied".to_string(),
        ));
        spec.protections.clear();
        spec.goose = None;
        return IedCompilation { spec, diagnostics };
    };

    // The ICD gates which protection features are enabled.
    spec.protections.retain(|p| {
        let class = p.ln_class();
        if ied.has_ln_class(class) {
            true
        } else {
            diagnostics.push(Diagnostic::warning(
                codes::FEATURE_NO_LN,
                format!(
                    "{}: protection {} configured but ICD declares no {class} — disabled",
                    spec.name,
                    p.ln()
                ),
                "compile_ied".to_string(),
            ));
            false
        }
    });

    // Breakers need an XCBR; measurements an MMXU (warn only).
    if !spec.breakers.is_empty() && !ied.has_ln_class("XCBR") {
        diagnostics.push(Diagnostic::warning(
            codes::FEATURE_NO_LN,
            format!("{}: breakers mapped but ICD declares no XCBR", spec.name),
            "compile_ied".to_string(),
        ));
    }
    if !spec.measurements.is_empty() && !ied.has_ln_class("MMXU") {
        diagnostics.push(Diagnostic::warning(
            codes::FEATURE_NO_LN,
            format!(
                "{}: measurements mapped but ICD declares no MMXU",
                spec.name
            ),
            "compile_ied".to_string(),
        ));
    }
    if spec.goose.is_some() && !ied.has_ln_class("LLN0") {
        diagnostics.push(Diagnostic::warning(
            codes::FEATURE_NO_LN,
            format!(
                "{}: GOOSE configured but ICD declares no LLN0 — disabled",
                spec.name
            ),
            "compile_ied".to_string(),
        ));
        spec.goose = None;
    }
    // R-SV / PDIF pairing: the paper enables inter-substation comms when the
    // relevant LNs exist.
    let has_pdif = spec.protections.iter().any(|p| p.ln_class() == "PDIF");
    if spec.rsv.is_some() && !has_pdif && !ied.has_ln_class("PDIF") {
        diagnostics.push(Diagnostic::warning(
            codes::FEATURE_NO_LN,
            format!(
                "{}: R-SV configured without PDIF — kept for streaming only",
                spec.name
            ),
            "compile_ied".to_string(),
        ));
    }

    IedCompilation { spec, diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgcr_ied::ProtectionSpec;
    use sgcr_scl::parse_icd;

    fn icd_with(classes: &[&str]) -> SclDocument {
        let lns: String = classes
            .iter()
            .map(|c| {
                if *c == "LLN0" {
                    r#"<LN0 lnClass="LLN0" inst="" lnType="LLN0_T"/>"#.to_string()
                } else {
                    format!(r#"<LN lnClass="{c}" inst="1" lnType="{c}_T"/>"#)
                }
            })
            .collect();
        let text = format!(
            r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL"><Header id="icd"/>
            <IED name="GIED1"><AccessPoint name="AP1"><Server>
            <LDevice inst="LD0">{lns}</LDevice></Server></AccessPoint></IED></SCL>"#
        );
        parse_icd(&text).unwrap()
    }

    fn spec_with_ptoc_and_ptov() -> IedSpec {
        let mut spec = IedSpec::new("GIED1", "S1");
        spec.protections.push(ProtectionSpec::Ptoc {
            ln: "PTOC1".into(),
            measurement_key: "k".into(),
            pickup: 1.0,
            delay_ms: 100,
            breaker: "CB1".into(),
        });
        spec.protections.push(ProtectionSpec::Ptov {
            ln: "PTOV1".into(),
            voltage_key: "v".into(),
            threshold_pu: 1.1,
            delay_ms: 100,
            breaker: "CB1".into(),
        });
        spec
    }

    #[test]
    fn icd_enables_declared_functions() {
        let icd = icd_with(&["LLN0", "XCBR", "PTOC", "PTOV", "MMXU"]);
        let result = compile_ied(&spec_with_ptoc_and_ptov(), &icd);
        assert_eq!(result.spec.protections.len(), 2);
        assert!(result.diagnostics.is_empty());
    }

    #[test]
    fn missing_ln_disables_function() {
        // ICD declares PTOC but not PTOV → over-voltage must be disabled.
        let icd = icd_with(&["LLN0", "XCBR", "PTOC"]);
        let result = compile_ied(&spec_with_ptoc_and_ptov(), &icd);
        assert_eq!(result.spec.protections.len(), 1);
        assert_eq!(result.spec.protections[0].ln_class(), "PTOC");
        assert!(result
            .diagnostics
            .iter()
            .any(|d| d.message.contains("PTOV") && d.message.contains("disabled")));
    }

    #[test]
    fn unknown_ied_clears_everything() {
        let text = r#"<SCL><Header id="icd"/><IED name="OTHER">
            <AccessPoint name="AP1"><Server><LDevice inst="LD0"/></Server></AccessPoint></IED></SCL>"#;
        let icd = parse_icd(text).unwrap();
        // Falls back to first IED in file; protections without LNs are dropped.
        let result = compile_ied(&spec_with_ptoc_and_ptov(), &icd);
        assert!(result.spec.protections.is_empty());
    }
}
