//! Generation of the cyber network emulation model from an (optionally
//! consolidated) SCD — the paper's *"cyber network model can be derived from
//! IEC 61850 SCD file. An SCD file contains network addresses (including IP
//! address and MAC address) of nodes, and connectivity between nodes"*
//! stage. For multi-substation models, the WAN is *"abstracted as a single
//! switch connected to all substations"*.

use sgcr_net::{Ipv4Addr, MacAddr};
use sgcr_scl::{codes, Diagnostic, SclDocument};

/// A switch to instantiate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedSwitch {
    /// Switch name (subnetwork name from the SCD, or `wan`).
    pub name: String,
    /// Whether this is the single WAN backbone switch.
    pub is_wan: bool,
}

/// A host to instantiate (IED, PLC, SCADA workstation, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedHost {
    /// Host name (the SCD `iedName`).
    pub name: String,
    /// IPv4 address from the SCD's `Address` section.
    pub ip: Ipv4Addr,
    /// MAC address, when the SCD provides one.
    pub mac: Option<MacAddr>,
    /// The switch (subnetwork) the host attaches to.
    pub switch: String,
}

/// The declarative network plan the emulator instantiates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkPlan {
    /// Switches (one per subnetwork + one WAN when multi-substation).
    pub switches: Vec<PlannedSwitch>,
    /// Hosts in SCD order.
    pub hosts: Vec<PlannedHost>,
    /// Diagnostics produced while compiling.
    pub diagnostics: Vec<Diagnostic>,
}

impl NetworkPlan {
    /// Finds a planned host by name.
    pub fn host(&self, name: &str) -> Option<&PlannedHost> {
        self.hosts.iter().find(|h| h.name == name)
    }

    /// The IP of a planned host by name.
    pub fn host_ip(&self, name: &str) -> Option<Ipv4Addr> {
        self.host(name).map(|h| h.ip)
    }

    /// Finds a planned host by IPv4 address — the reverse lookup attack
    /// tooling needs when mapping captured/configured addresses (PLC
    /// bindings, SCADA sources) back to named hosts.
    pub fn host_by_ip(&self, ip: Ipv4Addr) -> Option<&PlannedHost> {
        self.hosts.iter().find(|h| h.ip == ip)
    }

    /// Renders the topology in Graphviz dot format — the artifact behind
    /// the paper's Figure 4 ("Generated Cyber Network Topology").
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph cyber_topology {\n  layout=neato;\n");
        for sw in &self.switches {
            out.push_str(&format!(
                "  \"{}\" [shape=box, style=filled, fillcolor={}];\n",
                sw.name,
                if sw.is_wan { "orange" } else { "lightblue" }
            ));
        }
        for host in &self.hosts {
            out.push_str(&format!(
                "  \"{}\" [shape=ellipse, label=\"{}\\n{}\"];\n",
                host.name, host.name, host.ip
            ));
        }
        for sw in &self.switches {
            if sw.is_wan {
                for other in &self.switches {
                    if !other.is_wan {
                        out.push_str(&format!("  \"{}\" -- \"{}\";\n", sw.name, other.name));
                    }
                }
            }
        }
        for host in &self.hosts {
            out.push_str(&format!("  \"{}\" -- \"{}\";\n", host.switch, host.name));
        }
        out.push_str("}\n");
        out
    }
}

/// Compiles the SCD's communication section into a [`NetworkPlan`].
pub fn compile_network(doc: &SclDocument) -> NetworkPlan {
    let mut plan = NetworkPlan::default();
    let Some(comm) = &doc.communication else {
        plan.diagnostics.push(Diagnostic::error(
            codes::MISSING_SECTION,
            "SCD has no <Communication> section".to_string(),
            "compile_network".to_string(),
        ));
        return plan;
    };

    for subnetwork in &comm.subnetworks {
        plan.switches.push(PlannedSwitch {
            name: subnetwork.name.clone(),
            is_wan: false,
        });
        for ap in &subnetwork.connected_aps {
            let Ok(ip) = ap.ip.parse::<Ipv4Addr>() else {
                plan.diagnostics.push(Diagnostic::error(
                    codes::INVALID_IP,
                    format!("connected AP {:?} has invalid IP {:?}", ap.ied_name, ap.ip),
                    subnetwork.name.clone(),
                ));
                continue;
            };
            let mac = ap.mac.as_deref().and_then(|m| m.parse::<MacAddr>().ok());
            if ap.mac.is_some() && mac.is_none() {
                plan.diagnostics.push(Diagnostic::warning(
                    codes::INVALID_MAC,
                    format!("connected AP {:?} has unparsable MAC", ap.ied_name),
                    subnetwork.name.clone(),
                ));
            }
            if plan.hosts.iter().any(|h| h.name == ap.ied_name) {
                plan.diagnostics.push(Diagnostic::error(
                    codes::DUPLICATE_HOST,
                    format!("duplicate host name {:?}", ap.ied_name),
                    subnetwork.name.clone(),
                ));
                continue;
            }
            plan.hosts.push(PlannedHost {
                name: ap.ied_name.clone(),
                ip,
                mac,
                switch: subnetwork.name.clone(),
            });
        }
    }

    // The paper's WAN abstraction: one switch joining all station buses.
    if plan.switches.len() > 1 {
        plan.switches.push(PlannedSwitch {
            name: "wan".to_string(),
            is_wan: true,
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgcr_scl::parse_scd;

    const SCD: &str = r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="net-test"/>
  <Substation name="S1"><VoltageLevel name="VL1"><Voltage>20</Voltage></VoltageLevel></Substation>
  <Communication>
    <SubNetwork name="S1Bus" type="8-MMS">
      <ConnectedAP iedName="IED1" apName="AP1">
        <Address><P type="IP">10.0.1.11</P><P type="IP-SUBNET">255.255.0.0</P>
        <P type="MAC-Address">02-00-00-00-01-0B</P></Address>
      </ConnectedAP>
      <ConnectedAP iedName="SCADA" apName="AP1">
        <Address><P type="IP">10.0.1.100</P><P type="IP-SUBNET">255.255.0.0</P></Address>
      </ConnectedAP>
    </SubNetwork>
    <SubNetwork name="S2Bus" type="8-MMS">
      <ConnectedAP iedName="IED2" apName="AP1">
        <Address><P type="IP">10.0.2.11</P><P type="IP-SUBNET">255.255.0.0</P></Address>
      </ConnectedAP>
    </SubNetwork>
  </Communication>
  <IED name="IED1"><AccessPoint name="AP1"><Server><LDevice inst="LD0"/></Server></AccessPoint></IED>
</SCL>"#;

    #[test]
    fn plan_from_scd() {
        let doc = parse_scd(SCD).unwrap();
        let plan = compile_network(&doc);
        assert!(plan.diagnostics.is_empty(), "{:?}", plan.diagnostics);
        assert_eq!(plan.switches.len(), 3); // two buses + WAN
        assert!(plan.switches.iter().any(|s| s.is_wan));
        assert_eq!(plan.hosts.len(), 3);
        assert_eq!(plan.host_ip("IED1"), Some("10.0.1.11".parse().unwrap()));
        assert_eq!(
            plan.host("IED1").unwrap().mac,
            Some("02:00:00:00:01:0b".parse().unwrap())
        );
        assert_eq!(plan.host("SCADA").unwrap().switch, "S1Bus");
    }

    #[test]
    fn single_subnetwork_no_wan() {
        let doc = parse_scd(SCD).unwrap();
        let mut single = doc.clone();
        single
            .communication
            .as_mut()
            .unwrap()
            .subnetworks
            .truncate(1);
        let plan = compile_network(&single);
        assert_eq!(plan.switches.len(), 1);
        assert!(!plan.switches[0].is_wan);
    }

    #[test]
    fn dot_rendering_mentions_everything() {
        let doc = parse_scd(SCD).unwrap();
        let plan = compile_network(&doc);
        let dot = plan.to_dot();
        for name in ["S1Bus", "S2Bus", "wan", "IED1", "IED2", "SCADA"] {
            assert!(dot.contains(name), "{name} missing from dot output");
        }
        assert!(dot.contains("\"wan\" -- \"S1Bus\""));
    }

    #[test]
    fn invalid_ip_diagnosed() {
        let bad = SCD.replace("10.0.1.11", "not-an-ip");
        let doc = parse_scd(&bad).unwrap();
        let plan = compile_network(&doc);
        assert!(plan
            .diagnostics
            .iter()
            .any(|d| d.message.contains("invalid IP")));
    }
}
