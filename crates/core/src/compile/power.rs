//! Generation of the power system simulation model from an (optionally
//! consolidated) SSD — the paper's *"SG-ML parses the SSD file and then
//! generates a power system simulation model"* stage.
//!
//! Mapping rules (SCL equipment type → power-flow element):
//!
//! | SCL | element |
//! |-----|---------|
//! | `ConnectivityNode` | bus (named by its `pathName`, voltage from the level) |
//! | `CBR` / `DIS` (2 terminals) | bus-bus switch (closed unless `sgcr:normallyOpen`) |
//! | `LIN` (2 terminals) | line (parameters from the `Private` extension, defaults otherwise) |
//! | `IFL` | external grid (slack) |
//! | `GEN` | PV generator when `vm_pu` given, else static generator |
//! | `BAT` | static generator (storage) |
//! | `LOD` | PQ load |
//! | `PowerTransformer` | two-winding transformer |
//! | SED tie line | line between substations |
//!
//! Element names are scoped `"{substation}/{equipment}"` so multi-substation
//! models stay unambiguous; the process-store key scheme relies on this.

use sgcr_powerflow::{BusId, PowerNetwork, SwitchTarget};
use sgcr_scl::{codes, Diagnostic, EquipmentType, SclDocument};
use std::collections::HashMap;

/// Default line parameters when an SSD carries no electrical `Private`
/// extension (medium-voltage cable-ish values).
const DEFAULT_R_OHM_PER_KM: f64 = 0.1;
const DEFAULT_X_OHM_PER_KM: f64 = 0.12;
const DEFAULT_MAX_I_KA: f64 = 0.5;

/// The result of power-model compilation.
#[derive(Debug)]
pub struct PowerCompilation {
    /// The generated network.
    pub network: PowerNetwork,
    /// Bus ids by connectivity-node path name.
    pub bus_by_path: HashMap<String, BusId>,
    /// Warnings produced while compiling.
    pub diagnostics: Vec<Diagnostic>,
}

/// Compiles the SSD (plus SED tie lines) into a [`PowerNetwork`].
pub fn compile_power(doc: &SclDocument) -> PowerCompilation {
    let mut network = PowerNetwork::new(&doc.header.id);
    let mut bus_by_path: HashMap<String, BusId> = HashMap::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // Pass 1: buses from connectivity nodes.
    for substation in &doc.substations {
        for vl in &substation.voltage_levels {
            for bay in &vl.bays {
                for cn in &bay.connectivity_nodes {
                    if bus_by_path.contains_key(&cn.path_name) {
                        diagnostics.push(Diagnostic::warning(
                            codes::DUPLICATE_NODE_PATH,
                            format!("duplicate connectivity node {:?}", cn.path_name),
                            substation.name.clone(),
                        ));
                        continue;
                    }
                    let id = network.add_bus(&cn.path_name, vl.voltage_kv);
                    bus_by_path.insert(cn.path_name.clone(), id);
                }
            }
        }
    }

    let resolve = |path: &str,
                   context: &str,
                   bus_by_path: &HashMap<String, BusId>,
                   diagnostics: &mut Vec<Diagnostic>|
     -> Option<BusId> {
        match bus_by_path.get(path) {
            Some(&id) => Some(id),
            None => {
                diagnostics.push(Diagnostic::error(
                    codes::TERMINAL_UNKNOWN_NODE,
                    format!("terminal references unknown connectivity node {path:?}"),
                    context.to_string(),
                ));
                None
            }
        }
    };

    // Pass 2: equipment.
    for substation in &doc.substations {
        for vl in &substation.voltage_levels {
            for bay in &vl.bays {
                for eq in &bay.equipment {
                    let scoped = format!("{}/{}", substation.name, eq.name);
                    let terminal_buses: Vec<Option<BusId>> = eq
                        .terminals
                        .iter()
                        .map(|t| {
                            resolve(
                                &t.connectivity_node,
                                &scoped,
                                &bus_by_path,
                                &mut diagnostics,
                            )
                        })
                        .collect();
                    match eq.eq_type {
                        EquipmentType::CircuitBreaker | EquipmentType::Disconnector => {
                            let (Some(Some(a)), Some(Some(b))) =
                                (terminal_buses.first(), terminal_buses.get(1))
                            else {
                                diagnostics.push(Diagnostic::warning(
                                    codes::WRONG_TERMINAL_COUNT,
                                    "switching equipment needs two connected terminals".to_string(),
                                    scoped.clone(),
                                ));
                                continue;
                            };
                            network.add_switch(
                                &scoped,
                                *a,
                                SwitchTarget::Bus(*b),
                                !eq.normally_open,
                            );
                        }
                        EquipmentType::Line => {
                            let (Some(Some(a)), Some(Some(b))) =
                                (terminal_buses.first(), terminal_buses.get(1))
                            else {
                                diagnostics.push(Diagnostic::warning(
                                    codes::WRONG_TERMINAL_COUNT,
                                    "line needs two connected terminals".to_string(),
                                    scoped.clone(),
                                ));
                                continue;
                            };
                            network.add_line(
                                &scoped,
                                *a,
                                *b,
                                eq.params.length_km.unwrap_or(1.0),
                                eq.params.r_ohm_per_km.unwrap_or(DEFAULT_R_OHM_PER_KM),
                                eq.params.x_ohm_per_km.unwrap_or(DEFAULT_X_OHM_PER_KM),
                                eq.params.c_nf_per_km.unwrap_or(0.0),
                                eq.params.max_i_ka.unwrap_or(DEFAULT_MAX_I_KA),
                            );
                        }
                        EquipmentType::IncomingFeeder => {
                            let Some(Some(bus)) = terminal_buses.first() else {
                                continue;
                            };
                            network.add_ext_grid(
                                &scoped,
                                *bus,
                                eq.params.vm_pu.unwrap_or(1.0),
                                0.0,
                            );
                        }
                        EquipmentType::Generator => {
                            let Some(Some(bus)) = terminal_buses.first() else {
                                continue;
                            };
                            let p_mw = eq.params.p_mw.unwrap_or(0.0);
                            match eq.params.vm_pu {
                                Some(vm_pu) => {
                                    network.add_gen(&scoped, *bus, p_mw, vm_pu);
                                }
                                None => {
                                    network.add_sgen(
                                        &scoped,
                                        *bus,
                                        p_mw,
                                        eq.params.q_mvar.unwrap_or(0.0),
                                    );
                                }
                            }
                        }
                        EquipmentType::Battery => {
                            let Some(Some(bus)) = terminal_buses.first() else {
                                continue;
                            };
                            network.add_sgen(
                                &scoped,
                                *bus,
                                eq.params.p_mw.unwrap_or(0.0),
                                eq.params.q_mvar.unwrap_or(0.0),
                            );
                        }
                        EquipmentType::Load => {
                            let Some(Some(bus)) = terminal_buses.first() else {
                                continue;
                            };
                            network.add_load(
                                &scoped,
                                *bus,
                                eq.params.p_mw.unwrap_or(0.0),
                                eq.params.q_mvar.unwrap_or(0.0),
                            );
                        }
                        EquipmentType::CurrentTransformer | EquipmentType::VoltageTransformer => {
                            // Instrumentation only: no power-flow element.
                        }
                        EquipmentType::Other => {
                            diagnostics.push(Diagnostic::warning(
                                codes::NO_POWER_MAPPING,
                                format!(
                                    "equipment type {:?} has no power-flow mapping",
                                    eq.type_code
                                ),
                                scoped.clone(),
                            ));
                        }
                    }
                }
            }
        }
        for transformer in &substation.transformers {
            let scoped = format!("{}/{}", substation.name, transformer.name);
            if transformer.windings.len() != 2 {
                diagnostics.push(Diagnostic::error(
                    codes::WRONG_TERMINAL_COUNT,
                    format!(
                        "transformer has {} windings (2 supported)",
                        transformer.windings.len()
                    ),
                    scoped.clone(),
                ));
                continue;
            }
            let hv = resolve(
                &transformer.windings[0].terminal.connectivity_node,
                &scoped,
                &bus_by_path,
                &mut diagnostics,
            );
            let lv = resolve(
                &transformer.windings[1].terminal.connectivity_node,
                &scoped,
                &bus_by_path,
                &mut diagnostics,
            );
            let (Some(hv), Some(lv)) = (hv, lv) else {
                continue;
            };
            let vn_hv = if transformer.windings[0].rated_kv > 0.0 {
                transformer.windings[0].rated_kv
            } else {
                network.bus[hv.index()].vn_kv
            };
            let vn_lv = if transformer.windings[1].rated_kv > 0.0 {
                transformer.windings[1].rated_kv
            } else {
                network.bus[lv.index()].vn_kv
            };
            network.add_trafo(
                &scoped,
                hv,
                lv,
                transformer.params.sn_mva.unwrap_or(25.0),
                vn_hv,
                vn_lv,
                transformer.params.vk_percent.unwrap_or(12.0),
                transformer.params.vkr_percent.unwrap_or(0.5),
            );
        }
    }

    // Pass 3: SED inter-substation tie lines.
    for tie in &doc.inter_substation_lines {
        let a = resolve(&tie.from_node, &tie.name, &bus_by_path, &mut diagnostics);
        let b = resolve(&tie.to_node, &tie.name, &bus_by_path, &mut diagnostics);
        let (Some(a), Some(b)) = (a, b) else { continue };
        network.add_line(
            &format!("{}/{}", tie.from_substation, tie.name),
            a,
            b,
            tie.params.length_km.unwrap_or(10.0),
            tie.params.r_ohm_per_km.unwrap_or(DEFAULT_R_OHM_PER_KM),
            tie.params.x_ohm_per_km.unwrap_or(DEFAULT_X_OHM_PER_KM),
            tie.params.c_nf_per_km.unwrap_or(0.0),
            tie.params.max_i_ka.unwrap_or(DEFAULT_MAX_I_KA),
        );
    }

    PowerCompilation {
        network,
        bus_by_path,
        diagnostics,
    }
}
