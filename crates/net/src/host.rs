//! Per-host protocol state: ARP cache, UDP bindings, and the TCP-lite
//! state machine.
//!
//! The functions here are pure state transitions over [`HostState`]: they
//! consume an input (a segment, an application call) and return the segments
//! to transmit plus the events to surface to the application. The simulator
//! core ([`crate::Network`]) performs the actual framing, ARP resolution,
//! and scheduling.

use crate::addr::{Ipv4Addr, MacAddr};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};

use crate::frame::{TcpFlags, TcpSegment};

/// Identifier of a TCP connection within one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Maximum TCP payload per segment.
pub const TCP_MSS: usize = 1460;

/// TCP connection states (simplified RFC 793 machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, waiting for SYN+ACK.
    SynSent,
    /// SYN received on a listener, SYN+ACK sent.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent.
    FinWait,
    /// Peer closed first; we may still send.
    CloseWait,
    /// We closed after CloseWait; FIN sent, waiting for last ACK.
    LastAck,
    /// Fully closed.
    Closed,
}

/// One TCP connection's state.
#[derive(Debug, Clone)]
pub struct TcpConn {
    /// Current state.
    pub state: TcpState,
    /// Local port.
    pub local_port: u16,
    /// Remote endpoint.
    pub remote: (Ipv4Addr, u16),
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Next sequence number expected from the peer.
    pub rcv_nxt: u32,
    /// Bytes from `snd_una` onward (unacked + unsent).
    pub send_buf: VecDeque<u8>,
    /// Whether our FIN has been queued after the send buffer.
    pub fin_queued: bool,
    /// Whether our FIN has been sent (occupies one sequence number).
    pub fin_sent: bool,
}

impl TcpConn {
    fn new(state: TcpState, local_port: u16, remote: (Ipv4Addr, u16), iss: u32) -> TcpConn {
        TcpConn {
            state,
            local_port,
            remote,
            snd_una: iss,
            snd_nxt: iss,
            rcv_nxt: 0,
            send_buf: VecDeque::new(),
            fin_queued: false,
            fin_sent: false,
        }
    }
}

/// An event surfaced to the host's application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketEvent {
    /// An outbound connection completed its handshake.
    TcpConnected(ConnId),
    /// An inbound connection was accepted on a listening port.
    TcpAccepted(ConnId, (Ipv4Addr, u16)),
    /// In-order data arrived.
    TcpData(ConnId, Bytes),
    /// The connection fully closed (FIN exchange or RST).
    TcpClosed(ConnId),
    /// A UDP datagram arrived on a bound port.
    Udp {
        /// Remote source.
        src: (Ipv4Addr, u16),
        /// Local destination port.
        dst_port: u16,
        /// Payload.
        data: Bytes,
    },
}

/// A TCP segment plus the peer it must be routed to.
#[derive(Debug, Clone)]
pub struct TcpOut {
    /// Destination IP.
    pub dst: Ipv4Addr,
    /// The segment.
    pub segment: TcpSegment,
}

/// Host protocol state (one per emulated host).
#[derive(Debug)]
pub struct HostState {
    /// The host's MAC address.
    pub mac: MacAddr,
    /// The host's IPv4 address.
    pub ip: Ipv4Addr,
    /// ARP cache: IP → MAC. Updated by *any* received ARP packet, including
    /// unsolicited replies — the behaviour ARP spoofing exploits.
    pub arp_cache: HashMap<Ipv4Addr, MacAddr>,
    /// IP packets queued waiting for ARP resolution, per destination.
    pub arp_pending: HashMap<Ipv4Addr, Vec<(u8, Vec<u8>)>>,
    /// Bound UDP ports.
    pub udp_bound: Vec<u16>,
    /// Listening TCP ports.
    pub tcp_listen: Vec<u16>,
    /// Active TCP connections.
    pub conns: HashMap<ConnId, TcpConn>,
    /// Next connection id.
    next_conn: u64,
    /// Next ephemeral port.
    next_port: u16,
    /// Next initial sequence number (deterministic).
    next_iss: u32,
    /// Receive all frames on the wire, not just ours (attacker mode).
    pub promiscuous: bool,
    /// Surface IP packets addressed to our MAC but a foreign IP to the app
    /// (the man-in-the-middle forwarding point).
    pub deliver_transit: bool,
}

impl HostState {
    /// Creates a fresh host stack.
    pub fn new(mac: MacAddr, ip: Ipv4Addr) -> HostState {
        HostState {
            mac,
            ip,
            arp_cache: HashMap::new(),
            arp_pending: HashMap::new(),
            udp_bound: Vec::new(),
            tcp_listen: Vec::new(),
            conns: HashMap::new(),
            next_conn: 1,
            next_port: 49152,
            next_iss: 1000,
            promiscuous: false,
            deliver_transit: false,
        }
    }

    /// Allocates an ephemeral port.
    pub fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(49152);
        p
    }

    fn alloc_conn(&mut self) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        id
    }

    fn alloc_iss(&mut self) -> u32 {
        let iss = self.next_iss;
        self.next_iss = self.next_iss.wrapping_add(64_000);
        iss
    }

    /// Initiates an outbound connection; returns the id and the SYN to send.
    pub fn tcp_connect(&mut self, dst: Ipv4Addr, dst_port: u16) -> (ConnId, TcpOut) {
        let local_port = self.alloc_port();
        let iss = self.alloc_iss();
        let id = self.alloc_conn();
        let mut conn = TcpConn::new(TcpState::SynSent, local_port, (dst, dst_port), iss);
        conn.snd_nxt = iss.wrapping_add(1); // SYN consumes one sequence number
        let syn = TcpSegment {
            src_port: local_port,
            dst_port,
            seq: iss,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            payload: Bytes::new(),
        };
        self.conns.insert(id, conn);
        (id, TcpOut { dst, segment: syn })
    }

    /// Queues application data for sending; returns segments ready to go.
    pub fn tcp_send(&mut self, id: ConnId, data: &[u8]) -> Vec<TcpOut> {
        let Some(conn) = self.conns.get_mut(&id) else {
            return Vec::new();
        };
        if !matches!(conn.state, TcpState::Established | TcpState::CloseWait) {
            return Vec::new();
        }
        conn.send_buf.extend(data.iter().copied());
        Self::tcp_output(conn)
    }

    /// Begins an orderly close; returns segments (possibly a FIN).
    pub fn tcp_close(&mut self, id: ConnId) -> Vec<TcpOut> {
        let Some(conn) = self.conns.get_mut(&id) else {
            return Vec::new();
        };
        match conn.state {
            TcpState::Established => {
                conn.fin_queued = true;
                conn.state = TcpState::FinWait;
            }
            TcpState::CloseWait => {
                conn.fin_queued = true;
                conn.state = TcpState::LastAck;
            }
            _ => return Vec::new(),
        }
        Self::tcp_output(conn)
    }

    /// Emits any segments the connection can send: unsent data, then FIN.
    fn tcp_output(conn: &mut TcpConn) -> Vec<TcpOut> {
        let mut out = Vec::new();
        // Unsent data begins at offset (snd_nxt - snd_una) within send_buf.
        loop {
            let sent = conn.snd_nxt.wrapping_sub(conn.snd_una) as usize;
            if sent >= conn.send_buf.len() {
                break;
            }
            let chunk: Vec<u8> = conn
                .send_buf
                .iter()
                .skip(sent)
                .take(TCP_MSS)
                .copied()
                .collect();
            let seg = TcpSegment {
                src_port: conn.local_port,
                dst_port: conn.remote.1,
                seq: conn.snd_nxt,
                ack: conn.rcv_nxt,
                flags: TcpFlags {
                    ack: true,
                    psh: true,
                    ..TcpFlags::default()
                },
                window: 65535,
                payload: Bytes::from(chunk.clone()),
            };
            conn.snd_nxt = conn.snd_nxt.wrapping_add(chunk.len() as u32);
            out.push(TcpOut {
                dst: conn.remote.0,
                segment: seg,
            });
        }
        // FIN once all data is out.
        let all_sent = conn.snd_nxt.wrapping_sub(conn.snd_una) as usize >= conn.send_buf.len();
        if conn.fin_queued && !conn.fin_sent && all_sent {
            let seg = TcpSegment {
                src_port: conn.local_port,
                dst_port: conn.remote.1,
                seq: conn.snd_nxt,
                ack: conn.rcv_nxt,
                flags: TcpFlags {
                    fin: true,
                    ack: true,
                    ..TcpFlags::default()
                },
                window: 65535,
                payload: Bytes::new(),
            };
            conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
            conn.fin_sent = true;
            out.push(TcpOut {
                dst: conn.remote.0,
                segment: seg,
            });
        }
        out
    }

    /// Segments to retransmit on timer expiry (go-back-N from `snd_una`).
    pub fn tcp_retransmit(&mut self, id: ConnId) -> Vec<TcpOut> {
        let Some(conn) = self.conns.get_mut(&id) else {
            return Vec::new();
        };
        if conn.state == TcpState::Closed {
            return Vec::new();
        }
        let unacked = conn.snd_nxt.wrapping_sub(conn.snd_una) as usize;
        if unacked == 0 {
            return Vec::new();
        }
        if conn.state == TcpState::SynSent {
            // Re-send the SYN.
            return vec![TcpOut {
                dst: conn.remote.0,
                segment: TcpSegment {
                    src_port: conn.local_port,
                    dst_port: conn.remote.1,
                    seq: conn.snd_una,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: 65535,
                    payload: Bytes::new(),
                },
            }];
        }
        // Re-send the first unacked chunk.
        let chunk: Vec<u8> = conn.send_buf.iter().take(TCP_MSS).copied().collect();
        let fin_only = chunk.is_empty() && conn.fin_sent;
        let seg = TcpSegment {
            src_port: conn.local_port,
            dst_port: conn.remote.1,
            seq: conn.snd_una,
            ack: conn.rcv_nxt,
            flags: TcpFlags {
                ack: true,
                psh: !chunk.is_empty(),
                fin: fin_only,
                ..TcpFlags::default()
            },
            window: 65535,
            payload: Bytes::from(chunk),
        };
        vec![TcpOut {
            dst: conn.remote.0,
            segment: seg,
        }]
    }

    /// Whether the connection has unacknowledged data (needs a live timer).
    pub fn tcp_needs_timer(&self, id: ConnId) -> bool {
        self.conns
            .get(&id)
            .map(|c| c.snd_nxt != c.snd_una && c.state != TcpState::Closed)
            .unwrap_or(false)
    }

    /// Processes an incoming TCP segment addressed to this host.
    ///
    /// Returns `(segments to send, events for the app)`.
    pub fn tcp_input(
        &mut self,
        src_ip: Ipv4Addr,
        seg: &TcpSegment,
    ) -> (Vec<TcpOut>, Vec<SocketEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();

        // Find the connection this segment belongs to.
        let existing = self
            .conns
            .iter()
            .find(|(_, c)| {
                c.local_port == seg.dst_port
                    && c.remote == (src_ip, seg.src_port)
                    && c.state != TcpState::Closed
            })
            .map(|(&id, _)| id);

        match existing {
            None => {
                // New inbound SYN on a listener?
                if seg.flags.syn && !seg.flags.ack && self.tcp_listen.contains(&seg.dst_port) {
                    let iss = self.alloc_iss();
                    let id = self.alloc_conn();
                    let mut conn =
                        TcpConn::new(TcpState::SynRcvd, seg.dst_port, (src_ip, seg.src_port), iss);
                    conn.rcv_nxt = seg.seq.wrapping_add(1);
                    conn.snd_nxt = iss.wrapping_add(1);
                    let synack = TcpSegment {
                        src_port: seg.dst_port,
                        dst_port: seg.src_port,
                        seq: iss,
                        ack: conn.rcv_nxt,
                        flags: TcpFlags {
                            syn: true,
                            ack: true,
                            ..TcpFlags::default()
                        },
                        window: 65535,
                        payload: Bytes::new(),
                    };
                    self.conns.insert(id, conn);
                    out.push(TcpOut {
                        dst: src_ip,
                        segment: synack,
                    });
                } else if !seg.flags.rst {
                    // No matching socket: refuse.
                    out.push(TcpOut {
                        dst: src_ip,
                        segment: TcpSegment {
                            src_port: seg.dst_port,
                            dst_port: seg.src_port,
                            seq: seg.ack,
                            ack: seg.seq.wrapping_add(1),
                            flags: TcpFlags {
                                rst: true,
                                ack: true,
                                ..TcpFlags::default()
                            },
                            window: 0,
                            payload: Bytes::new(),
                        },
                    });
                }
                return (out, events);
            }
            Some(id) => {
                let conn = self.conns.get_mut(&id).expect("conn exists");

                if seg.flags.rst {
                    conn.state = TcpState::Closed;
                    events.push(SocketEvent::TcpClosed(id));
                    return (out, events);
                }

                // Handshake transitions.
                match conn.state {
                    TcpState::SynSent if seg.flags.syn && seg.flags.ack => {
                        conn.rcv_nxt = seg.seq.wrapping_add(1);
                        conn.snd_una = seg.ack;
                        conn.state = TcpState::Established;
                        out.push(TcpOut {
                            dst: src_ip,
                            segment: TcpSegment {
                                src_port: conn.local_port,
                                dst_port: conn.remote.1,
                                seq: conn.snd_nxt,
                                ack: conn.rcv_nxt,
                                flags: TcpFlags {
                                    ack: true,
                                    ..TcpFlags::default()
                                },
                                window: 65535,
                                payload: Bytes::new(),
                            },
                        });
                        events.push(SocketEvent::TcpConnected(id));
                        return (out, events);
                    }
                    TcpState::SynRcvd if seg.flags.ack && !seg.flags.syn => {
                        conn.snd_una = seg.ack;
                        conn.state = TcpState::Established;
                        events.push(SocketEvent::TcpAccepted(id, conn.remote));
                        // Fall through: the ACK may carry data.
                    }
                    _ => {}
                }

                // ACK processing: drop acked bytes from the send buffer.
                if seg.flags.ack {
                    let acked = seg.ack.wrapping_sub(conn.snd_una);
                    let outstanding = conn.snd_nxt.wrapping_sub(conn.snd_una);
                    if acked > 0 && acked <= outstanding {
                        // FIN consumes a sequence number not present in buf.
                        let data_acked = (acked as usize).min(conn.send_buf.len());
                        conn.send_buf.drain(..data_acked);
                        conn.snd_una = seg.ack;
                        if conn.state == TcpState::LastAck
                            && conn.fin_sent
                            && conn.snd_una == conn.snd_nxt
                        {
                            conn.state = TcpState::Closed;
                            events.push(SocketEvent::TcpClosed(id));
                            return (out, events);
                        }
                        // More queued data may now flow.
                        out.extend(Self::tcp_output(conn));
                    }
                }

                // In-order data delivery.
                let mut should_ack = false;
                if !seg.payload.is_empty() {
                    if seg.seq == conn.rcv_nxt {
                        conn.rcv_nxt = conn.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                        events.push(SocketEvent::TcpData(id, seg.payload.clone()));
                    }
                    // Out-of-order or duplicate: just re-ACK rcv_nxt.
                    should_ack = true;
                }

                // Peer FIN.
                if seg.flags.fin && seg.seq == conn.rcv_nxt {
                    conn.rcv_nxt = conn.rcv_nxt.wrapping_add(1);
                    should_ack = true;
                    match conn.state {
                        TcpState::Established => {
                            conn.state = TcpState::CloseWait;
                        }
                        TcpState::FinWait => {
                            conn.state = TcpState::Closed;
                            events.push(SocketEvent::TcpClosed(id));
                        }
                        _ => {}
                    }
                }

                if should_ack {
                    let conn = self.conns.get_mut(&id).expect("conn exists");
                    out.push(TcpOut {
                        dst: src_ip,
                        segment: TcpSegment {
                            src_port: conn.local_port,
                            dst_port: conn.remote.1,
                            seq: conn.snd_nxt,
                            ack: conn.rcv_nxt,
                            flags: TcpFlags {
                                ack: true,
                                ..TcpFlags::default()
                            },
                            window: 65535,
                            payload: Bytes::new(),
                        },
                    });
                }
            }
        }
        (out, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (HostState, HostState) {
        let a = HostState::new(MacAddr::from_index(1), Ipv4Addr::new(10, 0, 0, 1));
        let b = HostState::new(MacAddr::from_index(2), Ipv4Addr::new(10, 0, 0, 2));
        (a, b)
    }

    /// Ferries segments between two host stacks until quiescent.
    fn exchange(
        a: &mut HostState,
        b: &mut HostState,
        mut from_a: Vec<TcpOut>,
    ) -> (Vec<SocketEvent>, Vec<SocketEvent>) {
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        let mut from_b: Vec<TcpOut> = Vec::new();
        for _ in 0..64 {
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            let mut next_from_b = Vec::new();
            for out in from_a.drain(..) {
                let (outs, evs) = b.tcp_input(a.ip, &out.segment);
                next_from_b.extend(outs);
                ev_b.extend(evs);
            }
            let mut next_from_a = Vec::new();
            for out in from_b.drain(..) {
                let (outs, evs) = a.tcp_input(b.ip, &out.segment);
                next_from_a.extend(outs);
                ev_a.extend(evs);
            }
            from_a = next_from_a;
            from_b = next_from_b;
        }
        (ev_a, ev_b)
    }

    #[test]
    fn handshake_and_data() {
        let (mut a, mut b) = pair();
        b.tcp_listen.push(102);
        let (conn_a, syn) = a.tcp_connect(b.ip, 102);
        let (ev_a, ev_b) = exchange(&mut a, &mut b, vec![syn]);
        assert!(ev_a.contains(&SocketEvent::TcpConnected(conn_a)));
        assert!(matches!(ev_b[0], SocketEvent::TcpAccepted(..)));

        let outs = a.tcp_send(conn_a, b"hello world");
        let (_, ev_b) = exchange(&mut a, &mut b, outs);
        assert!(ev_b
            .iter()
            .any(|e| matches!(e, SocketEvent::TcpData(_, d) if d.as_ref() == b"hello world")));
    }

    #[test]
    fn bidirectional_data() {
        let (mut a, mut b) = pair();
        b.tcp_listen.push(502);
        let (conn_a, syn) = a.tcp_connect(b.ip, 502);
        let (_, ev_b) = exchange(&mut a, &mut b, vec![syn]);
        let conn_b = match ev_b[0] {
            SocketEvent::TcpAccepted(id, _) => id,
            ref other => panic!("expected accept, got {other:?}"),
        };
        let outs = b.tcp_send(conn_b, b"response");
        // Segments now flow b->a; reuse exchange with roles swapped.
        let (_, ev_a) = exchange(&mut b, &mut a, outs);
        assert!(ev_a
            .iter()
            .any(|e| matches!(e, SocketEvent::TcpData(id, d) if *id == conn_a && d.as_ref() == b"response")));
    }

    #[test]
    fn large_transfer_segments_and_reassembles() {
        let (mut a, mut b) = pair();
        b.tcp_listen.push(102);
        let (conn_a, syn) = a.tcp_connect(b.ip, 102);
        exchange(&mut a, &mut b, vec![syn]);
        let big: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let outs = a.tcp_send(conn_a, &big);
        assert!(outs.len() >= 4, "payload must be segmented at MSS");
        let (_, ev_b) = exchange(&mut a, &mut b, outs);
        let received: Vec<u8> = ev_b
            .iter()
            .filter_map(|e| match e {
                SocketEvent::TcpData(_, d) => Some(d.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(received, big);
    }

    #[test]
    fn orderly_close_both_sides() {
        let (mut a, mut b) = pair();
        b.tcp_listen.push(102);
        let (conn_a, syn) = a.tcp_connect(b.ip, 102);
        let (_, ev_b) = exchange(&mut a, &mut b, vec![syn]);
        let conn_b = match ev_b[0] {
            SocketEvent::TcpAccepted(id, _) => id,
            ref other => panic!("unexpected {other:?}"),
        };
        // a closes; b sees CloseWait (no event yet), then b closes too.
        let fin = a.tcp_close(conn_a);
        exchange(&mut a, &mut b, fin);
        assert_eq!(b.conns[&conn_b].state, TcpState::CloseWait);
        let fin_b = b.tcp_close(conn_b);
        let (ev_a2, ev_b2) = exchange(&mut b, &mut a, fin_b);
        assert!(ev_a2.contains(&SocketEvent::TcpClosed(conn_b)));
        assert!(ev_b2.contains(&SocketEvent::TcpClosed(conn_a)));
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let (mut a, mut b) = pair();
        let (conn_a, syn) = a.tcp_connect(b.ip, 9999);
        let (outs, _) = b.tcp_input(a.ip, &syn.segment);
        assert_eq!(outs.len(), 1);
        assert!(outs[0].segment.flags.rst);
        let (_, evs) = a.tcp_input(b.ip, &outs[0].segment);
        assert!(evs.contains(&SocketEvent::TcpClosed(conn_a)));
    }

    #[test]
    fn retransmission_recovers_lost_segment() {
        let (mut a, mut b) = pair();
        b.tcp_listen.push(102);
        let (conn_a, syn) = a.tcp_connect(b.ip, 102);
        exchange(&mut a, &mut b, vec![syn]);
        // Send data but "lose" it (never deliver).
        let lost = a.tcp_send(conn_a, b"important");
        assert_eq!(lost.len(), 1);
        assert!(a.tcp_needs_timer(conn_a));
        // Timer fires: retransmit and deliver this time.
        let rexmit = a.tcp_retransmit(conn_a);
        assert_eq!(rexmit.len(), 1);
        assert_eq!(rexmit[0].segment.payload.as_ref(), b"important");
        let (_, ev_b) = exchange(&mut a, &mut b, rexmit);
        assert!(ev_b
            .iter()
            .any(|e| matches!(e, SocketEvent::TcpData(_, d) if d.as_ref() == b"important")));
        assert!(!a.tcp_needs_timer(conn_a));
    }

    #[test]
    fn duplicate_data_not_delivered_twice() {
        let (mut a, mut b) = pair();
        b.tcp_listen.push(102);
        let (conn_a, syn) = a.tcp_connect(b.ip, 102);
        exchange(&mut a, &mut b, vec![syn]);
        let outs = a.tcp_send(conn_a, b"once");
        let seg = outs[0].clone();
        let (_, ev1) = b.tcp_input(a.ip, &seg.segment);
        let (_, ev2) = b.tcp_input(a.ip, &seg.segment);
        let datas = |evs: &[SocketEvent]| {
            evs.iter()
                .filter(|e| matches!(e, SocketEvent::TcpData(..)))
                .count()
        };
        assert_eq!(datas(&ev1), 1);
        assert_eq!(datas(&ev2), 0, "duplicate must be dropped");
    }

    #[test]
    fn ephemeral_ports_unique() {
        let mut h = HostState::new(MacAddr::from_index(1), Ipv4Addr::new(10, 0, 0, 1));
        let p1 = h.alloc_port();
        let p2 = h.alloc_port();
        assert_ne!(p1, p2);
    }
}
