//! The deterministic discrete-event network: nodes, links, switches, and the
//! event loop gluing host stacks to applications.

use crate::addr::{ethertype, Ipv4Addr, MacAddr};
use crate::app::{AppPlane, HostCtx, SocketApp};
use crate::frame::{ipproto, ArpPacket, EthernetFrame, Ipv4Packet, TcpSegment, UdpDatagram};
use crate::host::{ConnId, HostState, SocketEvent, TcpOut};
use crate::time::{SimDuration, SimTime};
use sgcr_faults::{FaultRng, LinkFault};
use sgcr_obs::{
    buckets, Counter, Event as ObsEvent, Histogram, Plane, Telemetry, TraceCtx, Tracer,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Identifier of a node (host or switch) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Physical properties of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Transmission rate in bits per second.
    pub rate_bps: u64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        // 100 Mbit/s switched Ethernet with 50 µs latency: the class of LAN
        // the EPIC testbed's substation network uses.
        LinkSpec {
            latency: SimDuration::from_micros(50),
            rate_bps: 100_000_000,
        }
    }
}

impl LinkSpec {
    /// A wide-area link profile (higher latency), for inter-substation WAN.
    pub fn wan() -> LinkSpec {
        LinkSpec {
            latency: SimDuration::from_millis(5),
            rate_bps: 100_000_000,
        }
    }
}

/// A captured frame (time of arrival at the capturing node).
#[derive(Debug, Clone)]
pub struct CapturedFrame {
    /// Arrival time.
    pub time: SimTime,
    /// The frame.
    pub frame: EthernetFrame,
}

struct Link {
    a: (NodeId, usize),
    b: (NodeId, usize),
    spec: LinkSpec,
    busy_until_ab: SimTime,
    busy_until_ba: SimTime,
    /// Administratively down links drop all frames (failure injection).
    up: bool,
    /// Probabilistic impairment profile; `None` (the default) keeps the
    /// transmit path exactly as fast and as deterministic as before faults
    /// existed.
    fault: Option<LinkFault>,
}

/// Per-host instrument handles, resolved once when the host is added (or when
/// telemetry is attached) so the hot path never touches the registry.
#[derive(Default)]
struct HostMeters {
    tx: Counter,
    rx: Counter,
    dropped: Counter,
}

struct HostNode {
    state: HostState,
    app: Option<Box<dyn SocketApp>>,
    meters: HostMeters,
    /// The attached app's plane, cached at [`Network::attach_app`] so the
    /// dispatch hot path never re-queries the trait object.
    plane: AppPlane,
    /// False while the simulated device is crashed: incoming frames are
    /// dropped and app/TCP timers are deferred until restart.
    enabled: bool,
}

struct SwitchNode {
    mac_table: HashMap<MacAddr, usize>,
}

enum NodeKind {
    Host(Box<HostNode>),
    Switch(SwitchNode),
}

struct Node {
    name: String,
    kind: NodeKind,
    /// Port index → link index.
    ports: Vec<usize>,
    capture: Option<Vec<CapturedFrame>>,
}

#[derive(Debug)]
enum Event {
    Frame {
        node: NodeId,
        port: usize,
        frame: EthernetFrame,
        /// Causal context the frame carries across the wire: the `net.link`
        /// span of the traversal that delivers it. `None` unless tracing.
        ctx: Option<TraceCtx>,
    },
    AppStart {
        node: NodeId,
    },
    AppTimer {
        node: NodeId,
        token: u64,
    },
    TcpTimer {
        node: NodeId,
        conn: ConnId,
    },
}

struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The TCP retransmission timeout used by the emulated stacks.
const TCP_RTO: SimDuration = SimDuration::from_millis(200);

/// How long a crashed host's deferred timer events wait before re-checking
/// whether the host came back. Bounds restart latency without busy-looping.
const CRASH_RETRY: SimDuration = SimDuration::from_millis(10);

/// The emulated network: a deterministic discrete-event simulator hosting
/// switches, hosts, and the applications attached to them.
///
/// # Examples
///
/// ```
/// use sgcr_net::{Network, LinkSpec, SimTime};
///
/// let mut net = Network::new();
/// let sw = net.add_switch("sw0");
/// let h1 = net.add_host("h1", "10.0.0.1".parse().unwrap());
/// let h2 = net.add_host("h2", "10.0.0.2".parse().unwrap());
/// net.connect(h1, sw, LinkSpec::default());
/// net.connect(h2, sw, LinkSpec::default());
/// net.run_until(SimTime::from_millis(10));
/// assert_eq!(net.now(), SimTime::from_millis(10));
/// ```
#[derive(Default)]
pub struct Network {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    nodes: Vec<Node>,
    links: Vec<Link>,
    mac_counter: u64,
    tcp_timer_armed: HashSet<(NodeId, ConnId)>,
    names: HashMap<String, NodeId>,
    telemetry: Telemetry,
    tracer: Tracer,
    /// The causal context of the event currently being dispatched. Set from
    /// the delivering frame's ctx (and only from frames — timers are causal
    /// roots), readable by apps via [`HostCtx::trace_parent`], overridable
    /// via [`HostCtx::set_trace_parent`] so e.g. a GOOSE publication span
    /// parents the frames it emits. Cleared after every dispatch.
    pub(crate) ambient_ctx: Option<TraceCtx>,
    frames_sent: Counter,
    frames_delivered: Counter,
    frames_dropped: Counter,
    link_latency: Histogram,
    /// The seeded decision stream behind probabilistic link faults. Only
    /// consulted while at least one link carries a fault profile, so
    /// fault-free runs never draw from it and stay byte-identical to
    /// pre-fault builds.
    fault_rng: FaultRng,
    /// Whether app dispatches are wall-clock timed per plane. On exactly
    /// when telemetry is enabled, so a disabled range never reads the clock.
    profile_planes: bool,
    /// Nanoseconds of app execution accumulated per [`AppPlane`] since the
    /// last [`Network::take_plane_nanos`].
    plane_nanos: [u64; AppPlane::COUNT],
}

impl Network {
    /// Creates an empty network at time zero.
    pub fn new() -> Network {
        Network::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Attaches a telemetry handle. Global and per-host frame counters and
    /// the link-latency histogram are resolved immediately, including for
    /// hosts that already exist. A [`Telemetry::disabled`] handle (the
    /// default) makes every instrument a no-op.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        self.tracer = self.telemetry.tracer();
        self.profile_planes = self.telemetry.is_enabled();
        self.frames_sent = self.telemetry.counter("net.frames_sent");
        self.frames_delivered = self.telemetry.counter("net.frames_delivered");
        self.frames_dropped = self.telemetry.counter("net.frames_dropped");
        self.link_latency = self
            .telemetry
            .histogram("net.link_latency_seconds", &buckets::LATENCY_SECONDS);
        for i in 0..self.nodes.len() {
            self.resolve_host_meters(NodeId(i));
        }
    }

    /// The attached telemetry handle (disabled unless
    /// [`set_telemetry`](Network::set_telemetry) was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The attached tracer (disabled unless the telemetry handle traces).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn resolve_host_meters(&mut self, node: NodeId) {
        if !self.telemetry.is_enabled() {
            return;
        }
        if !self.is_host(node) {
            return;
        }
        let name = self.nodes[node.index()].name.clone();
        let meters = HostMeters {
            tx: self
                .telemetry
                .counter(&format!("net.host.{name}.tx_frames")),
            rx: self
                .telemetry
                .counter(&format!("net.host.{name}.rx_frames")),
            dropped: self
                .telemetry
                .counter(&format!("net.host.{name}.dropped_frames")),
        };
        if let NodeKind::Host(h) = &mut self.nodes[node.index()].kind {
            h.meters = meters;
        }
    }

    /// Adds a learning switch.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_switch(&mut self, name: &str) -> NodeId {
        self.add_node(
            name,
            NodeKind::Switch(SwitchNode {
                mac_table: HashMap::new(),
            }),
        )
    }

    /// Adds a host with an auto-assigned MAC address.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_host(&mut self, name: &str, ip: Ipv4Addr) -> NodeId {
        self.mac_counter += 1;
        let mac = MacAddr::auto_assigned(self.mac_counter);
        self.add_host_with_mac(name, ip, mac)
    }

    /// Adds a host with an explicit MAC address (from an SCD file).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_host_with_mac(&mut self, name: &str, ip: Ipv4Addr, mac: MacAddr) -> NodeId {
        let id = self.add_node(
            name,
            NodeKind::Host(Box::new(HostNode {
                state: HostState::new(mac, ip),
                app: None,
                meters: HostMeters::default(),
                plane: AppPlane::Other,
                enabled: true,
            })),
        );
        self.resolve_host_meters(id);
        id
    }

    fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        assert!(
            !self.names.contains_key(name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            ports: Vec::new(),
            capture: None,
        });
        self.names.insert(name.to_string(), id);
        id
    }

    /// Connects two nodes with a link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        let link_id = self.links.len();
        let port_a = self.nodes[a.index()].ports.len();
        self.nodes[a.index()].ports.push(link_id);
        let port_b = self.nodes[b.index()].ports.len();
        self.nodes[b.index()].ports.push(link_id);
        self.links.push(Link {
            a: (a, port_a),
            b: (b, port_b),
            spec,
            busy_until_ab: SimTime::ZERO,
            busy_until_ba: SimTime::ZERO,
            up: true,
            fault: None,
        });
    }

    /// Takes a link between two nodes up or down (failure injection).
    /// Returns `false` if no direct link exists.
    pub fn set_link_state(&mut self, a: NodeId, b: NodeId, up: bool) -> bool {
        for link in &mut self.links {
            let ends = (link.a.0, link.b.0);
            if ends == (a, b) || ends == (b, a) {
                link.up = up;
                return true;
            }
        }
        false
    }

    /// Changes the propagation latency of the link between two nodes
    /// (degradation injection: a congested or tampered path). Frames
    /// already in flight keep the latency they departed with.
    /// Returns `false` if no direct link exists.
    pub fn set_link_latency(&mut self, a: NodeId, b: NodeId, latency: SimDuration) -> bool {
        for link in &mut self.links {
            let ends = (link.a.0, link.b.0);
            if ends == (a, b) || ends == (b, a) {
                link.spec.latency = latency;
                return true;
            }
        }
        false
    }

    /// Seeds the fault-decision stream. Identical seeds (with identical
    /// fault profiles) replay identical loss/corruption/duplication
    /// patterns; the default stream uses seed 0.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_rng = FaultRng::new(seed);
    }

    /// The fault generator's current internal state — the replay position of
    /// the decision stream. Two deterministic runs that agree here have made
    /// exactly the same fault draws, which is what checkpoint verification
    /// compares.
    pub fn fault_rng_state(&self) -> u64 {
        self.fault_rng.state()
    }

    /// Installs (or, with a no-op profile, clears) an impairment profile on
    /// the link between two nodes. Returns `false` if no direct link exists.
    pub fn set_link_fault(&mut self, a: NodeId, b: NodeId, fault: LinkFault) -> bool {
        for link in &mut self.links {
            let ends = (link.a.0, link.b.0);
            if ends == (a, b) || ends == (b, a) {
                link.fault = if fault.is_noop() { None } else { Some(fault) };
                return true;
            }
        }
        false
    }

    /// The impairment profile on the link between two nodes, if any.
    pub fn link_fault(&self, a: NodeId, b: NodeId) -> Option<LinkFault> {
        self.links.iter().find_map(|link| {
            let ends = (link.a.0, link.b.0);
            if ends == (a, b) || ends == (b, a) {
                link.fault
            } else {
                None
            }
        })
    }

    /// Crashes or restarts a simulated device. While disabled, frames
    /// addressed to the host are dropped (`host-down`) and its application
    /// and TCP timers are deferred; re-enabling lets the deferred timers
    /// resume, so periodic apps pick their duty cycle back up within the
    /// 10 ms crash-retry interval. Returns `false` if `node` is not a host.
    pub fn set_host_enabled(&mut self, node: NodeId, enabled: bool) -> bool {
        match &mut self.nodes[node.index()].kind {
            NodeKind::Host(h) => {
                h.enabled = enabled;
                true
            }
            NodeKind::Switch(_) => false,
        }
    }

    /// True when the node is a host that is currently up (not crashed).
    pub fn host_enabled(&self, node: NodeId) -> bool {
        match &self.nodes[node.index()].kind {
            NodeKind::Host(h) => h.enabled,
            NodeKind::Switch(_) => false,
        }
    }

    fn host_is_down(&self, node: NodeId) -> bool {
        matches!(&self.nodes[node.index()].kind, NodeKind::Host(h) if !h.enabled)
    }

    /// Attaches an application to a host; `on_start` fires at the current
    /// time (before any later event).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a host or already has an app.
    pub fn attach_app(&mut self, node: NodeId, app: Box<dyn SocketApp>) {
        match &mut self.nodes[node.index()].kind {
            NodeKind::Host(h) => {
                assert!(h.app.is_none(), "host already has an app");
                h.plane = app.plane();
                h.app = Some(app);
            }
            NodeKind::Switch(_) => panic!("cannot attach an app to a switch"),
        }
        self.schedule(SimDuration::ZERO, Event::AppStart { node });
    }

    /// Takes (returns and resets) the nanoseconds of app execution
    /// accumulated per plane since the previous call, indexed by
    /// [`AppPlane::index`]. All zeros unless telemetry is enabled.
    ///
    /// The range's step loop calls this once per co-simulation step to build
    /// the `step.plane.*` attribution histograms.
    pub fn take_plane_nanos(&mut self) -> [u64; AppPlane::COUNT] {
        std::mem::take(&mut self.plane_nanos)
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// A node's name.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Names of all nodes, in creation order.
    pub fn node_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name.as_str()).collect()
    }

    /// Whether a node is a host.
    pub fn is_host(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.index()].kind, NodeKind::Host(_))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// `(node_a, node_b)` endpoints of every link, in creation order.
    pub fn link_endpoints(&self) -> Vec<(NodeId, NodeId)> {
        self.links.iter().map(|l| (l.a.0, l.b.0)).collect()
    }

    /// Enables frame capture at a node (host or switch).
    pub fn enable_capture(&mut self, node: NodeId) {
        self.nodes[node.index()]
            .capture
            .get_or_insert_with(Vec::new);
    }

    /// Frames captured at a node since capture was enabled.
    pub fn captured(&self, node: NodeId) -> &[CapturedFrame] {
        self.nodes[node.index()].capture.as_deref().unwrap_or(&[])
    }

    // ----- host accessors used by HostCtx --------------------------------

    fn host(&self, node: NodeId) -> &HostNode {
        match &self.nodes[node.index()].kind {
            NodeKind::Host(h) => h,
            NodeKind::Switch(_) => panic!("node {node:?} is not a host"),
        }
    }

    fn host_mut(&mut self, node: NodeId) -> &mut HostNode {
        match &mut self.nodes[node.index()].kind {
            NodeKind::Host(h) => h,
            NodeKind::Switch(_) => panic!("node {node:?} is not a host"),
        }
    }

    /// A host's IPv4 address.
    pub fn host_ip(&self, node: NodeId) -> Ipv4Addr {
        self.host(node).state.ip
    }

    /// A host's MAC address.
    pub fn host_mac(&self, node: NodeId) -> MacAddr {
        self.host(node).state.mac
    }

    pub(crate) fn host_bind_udp(&mut self, node: NodeId, port: u16) {
        let s = &mut self.host_mut(node).state;
        if !s.udp_bound.contains(&port) {
            s.udp_bound.push(port);
        }
    }

    pub(crate) fn host_tcp_listen(&mut self, node: NodeId, port: u16) {
        let s = &mut self.host_mut(node).state;
        if !s.tcp_listen.contains(&port) {
            s.tcp_listen.push(port);
        }
    }

    pub(crate) fn host_tcp_connect(
        &mut self,
        node: NodeId,
        dst: Ipv4Addr,
        dst_port: u16,
    ) -> ConnId {
        let (id, out) = self.host_mut(node).state.tcp_connect(dst, dst_port);
        self.send_tcp_out(node, out);
        self.arm_tcp_timer(node, id);
        id
    }

    pub(crate) fn host_tcp_send(&mut self, node: NodeId, conn: ConnId, data: &[u8]) {
        let outs = self.host_mut(node).state.tcp_send(conn, data);
        for out in outs {
            self.send_tcp_out(node, out);
        }
        self.arm_tcp_timer(node, conn);
    }

    pub(crate) fn host_tcp_close(&mut self, node: NodeId, conn: ConnId) {
        let outs = self.host_mut(node).state.tcp_close(conn);
        for out in outs {
            self.send_tcp_out(node, out);
        }
        self.arm_tcp_timer(node, conn);
    }

    pub(crate) fn host_send_udp(
        &mut self,
        node: NodeId,
        dst: Ipv4Addr,
        dst_port: u16,
        src_port: u16,
        data: &[u8],
    ) {
        let payload = UdpDatagram {
            src_port,
            dst_port,
            payload: bytes::Bytes::copy_from_slice(data),
        }
        .encode();
        self.host_send_ip(node, dst, ipproto::UDP, payload);
    }

    pub(crate) fn host_send_frame(&mut self, node: NodeId, frame: EthernetFrame) {
        self.transmit(node, 0, frame);
    }

    pub(crate) fn host_set_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        self.schedule(delay, Event::AppTimer { node, token });
    }

    pub(crate) fn host_set_promiscuous(&mut self, node: NodeId, on: bool) {
        self.host_mut(node).state.promiscuous = on;
    }

    pub(crate) fn host_set_deliver_transit(&mut self, node: NodeId, on: bool) {
        self.host_mut(node).state.deliver_transit = on;
    }

    pub(crate) fn host_arp_insert(&mut self, node: NodeId, ip: Ipv4Addr, mac: MacAddr) {
        self.host_mut(node).state.arp_cache.insert(ip, mac);
    }

    pub(crate) fn host_arp_lookup(&self, node: NodeId, ip: Ipv4Addr) -> Option<MacAddr> {
        self.host(node).state.arp_cache.get(&ip).copied()
    }

    // ----- IP / frame transmission ----------------------------------------

    fn send_tcp_out(&mut self, node: NodeId, out: TcpOut) {
        self.host_send_ip(node, out.dst, ipproto::TCP, out.segment.encode());
    }

    fn host_send_ip(&mut self, node: NodeId, dst: Ipv4Addr, proto: u8, transport: Vec<u8>) {
        let state = &mut self.host_mut(node).state;
        let src_ip = state.ip;
        match state.arp_cache.get(&dst).copied() {
            Some(dst_mac) => {
                let packet = Ipv4Packet::new(src_ip, dst, proto, transport);
                let frame =
                    EthernetFrame::new(dst_mac, state.mac, ethertype::IPV4, packet.encode());
                self.transmit(node, 0, frame);
            }
            None => {
                state
                    .arp_pending
                    .entry(dst)
                    .or_default()
                    .push((proto, transport));
                let req = ArpPacket::request(state.mac, src_ip, dst);
                let frame = req.into_frame(MacAddr::BROADCAST);
                self.transmit(node, 0, frame);
            }
        }
    }

    fn arm_tcp_timer(&mut self, node: NodeId, conn: ConnId) {
        if !self.host(node).state.tcp_needs_timer(conn) {
            return;
        }
        if self.tcp_timer_armed.insert((node, conn)) {
            self.schedule(TCP_RTO, Event::TcpTimer { node, conn });
        }
    }

    /// Transmits a frame out of `node`'s `port`, modelling serialization
    /// delay, link propagation latency, and FIFO queueing per direction.
    fn transmit(&mut self, node: NodeId, port: usize, frame: EthernetFrame) {
        let wire_bytes = frame.wire_len() as u64;
        let Some(&link_id) = self.nodes[node.index()].ports.get(port) else {
            // Unconnected port: frame vanishes.
            self.note_drop(node, wire_bytes, "no-link");
            return;
        };
        let wire_bits = wire_bytes * 8;
        if !self.links[link_id].up {
            self.note_drop(node, wire_bytes, "link-down");
            return;
        }
        // Fault plane: only links carrying a profile touch the seeded
        // decision stream, so fault-free topologies replay exactly as before.
        let mut jitter = SimDuration::ZERO;
        let mut duplicated = false;
        if let Some(fault) = self.links[link_id].fault {
            if fault.flapped_down(self.now.as_nanos()) {
                self.note_drop(node, wire_bytes, "fault-flap");
                return;
            }
            if self.fault_rng.chance(fault.loss) {
                self.note_drop(node, wire_bytes, "fault-loss");
                return;
            }
            if self.fault_rng.chance(fault.corrupt) {
                // Bit damage in flight: the receiver's FCS check rejects the
                // frame, so corruption manifests as a drop, never as a
                // mangled delivery.
                self.note_drop(node, wire_bytes, "fault-corrupt");
                return;
            }
            if fault.jitter_ns > 0 {
                jitter = SimDuration::from_nanos(self.fault_rng.below(fault.jitter_ns + 1));
            }
            duplicated = self.fault_rng.chance(fault.duplicate);
        }
        let link = &mut self.links[link_id];
        let (peer, busy) = if link.a == (node, port) {
            (link.b, &mut link.busy_until_ab)
        } else {
            (link.a, &mut link.busy_until_ba)
        };
        let ser =
            SimDuration::from_nanos(wire_bits.saturating_mul(1_000_000_000) / link.spec.rate_bps);
        let start = (*busy).max(self.now);
        *busy = start + ser;
        let arrival = start + ser + link.spec.latency + jitter;
        // A duplicated frame occupies the wire a second time, back to back.
        let dup_arrival = if duplicated {
            *busy = start + ser + ser;
            Some(arrival + ser)
        } else {
            None
        };
        let delay = arrival - self.now;
        self.link_latency.observe(delay.as_secs_f64());
        // Sends are counted at the originating host only; switch forwards of
        // the same frame are not re-counted.
        if let NodeKind::Host(h) = &self.nodes[node.index()].kind {
            self.frames_sent.inc();
            h.meters.tx.inc();
            self.telemetry
                .record(self.now.as_nanos(), || ObsEvent::PacketSent {
                    host: self.nodes[node.index()].name.clone(),
                    bytes: wire_bytes,
                });
        }
        // Each traversal records a `net.link` span parented to the context
        // of whatever put the frame on the wire (the sending app's span at
        // the first hop, the previous hop's span at switch forwards), and
        // the frame carries the *new* span's context to the receiving node:
        // multi-hop paths become chains, and a PLC action triggered by a
        // GOOSE frame stays transitively parented to the IED that sent it.
        // Context only exists while tracing, so untraced traffic pays one
        // `Option` check here.
        let ctx = self.ambient_ctx.map(|parent| {
            let mut span = self
                .tracer
                .open("net.link", Plane::Net, Some(parent), self.now);
            if span.is_recording() {
                span.attr("from", self.nodes[node.index()].name.as_str());
                span.attr("to", self.nodes[peer.0.index()].name.as_str());
            }
            let ctx = span.ctx();
            span.end(arrival);
            ctx.unwrap_or(parent)
        });
        if let Some(dup_arrival) = dup_arrival {
            self.schedule(
                dup_arrival - self.now,
                Event::Frame {
                    node: peer.0,
                    port: peer.1,
                    frame: frame.clone(),
                    ctx,
                },
            );
        }
        self.schedule(
            delay,
            Event::Frame {
                node: peer.0,
                port: peer.1,
                frame,
                ctx,
            },
        );
    }

    /// Accounts for a frame discarded before it reached a link. Drops by
    /// switches count globally; drops at a host also feed its per-host
    /// counter and journal a [`ObsEvent::PacketDropped`].
    fn note_drop(&self, node: NodeId, bytes: u64, reason: &'static str) {
        self.frames_dropped.inc();
        if let NodeKind::Host(h) = &self.nodes[node.index()].kind {
            h.meters.dropped.inc();
            self.telemetry
                .record(self.now.as_nanos(), || ObsEvent::PacketDropped {
                    host: self.nodes[node.index()].name.clone(),
                    bytes,
                    reason: reason.to_string(),
                });
        }
    }

    fn schedule(&mut self, delay: SimDuration, event: Event) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            time: self.now + delay,
            seq: self.seq,
            event,
        }));
    }

    // ----- event loop ------------------------------------------------------

    /// Runs the simulation until `t` (inclusive of events at `t`), then sets
    /// the clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time > t {
                break;
            }
            let Reverse(scheduled) = self.queue.pop().expect("peeked");
            self.now = scheduled.time;
            self.process(scheduled.event);
        }
        self.now = t;
    }

    /// Runs the simulation for `d` beyond the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    fn process(&mut self, event: Event) {
        let for_down_host = match &event {
            Event::Frame { node, .. }
            | Event::AppStart { node }
            | Event::AppTimer { node, .. }
            | Event::TcpTimer { node, .. } => self.host_is_down(*node),
        };
        if for_down_host {
            match event {
                // A crashed NIC answers nothing; the frame is gone.
                Event::Frame { node, frame, .. } => {
                    self.note_drop(node, frame.wire_len() as u64, "host-down");
                }
                // Timers are deferred, not dropped, so a restarted device
                // resumes its periodic duty cycle instead of going silent.
                other => self.schedule(CRASH_RETRY, other),
            }
            return;
        }
        match event {
            Event::Frame {
                node,
                port,
                frame,
                ctx,
            } => {
                // The frame's context becomes ambient for everything this
                // delivery triggers — stack processing, app callbacks, and
                // any sends they make. Timers deliberately stay context-free
                // (a re-armed periodic timer would otherwise chain forever).
                self.ambient_ctx = ctx;
                self.process_frame(node, port, frame);
            }
            Event::AppStart { node } => {
                self.with_app(node, |app, ctx| app.on_start(ctx));
            }
            Event::AppTimer { node, token } => {
                self.with_app(node, |app, ctx| app.on_timer(ctx, token));
            }
            Event::TcpTimer { node, conn } => {
                self.tcp_timer_armed.remove(&(node, conn));
                if !self.is_host(node) {
                    return;
                }
                let outs = self.host_mut(node).state.tcp_retransmit(conn);
                for out in outs {
                    self.send_tcp_out(node, out);
                }
                self.arm_tcp_timer(node, conn);
            }
        }
        // An app may have overridden the ambient context mid-dispatch
        // (set_trace_parent); never let it leak into the next event.
        self.ambient_ctx = None;
    }

    fn process_frame(&mut self, node: NodeId, port: usize, frame: EthernetFrame) {
        if let Some(cap) = &mut self.nodes[node.index()].capture {
            cap.push(CapturedFrame {
                time: self.now,
                frame: frame.clone(),
            });
        }
        match &mut self.nodes[node.index()].kind {
            NodeKind::Switch(sw) => {
                // Learn the source, then forward.
                if !frame.src.is_multicast() {
                    sw.mac_table.insert(frame.src, port);
                }
                let out_ports: Vec<usize> = if frame.dst.is_multicast() || frame.dst.is_broadcast()
                {
                    (0..self.nodes[node.index()].ports.len())
                        .filter(|&p| p != port)
                        .collect()
                } else if let Some(&p) = sw.mac_table.get(&frame.dst) {
                    if p == port {
                        Vec::new()
                    } else {
                        vec![p]
                    }
                } else {
                    (0..self.nodes[node.index()].ports.len())
                        .filter(|&p| p != port)
                        .collect()
                };
                for p in out_ports {
                    self.transmit(node, p, frame.clone());
                }
            }
            NodeKind::Host(host) => {
                let mac = host.state.mac;
                let promiscuous = host.state.promiscuous;
                let for_us =
                    frame.dst == mac || frame.dst.is_broadcast() || frame.dst.is_multicast();
                if for_us {
                    self.frames_delivered.inc();
                    host.meters.rx.inc();
                }
                if !for_us && !promiscuous {
                    return;
                }
                if for_us {
                    let bytes = frame.wire_len() as u64;
                    self.telemetry
                        .record(self.now.as_nanos(), || ObsEvent::PacketDelivered {
                            host: self.nodes[node.index()].name.clone(),
                            bytes,
                        });
                }
                // Stack processing for frames addressed to our MAC/broadcast.
                let mut events: Vec<SocketEvent> = Vec::new();
                let mut transit = false;
                if frame.dst == mac || frame.dst.is_broadcast() {
                    match frame.ethertype {
                        ethertype::ARP => self.process_arp(node, &frame),
                        ethertype::IPV4 => {
                            transit = self.process_ipv4(node, &frame, &mut events);
                        }
                        _ => {}
                    }
                }
                // Raw delivery (after stack, so ARP replies are already
                // usable from within on_raw_frame).
                let frame_clone = frame.clone();
                self.with_app(node, |app, ctx| app.on_raw_frame(ctx, &frame_clone));
                if transit {
                    self.with_app(node, |app, ctx| app.on_transit_ip(ctx, &frame_clone));
                }
                for ev in events {
                    self.deliver_socket_event(node, ev);
                }
            }
        }
    }

    fn process_arp(&mut self, node: NodeId, frame: &EthernetFrame) {
        let Some(arp) = ArpPacket::decode(&frame.payload) else {
            return;
        };
        let (our_ip, our_mac) = {
            let s = &self.host(node).state;
            (s.ip, s.mac)
        };
        // Learn the sender unconditionally — including unsolicited replies.
        // This is standard ARP behaviour and exactly what ARP spoofing
        // (the paper's MITM case study) exploits.
        {
            let s = &mut self.host_mut(node).state;
            s.arp_cache.insert(arp.sender_ip, arp.sender_mac);
        }
        // Flush packets that were waiting on this resolution.
        let pending = self
            .host_mut(node)
            .state
            .arp_pending
            .remove(&arp.sender_ip)
            .unwrap_or_default();
        for (proto, transport) in pending {
            self.host_send_ip(node, arp.sender_ip, proto, transport);
        }
        // Answer requests for our address.
        if arp.operation == ArpPacket::REQUEST && arp.target_ip == our_ip {
            let reply = ArpPacket::reply(our_mac, our_ip, arp.sender_mac, arp.sender_ip);
            let frame = reply.into_frame(arp.sender_mac);
            self.transmit(node, 0, frame);
        }
    }

    /// Returns `true` if the packet is transit (for the MITM hook).
    fn process_ipv4(
        &mut self,
        node: NodeId,
        frame: &EthernetFrame,
        events: &mut Vec<SocketEvent>,
    ) -> bool {
        let Some(packet) = Ipv4Packet::decode(&frame.payload) else {
            return false;
        };
        let our_ip = self.host(node).state.ip;
        if packet.dst != our_ip {
            return self.host(node).state.deliver_transit;
        }
        match packet.protocol {
            ipproto::UDP => {
                if let Some(dgram) = UdpDatagram::decode(&packet.payload) {
                    if self.host(node).state.udp_bound.contains(&dgram.dst_port) {
                        events.push(SocketEvent::Udp {
                            src: (packet.src, dgram.src_port),
                            dst_port: dgram.dst_port,
                            data: dgram.payload,
                        });
                    }
                }
            }
            ipproto::TCP => {
                if let Some(seg) = TcpSegment::decode(&packet.payload) {
                    let (outs, evs) = self.host_mut(node).state.tcp_input(packet.src, &seg);
                    let conns: Vec<ConnId> = self.host(node).state.conns.keys().copied().collect();
                    for out in outs {
                        self.send_tcp_out(node, out);
                    }
                    for c in conns {
                        self.arm_tcp_timer(node, c);
                    }
                    events.extend(evs);
                }
            }
            _ => {}
        }
        false
    }

    fn deliver_socket_event(&mut self, node: NodeId, ev: SocketEvent) {
        self.with_app(node, |app, ctx| match ev {
            SocketEvent::TcpConnected(c) => app.on_tcp_connected(ctx, c),
            SocketEvent::TcpAccepted(c, peer) => app.on_tcp_accepted(ctx, c, peer),
            SocketEvent::TcpData(c, data) => app.on_tcp_data(ctx, c, &data),
            SocketEvent::TcpClosed(c) => app.on_tcp_closed(ctx, c),
            SocketEvent::Udp {
                src,
                dst_port,
                data,
            } => app.on_udp(ctx, src, dst_port, &data),
        });
    }

    fn with_app<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn SocketApp, &mut HostCtx<'_>),
    {
        let (mut app, plane) = match &mut self.nodes[node.index()].kind {
            NodeKind::Host(h) => (h.app.take(), h.plane),
            NodeKind::Switch(_) => (None, AppPlane::Other),
        };
        if let Some(a) = app.as_mut() {
            let started = self.profile_planes.then(std::time::Instant::now);
            let mut ctx = HostCtx { net: self, node };
            f(a.as_mut(), &mut ctx);
            if let Some(started) = started {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.plane_nanos[plane.index()] =
                    self.plane_nanos[plane.index()].saturating_add(nanos);
            }
        }
        if let NodeKind::Host(h) = &mut self.nodes[node.index()].kind {
            if h.app.is_none() {
                h.app = app;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Simple app: on start, sends a UDP "ping" to a peer; logs everything.
    struct Pinger {
        peer: Ipv4Addr,
        log: Arc<Mutex<Vec<String>>>,
    }

    impl SocketApp for Pinger {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.bind_udp(9000);
            ctx.send_udp(self.peer, 9000, 9000, b"ping");
        }
        fn on_udp(
            &mut self,
            ctx: &mut HostCtx<'_>,
            src: (Ipv4Addr, u16),
            _dst_port: u16,
            data: &[u8],
        ) {
            self.log.lock().push(format!(
                "{} got {:?} from {} at {}",
                ctx.name(),
                std::str::from_utf8(data).unwrap(),
                src.0,
                ctx.now()
            ));
            if data == b"ping" {
                ctx.send_udp(src.0, src.1, 9000, b"pong");
            }
        }
    }

    struct Echo {
        log: Arc<Mutex<Vec<String>>>,
    }

    impl SocketApp for Echo {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.bind_udp(9000);
        }
        fn on_udp(
            &mut self,
            ctx: &mut HostCtx<'_>,
            src: (Ipv4Addr, u16),
            _dst_port: u16,
            data: &[u8],
        ) {
            self.log
                .lock()
                .push(format!("echo got {:?}", std::str::from_utf8(data).unwrap()));
            if data == b"ping" {
                ctx.send_udp(src.0, src.1, 9000, b"pong");
            }
        }
    }

    fn star(n_hosts: usize) -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let sw = net.add_switch("sw0");
        let mut hosts = Vec::new();
        for i in 0..n_hosts {
            let h = net.add_host(&format!("h{i}"), Ipv4Addr::new(10, 0, 0, (i + 1) as u8));
            net.connect(h, sw, LinkSpec::default());
            hosts.push(h);
        }
        (net, hosts)
    }

    #[test]
    fn udp_ping_pong_with_arp_resolution() {
        let (mut net, hosts) = star(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log: log.clone() }));
        net.run_until(SimTime::from_millis(100));
        let entries = log.lock();
        assert!(entries.iter().any(|e| e.contains("echo got \"ping\"")));
        assert!(entries.iter().any(|e| e.contains("h0 got \"pong\"")));
    }

    #[test]
    fn arp_caches_populated_after_exchange() {
        let (mut net, hosts) = star(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log }));
        net.run_until(SimTime::from_millis(100));
        assert_eq!(
            net.host_arp_lookup(hosts[0], Ipv4Addr::new(10, 0, 0, 2)),
            Some(net.host_mac(hosts[1]))
        );
        assert_eq!(
            net.host_arp_lookup(hosts[1], Ipv4Addr::new(10, 0, 0, 1)),
            Some(net.host_mac(hosts[0]))
        );
    }

    #[test]
    fn switch_learns_and_stops_flooding() {
        let (mut net, hosts) = star(3);
        let log = Arc::new(Mutex::new(Vec::new()));
        net.enable_capture(hosts[2]);
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log }));
        net.run_until(SimTime::from_millis(100));
        // h2 sees the ARP broadcast but no unicast IP traffic once learned.
        let captured = net.captured(hosts[2]);
        assert!(captured.iter().any(|c| c.frame.ethertype == ethertype::ARP));
        let unicast_ip = captured
            .iter()
            .filter(|c| c.frame.ethertype == ethertype::IPV4)
            .count();
        assert_eq!(unicast_ip, 0, "switch must not flood learned unicast");
    }

    #[test]
    fn determinism_identical_logs() {
        let run = || {
            let (mut net, hosts) = star(2);
            let log = Arc::new(Mutex::new(Vec::new()));
            net.attach_app(
                hosts[0],
                Box::new(Pinger {
                    peer: Ipv4Addr::new(10, 0, 0, 2),
                    log: log.clone(),
                }),
            );
            net.attach_app(hosts[1], Box::new(Echo { log: log.clone() }));
            net.run_until(SimTime::from_millis(100));
            let entries = log.lock().clone();
            entries
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn link_down_drops_traffic() {
        let (mut net, hosts) = star(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        let sw = net.node_by_name("sw0").unwrap();
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log: log.clone() }));
        net.set_link_state(hosts[0], sw, false);
        net.run_until(SimTime::from_millis(100));
        assert!(log.lock().is_empty());
    }

    #[test]
    fn telemetry_counts_frames_and_journals_packets() {
        let (mut net, hosts) = star(2);
        let telemetry = Telemetry::new();
        net.set_telemetry(telemetry.clone());
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log }));
        net.run_until(SimTime::from_millis(100));
        let snap = telemetry.snapshot();
        assert!(
            snap.counter("net.frames_sent").unwrap() >= 4,
            "arp + udp both ways"
        );
        assert!(snap.counter("net.frames_delivered").unwrap() >= 4);
        assert!(snap.counter("net.host.h0.tx_frames").unwrap() > 0);
        assert!(snap.counter("net.host.h1.rx_frames").unwrap() > 0);
        assert!(snap.histogram("net.link_latency_seconds").unwrap().count > 0);
        let events = telemetry.events();
        assert!(events.iter().any(|r| r.event.kind() == "PacketSent"));
        assert!(events.iter().any(|r| r.event.kind() == "PacketDelivered"));
    }

    #[test]
    fn telemetry_journals_drops_on_downed_link() {
        let (mut net, hosts) = star(2);
        let telemetry = Telemetry::new();
        net.set_telemetry(telemetry.clone());
        let sw = net.node_by_name("sw0").unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.set_link_state(hosts[0], sw, false);
        net.run_until(SimTime::from_millis(100));
        let snap = telemetry.snapshot();
        assert!(snap.counter("net.frames_dropped").unwrap() > 0);
        assert!(snap.counter("net.host.h0.dropped_frames").unwrap() > 0);
        assert!(telemetry.events().iter().any(
            |r| matches!(&r.event, ObsEvent::PacketDropped { reason, .. } if reason == "link-down")
        ));
    }

    /// Sends `remaining` pings to `peer`, one per millisecond.
    struct Burst {
        peer: Ipv4Addr,
        remaining: u32,
    }

    impl SocketApp for Burst {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.bind_udp(9000);
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send_udp(self.peer, 9000, 9000, b"ping");
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
    }

    #[test]
    fn fault_full_loss_drops_everything() {
        let (mut net, hosts) = star(2);
        let telemetry = Telemetry::new();
        net.set_telemetry(telemetry.clone());
        let sw = net.node_by_name("sw0").unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log: log.clone() }));
        assert!(net.set_link_fault(
            hosts[0],
            sw,
            LinkFault {
                loss: 1.0,
                ..LinkFault::default()
            }
        ));
        net.run_until(SimTime::from_millis(100));
        assert!(log.lock().is_empty());
        assert!(telemetry.events().iter().any(
            |r| matches!(&r.event, ObsEvent::PacketDropped { reason, .. } if reason == "fault-loss")
        ));
    }

    #[test]
    fn fault_corrupt_drops_with_its_own_reason() {
        let (mut net, hosts) = star(2);
        let telemetry = Telemetry::new();
        net.set_telemetry(telemetry.clone());
        let sw = net.node_by_name("sw0").unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.set_link_fault(
            hosts[0],
            sw,
            LinkFault {
                corrupt: 1.0,
                ..LinkFault::default()
            },
        );
        net.run_until(SimTime::from_millis(100));
        assert!(log.lock().is_empty());
        assert!(telemetry.events().iter().any(|r| matches!(
            &r.event,
            ObsEvent::PacketDropped { reason, .. } if reason == "fault-corrupt"
        )));
    }

    #[test]
    fn fault_duplicate_delivers_twice() {
        let (mut net, hosts) = star(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        let sw = net.node_by_name("sw0").unwrap();
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log: log.clone() }));
        net.set_link_fault(
            hosts[0],
            sw,
            LinkFault {
                duplicate: 1.0,
                ..LinkFault::default()
            },
        );
        net.run_until(SimTime::from_millis(100));
        let pings = log
            .lock()
            .iter()
            .filter(|e| e.contains("echo got \"ping\""))
            .count();
        assert!(pings >= 2, "duplicated ping must arrive twice, got {pings}");
    }

    #[test]
    fn fault_flap_down_window_blocks_traffic() {
        let (mut net, hosts) = star(2);
        let telemetry = Telemetry::new();
        net.set_telemetry(telemetry.clone());
        let sw = net.node_by_name("sw0").unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            hosts[0],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                log: log.clone(),
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log: log.clone() }));
        // Down for the whole period: permanently flapped away.
        net.set_link_fault(
            hosts[0],
            sw,
            LinkFault {
                flap_period_ns: 1_000_000,
                flap_down_ns: 1_000_000,
                ..LinkFault::default()
            },
        );
        net.run_until(SimTime::from_millis(100));
        assert!(log.lock().is_empty());
        assert!(telemetry.events().iter().any(
            |r| matches!(&r.event, ObsEvent::PacketDropped { reason, .. } if reason == "fault-flap")
        ));
    }

    #[test]
    fn fault_noop_profile_clears_the_fault() {
        let (mut net, hosts) = star(2);
        let sw = net.node_by_name("sw0").unwrap();
        net.set_link_fault(
            hosts[0],
            sw,
            LinkFault {
                loss: 1.0,
                ..LinkFault::default()
            },
        );
        assert!(net.link_fault(hosts[0], sw).is_some());
        net.set_link_fault(hosts[0], sw, LinkFault::default());
        assert!(net.link_fault(hosts[0], sw).is_none());
    }

    /// Runs a lossy 50-ping burst and returns the telemetry journal.
    fn lossy_burst_journal(seed: u64) -> String {
        let (mut net, hosts) = star(2);
        let telemetry = Telemetry::new();
        net.set_telemetry(telemetry.clone());
        net.set_fault_seed(seed);
        let sw = net.node_by_name("sw0").unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            hosts[0],
            Box::new(Burst {
                peer: Ipv4Addr::new(10, 0, 0, 2),
                remaining: 50,
            }),
        );
        net.attach_app(hosts[1], Box::new(Echo { log }));
        net.set_link_fault(
            hosts[0],
            sw,
            LinkFault {
                loss: 0.5,
                jitter_ns: 200_000,
                ..LinkFault::default()
            },
        );
        net.run_until(SimTime::from_millis(200));
        telemetry.journal_jsonl()
    }

    #[test]
    fn fault_same_seed_replays_byte_identical_journal() {
        assert_eq!(lossy_burst_journal(42), lossy_burst_journal(42));
    }

    #[test]
    fn fault_different_seed_changes_the_loss_pattern() {
        assert_ne!(lossy_burst_journal(42), lossy_burst_journal(43));
    }

    #[test]
    fn crashed_host_drops_frames_and_restart_resumes_timers() {
        struct Ticker {
            log: Arc<Mutex<Vec<SimTime>>>,
        }
        impl SocketApp for Ticker {
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
                self.log.lock().push(ctx.now());
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        let (mut net, hosts) = star(2);
        let telemetry = Telemetry::new();
        net.set_telemetry(telemetry.clone());
        let ticks = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(hosts[0], Box::new(Ticker { log: ticks.clone() }));
        assert!(net.host_enabled(hosts[0]));
        net.run_until(SimTime::from_millis(35));
        let before = ticks.lock().len();
        assert!(before >= 3);
        assert!(net.set_host_enabled(hosts[0], false));
        // Ping the crashed host: the ARP broadcast reaches its dead NIC and
        // is dropped there.
        net.attach_app(
            hosts[1],
            Box::new(Pinger {
                peer: Ipv4Addr::new(10, 0, 0, 1),
                log: log.clone(),
            }),
        );
        net.run_until(SimTime::from_millis(100));
        let during = ticks.lock().len();
        assert_eq!(before, during, "crashed host must not tick");
        net.set_host_enabled(hosts[0], true);
        net.run_until(SimTime::from_millis(200));
        assert!(ticks.lock().len() > during, "restart must resume timers");
        // The ping addressed to the crashed host was dropped at delivery.
        assert!(telemetry.events().iter().any(
            |r| matches!(&r.event, ObsEvent::PacketDropped { reason, .. } if reason == "host-down")
        ));
        assert!(!net.set_host_enabled(net.node_by_name("sw0").unwrap(), false));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerApp {
            log: Arc<Mutex<Vec<u64>>>,
        }
        impl SocketApp for TimerApp {
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, token: u64) {
                self.log.lock().push(token);
            }
        }
        let (mut net, hosts) = star(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(hosts[0], Box::new(TimerApp { log: log.clone() }));
        net.run_until(SimTime::from_millis(100));
        assert_eq!(*log.lock(), vec![1, 2, 3]);
    }
}
