//! Export of captured traffic in the classic libpcap file format, so
//! captures taken inside the cyber range open directly in Wireshark/tcpdump
//! — the workflow security trainees expect from a range.

use crate::sim::CapturedFrame;

/// Magic for microsecond-resolution pcap, little-endian.
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Serializes captured frames to a pcap file image.
///
/// Timestamps are simulated time interpreted as seconds/microseconds since
/// the epoch; relative timings in Wireshark are therefore exact.
///
/// # Examples
///
/// ```
/// use sgcr_net::{pcap, Network, LinkSpec, SimTime, Ipv4Addr};
///
/// let mut net = Network::new();
/// let sw = net.add_switch("sw");
/// let h = net.add_host("h", Ipv4Addr::new(10, 0, 0, 1));
/// net.connect(h, sw, LinkSpec::default());
/// net.enable_capture(h);
/// net.run_until(SimTime::from_millis(5));
/// let file = pcap::to_pcap(net.captured(h));
/// assert_eq!(&file[..4], &0xa1b2c3d4u32.to_le_bytes());
/// ```
pub fn to_pcap(frames: &[CapturedFrame]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + frames.len() * 64);
    // Global header.
    out.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
    for captured in frames {
        let bytes = captured.frame.encode();
        let ns = captured.time.as_nanos();
        let secs = (ns / 1_000_000_000) as u32;
        let micros = ((ns % 1_000_000_000) / 1_000) as u32;
        out.extend_from_slice(&secs.to_le_bytes());
        out.extend_from_slice(&micros.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ethertype, MacAddr};
    use crate::frame::EthernetFrame;
    use crate::time::SimTime;

    #[test]
    fn pcap_layout() {
        let frames = vec![
            CapturedFrame {
                time: SimTime::from_millis(1),
                frame: EthernetFrame::new(
                    MacAddr::from_index(1),
                    MacAddr::from_index(2),
                    ethertype::IPV4,
                    vec![1, 2, 3, 4],
                ),
            },
            CapturedFrame {
                time: SimTime::from_millis(2),
                frame: EthernetFrame::new(
                    MacAddr::BROADCAST,
                    MacAddr::from_index(2),
                    ethertype::ARP,
                    vec![9; 28],
                ),
            },
        ];
        let file = to_pcap(&frames);
        // Global header is 24 bytes.
        assert_eq!(&file[..4], &PCAP_MAGIC.to_le_bytes());
        assert_eq!(u32::from_le_bytes(file[20..24].try_into().unwrap()), 1);
        // First record: ts 0.001000, length 18 (14 hdr + 4 payload).
        let record = &file[24..];
        assert_eq!(u32::from_le_bytes(record[0..4].try_into().unwrap()), 0);
        assert_eq!(u32::from_le_bytes(record[4..8].try_into().unwrap()), 1000);
        assert_eq!(u32::from_le_bytes(record[8..12].try_into().unwrap()), 18);
        // Second record follows after 16 + 18 bytes.
        let second = &record[16 + 18..];
        assert_eq!(u32::from_le_bytes(second[4..8].try_into().unwrap()), 2000);
        assert_eq!(u32::from_le_bytes(second[8..12].try_into().unwrap()), 42);
        // Total size adds up exactly.
        assert_eq!(file.len(), 24 + 16 + 18 + 16 + 42);
    }

    #[test]
    fn empty_capture_is_just_the_header() {
        assert_eq!(to_pcap(&[]).len(), 24);
    }
}
