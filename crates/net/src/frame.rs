//! Ethernet frames and the ARP, IPv4, UDP, and TCP packet codecs.
//!
//! Headers follow the real wire formats (byte-for-byte for ARP/IPv4/UDP/TCP
//! fixed parts), so captures taken in the emulator look like real traffic and
//! attack tools can manipulate protocol fields the way real tools do.

use crate::addr::{ethertype, Ipv4Addr, MacAddr};
use bytes::Bytes;

/// An Ethernet II frame (optionally 802.1Q tagged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// 802.1Q VLAN id if tagged (GOOSE traffic commonly is).
    pub vlan: Option<u16>,
    /// EtherType of the payload.
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Creates an untagged frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: u16, payload: impl Into<Bytes>) -> Self {
        EthernetFrame {
            dst,
            src,
            vlan: None,
            ethertype,
            payload: payload.into(),
        }
    }

    /// Total on-wire size in bytes (header + payload + FCS).
    pub fn wire_len(&self) -> usize {
        14 + if self.vlan.is_some() { 4 } else { 0 } + self.payload.len() + 4
    }

    /// Serializes the frame (without FCS).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        if let Some(vlan) = self.vlan {
            out.extend_from_slice(&ethertype::VLAN.to_be_bytes());
            out.extend_from_slice(&(vlan & 0x0fff).to_be_bytes());
        }
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a frame from raw bytes.
    pub fn decode(data: &[u8]) -> Option<EthernetFrame> {
        if data.len() < 14 {
            return None;
        }
        let dst = MacAddr(data[0..6].try_into().ok()?);
        let src = MacAddr(data[6..12].try_into().ok()?);
        let mut ethertype = u16::from_be_bytes([data[12], data[13]]);
        let mut offset = 14;
        let mut vlan = None;
        if ethertype == ethertype::VLAN {
            if data.len() < 18 {
                return None;
            }
            vlan = Some(u16::from_be_bytes([data[14], data[15]]) & 0x0fff);
            ethertype = u16::from_be_bytes([data[16], data[17]]);
            offset = 18;
        }
        Some(EthernetFrame {
            dst,
            src,
            vlan,
            ethertype,
            payload: Bytes::copy_from_slice(&data[offset..]),
        })
    }
}

/// An ARP packet (Ethernet/IPv4 flavor only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// 1 = request, 2 = reply.
    pub operation: u16,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// ARP operation code for a request.
    pub const REQUEST: u16 = 1;
    /// ARP operation code for a reply.
    pub const REPLY: u16 = 2;

    /// Builds a who-has request.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: Self::REQUEST,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds a reply (also used, unsolicited, for ARP spoofing).
    pub fn reply(
        sender_mac: MacAddr,
        sender_ip: Ipv4Addr,
        target_mac: MacAddr,
        target_ip: Ipv4Addr,
    ) -> Self {
        ArpPacket {
            operation: Self::REPLY,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        }
    }

    /// Serializes to the 28-byte wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28);
        out.extend_from_slice(&1u16.to_be_bytes()); // htype: ethernet
        out.extend_from_slice(&(ethertype::IPV4).to_be_bytes()); // ptype
        out.push(6); // hlen
        out.push(4); // plen
        out.extend_from_slice(&self.operation.to_be_bytes());
        out.extend_from_slice(&self.sender_mac.octets());
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.octets());
        out.extend_from_slice(&self.target_ip.octets());
        out
    }

    /// Parses from wire bytes.
    pub fn decode(data: &[u8]) -> Option<ArpPacket> {
        if data.len() < 28 {
            return None;
        }
        if u16::from_be_bytes([data[0], data[1]]) != 1 {
            return None;
        }
        Some(ArpPacket {
            operation: u16::from_be_bytes([data[6], data[7]]),
            sender_mac: MacAddr(data[8..14].try_into().ok()?),
            sender_ip: Ipv4Addr::new(data[14], data[15], data[16], data[17]),
            target_mac: MacAddr(data[18..24].try_into().ok()?),
            target_ip: Ipv4Addr::new(data[24], data[25], data[26], data[27]),
        })
    }

    /// Wraps the packet in a broadcast (request) or unicast (reply) frame.
    pub fn into_frame(self, dst: MacAddr) -> EthernetFrame {
        EthernetFrame::new(dst, self.sender_mac, ethertype::ARP, self.encode())
    }
}

/// IP protocol numbers used by the cyber range.
pub mod ipproto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// An IPv4 packet (no options, no fragmentation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Protocol number (see [`ipproto`]).
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Transport payload.
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Creates a packet with the default TTL of 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload: impl Into<Bytes>) -> Self {
        Ipv4Packet {
            src,
            dst,
            protocol,
            ttl: 64,
            payload: payload.into(),
        }
    }

    /// Serializes with a correct header checksum.
    pub fn encode(&self) -> Vec<u8> {
        let total_len = 20 + self.payload.len();
        let mut out = Vec::with_capacity(total_len);
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&(total_len as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // identification
        out.extend_from_slice(&[0x40, 0]); // flags: DF, fragment offset 0
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let csum = internet_checksum(&out[..20]);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses from wire bytes, verifying version and header checksum.
    pub fn decode(data: &[u8]) -> Option<Ipv4Packet> {
        if data.len() < 20 || data[0] >> 4 != 4 {
            return None;
        }
        let ihl = ((data[0] & 0x0f) as usize) * 4;
        if ihl < 20 || data.len() < ihl {
            return None;
        }
        if internet_checksum(&data[..ihl]) != 0 {
            return None;
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || total_len > data.len() {
            return None;
        }
        Some(Ipv4Packet {
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            protocol: data[9],
            ttl: data[8],
            payload: Bytes::copy_from_slice(&data[ihl..total_len]),
        })
    }
}

/// Computes the 16-bit one's-complement internet checksum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Serializes (checksum omitted: 0, legal for IPv4 UDP).
    pub fn encode(&self) -> Vec<u8> {
        let len = 8 + self.payload.len();
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses from wire bytes.
    pub fn decode(data: &[u8]) -> Option<UdpDatagram> {
        if data.len() < 8 {
            return None;
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < 8 || len > data.len() {
            return None;
        }
        Some(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: Bytes::copy_from_slice(&data[8..len]),
        })
    }
}

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
}

impl TcpFlags {
    /// SYN only.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };

    fn encode(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn decode(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment (fixed 20-byte header, no options).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when `flags.ack`).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Serializes (checksum left zero: the emulator's links are reliable and
    /// the pseudo-header checksum is not needed for correctness here).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset 5 words
        out.push(self.flags.encode());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses from wire bytes.
    pub fn decode(data: &[u8]) -> Option<TcpSegment> {
        if data.len() < 20 {
            return None;
        }
        let offset = ((data[12] >> 4) as usize) * 4;
        if offset < 20 || data.len() < offset {
            return None;
        }
        Some(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::decode(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            payload: Bytes::copy_from_slice(&data[offset..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    #[test]
    fn ethernet_roundtrip() {
        let f = EthernetFrame::new(mac(1), mac(2), ethertype::IPV4, vec![1, 2, 3]);
        assert_eq!(EthernetFrame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn ethernet_vlan_roundtrip() {
        let mut f = EthernetFrame::new(
            MacAddr::goose_multicast(1),
            mac(2),
            ethertype::GOOSE,
            vec![9; 20],
        );
        f.vlan = Some(101);
        let decoded = EthernetFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded.vlan, Some(101));
        assert_eq!(decoded.ethertype, ethertype::GOOSE);
        assert_eq!(decoded, f);
    }

    #[test]
    fn ethernet_rejects_short() {
        assert_eq!(EthernetFrame::decode(&[0; 10]), None);
    }

    #[test]
    fn arp_roundtrip() {
        let req = ArpPacket::request(
            mac(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        assert_eq!(ArpPacket::decode(&req.encode()), Some(req));
        let rep = ArpPacket::reply(
            mac(2),
            Ipv4Addr::new(10, 0, 0, 2),
            mac(1),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        assert_eq!(ArpPacket::decode(&rep.encode()), Some(rep));
    }

    #[test]
    fn ipv4_roundtrip_and_checksum() {
        let p = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            ipproto::UDP,
            vec![5; 12],
        );
        let wire = p.encode();
        assert_eq!(Ipv4Packet::decode(&wire), Some(p));
        // Corrupt a header byte: checksum must reject it.
        let mut bad = wire.clone();
        bad[8] ^= 0xff;
        assert_eq!(Ipv4Packet::decode(&bad), None);
    }

    #[test]
    fn udp_roundtrip() {
        let d = UdpDatagram {
            src_port: 1234,
            dst_port: 102,
            payload: Bytes::from_static(b"hello"),
        };
        assert_eq!(UdpDatagram::decode(&d.encode()), Some(d));
    }

    #[test]
    fn tcp_roundtrip() {
        let s = TcpSegment {
            src_port: 4000,
            dst_port: 102,
            seq: 1000,
            ack: 2000,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..TcpFlags::default()
            },
            window: 65535,
            payload: Bytes::from_static(b"data"),
        };
        assert_eq!(TcpSegment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: checksum of data with its own
        // checksum embedded is zero.
        let p = Ipv4Packet::new(
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(192, 168, 0, 99),
            ipproto::TCP,
            vec![],
        );
        let wire = p.encode();
        assert_eq!(internet_checksum(&wire[..20]), 0);
    }
}
