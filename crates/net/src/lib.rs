#![warn(missing_docs)]

//! # sgcr-net
//!
//! A deterministic discrete-event L2/L3 network emulator — the Rust
//! substitute for the Mininet network emulation used by the SG-ML paper.
//!
//! The cyber side of a smart grid cyber range is "a virtual network running a
//! number of (virtual) smart grid devices". This crate provides that virtual
//! network: learning switches, links with latency and serialization delay,
//! and hosts with a real protocol stack — Ethernet framing, ARP (including
//! acceptance of unsolicited replies, the behaviour ARP-spoofing MITM attacks
//! exploit), IPv4, UDP, and a reliable TCP subset with retransmission.
//!
//! Applications (virtual IEDs, PLCs, SCADA, attack tools) implement
//! [`SocketApp`] and are attached to hosts; everything is driven by one
//! deterministic event loop in simulated time, so every experiment replays
//! bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use sgcr_net::{Network, LinkSpec, SimTime, SocketApp, HostCtx};
//!
//! struct Hello;
//! impl SocketApp for Hello {
//!     fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
//!         ctx.bind_udp(20000);
//!         ctx.send_udp("10.0.0.2".parse().unwrap(), 20000, 20000, b"hi");
//!     }
//! }
//!
//! let mut net = Network::new();
//! let sw = net.add_switch("sw0");
//! let h1 = net.add_host("h1", "10.0.0.1".parse().unwrap());
//! let h2 = net.add_host("h2", "10.0.0.2".parse().unwrap());
//! net.connect(h1, sw, LinkSpec::default());
//! net.connect(h2, sw, LinkSpec::default());
//! net.attach_app(h1, Box::new(Hello));
//! net.run_until(SimTime::from_millis(10));
//! ```

mod addr;
mod app;
mod frame;
mod host;
pub mod pcap;
mod sim;
mod time;

pub use addr::{ethertype, Ipv4Addr, MacAddr, ParseMacError};
pub use app::{AppPlane, HostCtx, SocketApp};
pub use frame::{
    internet_checksum, ipproto, ArpPacket, EthernetFrame, Ipv4Packet, TcpFlags, TcpSegment,
    UdpDatagram,
};
pub use host::{ConnId, SocketEvent, TcpState, TCP_MSS};
pub use sim::{CapturedFrame, LinkSpec, Network, NodeId};
pub use time::{SimDuration, SimTime};
