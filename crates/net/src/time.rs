//! Simulated time: nanosecond ticks on a deterministic clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use sgcr_net::SimTime;
///
/// let t = SimTime::from_millis(100) + SimTime::from_micros(50).as_duration();
/// assert_eq!(t.as_micros(), 100_050);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Interprets this time as a duration since time zero.
    pub fn as_duration(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl From<SimTime> for sgcr_obs::TimeNs {
    fn from(t: SimTime) -> sgcr_obs::TimeNs {
        sgcr_obs::TimeNs::from_nanos(t.as_nanos())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        assert_eq!(
            SimTime::from_millis(1).saturating_sub(SimTime::from_millis(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
