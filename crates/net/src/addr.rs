//! Link-layer and network-layer addresses.

use std::fmt;
use std::str::FromStr;

pub use std::net::Ipv4Addr;

/// A 48-bit Ethernet MAC address.
///
/// # Examples
///
/// ```
/// use sgcr_net::MacAddr;
///
/// let mac: MacAddr = "01:0C:CD:01:00:05".parse().unwrap();
/// assert!(mac.is_multicast());
/// assert_eq!(mac.to_string(), "01:0c:cd:01:00:05");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (unassigned).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// IEC 61850 GOOSE multicast base (`01:0C:CD:01:xx:xx`).
    pub fn goose_multicast(appid: u16) -> MacAddr {
        let [hi, lo] = appid.to_be_bytes();
        MacAddr([0x01, 0x0c, 0xcd, 0x01, hi, lo])
    }

    /// IEC 61850 Sampled Values multicast base (`01:0C:CD:04:xx:xx`).
    pub fn sv_multicast(appid: u16) -> MacAddr {
        let [hi, lo] = appid.to_be_bytes();
        MacAddr([0x01, 0x0c, 0xcd, 0x04, hi, lo])
    }

    /// Deterministic locally-administered unicast address from an index.
    pub fn from_index(index: u64) -> MacAddr {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Deterministic auto-assigned address in a prefix distinct from
    /// [`MacAddr::from_index`] and from the `02-…` range commonly written in
    /// SCD files, so emulator-assigned MACs never collide with model MACs.
    pub fn auto_assigned(index: u64) -> MacAddr {
        let b = index.to_be_bytes();
        // 0x06 = locally administered, unicast, distinct prefix.
        MacAddr([0x06, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Whether the group (multicast) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// The raw bytes.
    pub fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error parsing a MAC address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bytes = [0u8; 6];
        let mut count = 0;
        for part in s.split([':', '-']) {
            if count >= 6 {
                return Err(ParseMacError);
            }
            bytes[count] = u8::from_str_radix(part, 16).map_err(|_| ParseMacError)?;
            count += 1;
        }
        if count != 6 {
            return Err(ParseMacError);
        }
        Ok(MacAddr(bytes))
    }
}

/// Well-known EtherType values used by the cyber range.
pub mod ethertype {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// IEC 61850 GOOSE.
    pub const GOOSE: u16 = 0x88b8;
    /// IEC 61850 Sampled Values.
    pub const SV: u16 = 0x88ba;
    /// 802.1Q VLAN tag.
    pub const VLAN: u16 = 0x8100;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let mac: MacAddr = "00:1A-2b:3C:4d:5E".parse().unwrap();
        assert_eq!(mac.to_string(), "00:1a:2b:3c:4d:5e");
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("zz:11:22:33:44:55".parse::<MacAddr>().is_err());
    }

    #[test]
    fn multicast_detection() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::goose_multicast(1).is_multicast());
        assert!(!MacAddr::from_index(5).is_multicast());
    }

    #[test]
    fn deterministic_indexing() {
        assert_eq!(MacAddr::from_index(7), MacAddr::from_index(7));
        assert_ne!(MacAddr::from_index(7), MacAddr::from_index(8));
    }

    #[test]
    fn goose_mac_shape() {
        let mac = MacAddr::goose_multicast(0x0102);
        assert_eq!(mac.octets(), [0x01, 0x0c, 0xcd, 0x01, 0x01, 0x02]);
    }
}
