//! The application trait hosted on emulated nodes and its context API.

use crate::addr::{Ipv4Addr, MacAddr};
use crate::frame::EthernetFrame;
use crate::host::ConnId;
use crate::sim::{Network, NodeId};
use crate::time::{SimDuration, SimTime};

/// The simulation plane an application's wall time is attributed to by
/// per-step profiling (`step.plane.*` histograms).
///
/// Every dispatch into a [`SocketApp`] — timers, socket events, raw frames —
/// is timed against the app's declared plane while the network's telemetry
/// is enabled; the range's step loop turns the accumulated nanoseconds into
/// per-plane attribution histograms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AppPlane {
    /// Virtual IEDs: IEC 61850 servers, measurement sampling, protection.
    Ied,
    /// PLC scan cycles and control logic.
    Plc,
    /// SCADA/HMI masters, polling, and housekeeping.
    Scada,
    /// Everything else (attack tooling, test fixtures, ad-hoc apps).
    #[default]
    Other,
}

impl AppPlane {
    /// Number of planes (the length of a per-plane accumulator array).
    pub const COUNT: usize = 4;

    /// A stable dense index for per-plane accumulator arrays.
    pub fn index(self) -> usize {
        match self {
            AppPlane::Ied => 0,
            AppPlane::Plc => 1,
            AppPlane::Scada => 2,
            AppPlane::Other => 3,
        }
    }

    /// The plane's name as used in `step.plane.<name>_seconds` metrics.
    pub fn name(self) -> &'static str {
        match self {
            AppPlane::Ied => "ied",
            AppPlane::Plc => "plc",
            AppPlane::Scada => "scada",
            AppPlane::Other => "other",
        }
    }
}

/// An application running on an emulated host (virtual IED, PLC, SCADA,
/// attacker tool, …).
///
/// All methods have no-op defaults; implement the ones the application needs.
/// Methods receive a [`HostCtx`] giving access to the host's sockets, timers,
/// and raw frame transmission. Everything is driven by the deterministic
/// event loop — there are no threads and no wall-clock time.
#[allow(unused_variables)]
pub trait SocketApp: Send {
    /// The plane this app's execution time is attributed to in per-step
    /// profiling. Defaults to [`AppPlane::Other`].
    fn plane(&self) -> AppPlane {
        AppPlane::Other
    }

    /// Called once when the simulation starts (or when the app is attached).
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {}

    /// A timer set via [`HostCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {}

    /// A UDP datagram arrived on a bound port.
    fn on_udp(&mut self, ctx: &mut HostCtx<'_>, src: (Ipv4Addr, u16), dst_port: u16, data: &[u8]) {}

    /// An outbound TCP connection completed its handshake.
    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {}

    /// An inbound TCP connection was accepted on a listening port.
    fn on_tcp_accepted(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, peer: (Ipv4Addr, u16)) {}

    /// In-order TCP data arrived.
    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, data: &[u8]) {}

    /// A TCP connection closed (FIN exchange completed or RST received).
    fn on_tcp_closed(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {}

    /// A frame arrived at this host's port. Called for frames addressed to
    /// the host (unicast/broadcast/multicast) and, when promiscuous mode is
    /// on, for every frame on the wire. GOOSE/SV subscribers and sniffers
    /// live here.
    fn on_raw_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {}

    /// An IPv4 packet addressed to this host's MAC but a *different* IP
    /// address arrived, and transit delivery is enabled: the
    /// man-in-the-middle position. The app decides whether to forward,
    /// modify, or drop.
    fn on_transit_ip(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {}
}

/// Handle given to applications for interacting with their host and network.
pub struct HostCtx<'a> {
    pub(crate) net: &'a mut Network,
    pub(crate) node: NodeId,
}

impl<'a> HostCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// This host's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This host's name.
    pub fn name(&self) -> &str {
        self.net.node_name(self.node)
    }

    /// This host's IPv4 address.
    pub fn ip(&self) -> Ipv4Addr {
        self.net.host_ip(self.node)
    }

    /// This host's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.net.host_mac(self.node)
    }

    /// Binds a UDP port so datagrams to it are delivered to the app.
    pub fn bind_udp(&mut self, port: u16) {
        self.net.host_bind_udp(self.node, port);
    }

    /// Sends a UDP datagram (ARP resolution happens automatically).
    pub fn send_udp(&mut self, dst: Ipv4Addr, dst_port: u16, src_port: u16, data: &[u8]) {
        self.net
            .host_send_udp(self.node, dst, dst_port, src_port, data);
    }

    /// Starts listening for TCP connections on a port.
    pub fn tcp_listen(&mut self, port: u16) {
        self.net.host_tcp_listen(self.node, port);
    }

    /// Opens a TCP connection; completion is signalled via
    /// [`SocketApp::on_tcp_connected`].
    pub fn tcp_connect(&mut self, dst: Ipv4Addr, dst_port: u16) -> ConnId {
        self.net.host_tcp_connect(self.node, dst, dst_port)
    }

    /// Sends bytes on an established connection.
    pub fn tcp_send(&mut self, conn: ConnId, data: &[u8]) {
        self.net.host_tcp_send(self.node, conn, data);
    }

    /// Closes a connection (orderly FIN).
    pub fn tcp_close(&mut self, conn: ConnId) {
        self.net.host_tcp_close(self.node, conn);
    }

    /// Transmits a raw Ethernet frame out of the host's port.
    pub fn send_frame(&mut self, frame: EthernetFrame) {
        self.net.host_send_frame(self.node, frame);
    }

    /// Schedules [`SocketApp::on_timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.net.host_set_timer(self.node, delay, token);
    }

    /// Enables or disables promiscuous frame delivery.
    pub fn set_promiscuous(&mut self, on: bool) {
        self.net.host_set_promiscuous(self.node, on);
    }

    /// Enables or disables transit-IP delivery (the MITM hook).
    pub fn set_deliver_transit(&mut self, on: bool) {
        self.net.host_set_deliver_transit(self.node, on);
    }

    /// The trace context that caused the event currently being dispatched,
    /// if any.
    ///
    /// Set automatically while a received frame (and everything it triggers
    /// synchronously — UDP/TCP delivery, raw-frame taps) is being processed,
    /// so spans opened by the app are parented to the span that sent the
    /// frame. `None` for timer-driven callbacks, which are causal roots.
    pub fn trace_parent(&self) -> Option<sgcr_obs::TraceCtx> {
        self.net.ambient_ctx
    }

    /// Overrides the ambient trace context for the rest of this dispatch.
    ///
    /// Frames transmitted afterwards (via [`HostCtx::send_frame`],
    /// [`HostCtx::tcp_send`], …) carry `ctx` as their causal parent instead
    /// of the inherited one. The override is cleared automatically when the
    /// current event finishes dispatching.
    pub fn set_trace_parent(&mut self, ctx: Option<sgcr_obs::TraceCtx>) {
        self.net.ambient_ctx = ctx;
    }

    /// The tracer shared by this network's telemetry hub (disabled when
    /// tracing is off; spans opened on a disabled tracer cost nothing).
    pub fn tracer(&self) -> sgcr_obs::Tracer {
        self.net.tracer().clone()
    }

    /// Inserts an entry into this host's ARP cache.
    pub fn arp_insert(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.net.host_arp_insert(self.node, ip, mac);
    }

    /// Looks up this host's ARP cache.
    pub fn arp_lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.net.host_arp_lookup(self.node, ip)
    }
}
