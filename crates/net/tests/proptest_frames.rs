//! Property tests on the packet codecs: roundtrips and decoder robustness
//! (the emulator parses whatever attackers put on the wire).

use bytes::Bytes;
use proptest::prelude::*;
use sgcr_net::{
    ArpPacket, EthernetFrame, Ipv4Addr, Ipv4Packet, MacAddr, TcpFlags, TcpSegment, UdpDatagram,
};

fn mac_strategy() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn ip_strategy() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|b| Ipv4Addr::new(b[0], b[1], b[2], b[3]))
}

proptest! {
    #[test]
    fn ethernet_roundtrip(
        dst in mac_strategy(),
        src in mac_strategy(),
        ethertype in any::<u16>().prop_filter("not vlan tpid", |e| *e != 0x8100),
        vlan in proptest::option::of(0u16..4096),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut frame = EthernetFrame::new(dst, src, ethertype, payload);
        frame.vlan = vlan;
        let wire = frame.encode();
        prop_assert_eq!(EthernetFrame::decode(&wire), Some(frame));
    }

    #[test]
    fn ethernet_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = EthernetFrame::decode(&bytes);
    }

    #[test]
    fn arp_roundtrip(
        op in 1u16..3,
        sender_mac in mac_strategy(),
        sender_ip in ip_strategy(),
        target_mac in mac_strategy(),
        target_ip in ip_strategy(),
    ) {
        let packet = ArpPacket {
            operation: op,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        };
        prop_assert_eq!(ArpPacket::decode(&packet.encode()), Some(packet));
    }

    #[test]
    fn ipv4_roundtrip(
        src in ip_strategy(),
        dst in ip_strategy(),
        protocol in any::<u8>(),
        ttl in 1u8..255,
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut packet = Ipv4Packet::new(src, dst, protocol, payload);
        packet.ttl = ttl;
        let wire = packet.encode();
        prop_assert_eq!(Ipv4Packet::decode(&wire), Some(packet));
    }

    #[test]
    fn ipv4_detects_any_single_header_corruption(
        src in ip_strategy(),
        dst in ip_strategy(),
        byte in 0usize..20,
        flip in 1u8..=255,
    ) {
        let packet = Ipv4Packet::new(src, dst, 17, vec![1, 2, 3]);
        let mut wire = packet.encode();
        wire[byte] ^= flip;
        // Either the checksum rejects it, or (for some fields like total
        // length shrink) parsing changes the payload — but it must never
        // return the original packet with a corrupted header byte.
        if let Some(decoded) = Ipv4Packet::decode(&wire) {
            prop_assert_ne!(decoded.encode(), packet.encode());
        }
    }

    #[test]
    fn udp_roundtrip(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let dgram = UdpDatagram {
            src_port,
            dst_port,
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(UdpDatagram::decode(&dgram.encode()), Some(dgram));
    }

    #[test]
    fn tcp_roundtrip(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        syn in any::<bool>(),
        ack_flag in any::<bool>(),
        fin in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let segment = TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags { syn, ack: ack_flag, fin, rst: false, psh: false },
            window,
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(TcpSegment::decode(&segment.encode()), Some(segment));
    }

    #[test]
    fn transport_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = UdpDatagram::decode(&bytes);
        let _ = TcpSegment::decode(&bytes);
        let _ = ArpPacket::decode(&bytes);
        let _ = Ipv4Packet::decode(&bytes);
    }
}
