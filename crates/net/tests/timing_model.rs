//! Timing-model tests: propagation latency, serialization delay, per-link
//! FIFO queueing, and simulated-time determinism of deliveries.

use parking_lot::Mutex;
use sgcr_net::{
    ethertype, EthernetFrame, HostCtx, Ipv4Addr, LinkSpec, MacAddr, Network, SimDuration, SimTime,
    SocketApp,
};
use std::sync::Arc;

/// Sends raw frames at t=0 and records nothing (the receiver records).
struct BurstSender {
    frames: Vec<EthernetFrame>,
}

impl SocketApp for BurstSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        for frame in self.frames.drain(..) {
            ctx.send_frame(frame);
        }
    }
}

/// Records arrival times of raw frames.
struct ArrivalLogger {
    arrivals: Arc<Mutex<Vec<(u64, usize)>>>,
}

impl SocketApp for ArrivalLogger {
    fn on_raw_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
        self.arrivals
            .lock()
            .push((ctx.now().as_nanos(), frame.payload.len()));
    }
}

type Arrivals = Arc<Mutex<Vec<(u64, usize)>>>;

fn direct_pair(spec: LinkSpec) -> (Network, Arrivals, MacAddr) {
    let mut net = Network::new();
    let a = net.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
    let b = net.add_host("b", Ipv4Addr::new(10, 0, 0, 2));
    net.connect(a, b, spec);
    let arrivals: Arc<Mutex<Vec<(u64, usize)>>> = Arc::default();
    let dst = net.host_mac(b);
    net.attach_app(
        b,
        Box::new(ArrivalLogger {
            arrivals: arrivals.clone(),
        }),
    );
    (net, arrivals, dst)
}

#[test]
fn propagation_plus_serialization() {
    // 1 Mbit/s link, 1 ms latency: a 1000-byte payload frame is
    // 1018 wire bytes = 8144 bits → 8.144 ms serialization + 1 ms latency.
    let spec = LinkSpec {
        latency: SimDuration::from_millis(1),
        rate_bps: 1_000_000,
    };
    let (mut net, arrivals, dst) = direct_pair(spec);
    let a = net.node_by_name("a").unwrap();
    let src = net.host_mac(a);
    net.attach_app(
        a,
        Box::new(BurstSender {
            frames: vec![EthernetFrame::new(
                dst,
                src,
                ethertype::IPV4,
                vec![0u8; 1000],
            )],
        }),
    );
    net.run_until(SimTime::from_millis(50));
    let arrivals = arrivals.lock();
    assert_eq!(arrivals.len(), 1);
    let expected_ns = 1_000_000 + (1018 * 8) as u64 * 1000; // latency + bits·(ns/bit)
    assert_eq!(arrivals[0].0, expected_ns);
}

#[test]
fn back_to_back_frames_are_spaced_by_serialization_time() {
    let spec = LinkSpec {
        latency: SimDuration::from_micros(100),
        rate_bps: 10_000_000, // 10 Mbit/s
    };
    let (mut net, arrivals, dst) = direct_pair(spec);
    let a = net.node_by_name("a").unwrap();
    let src = net.host_mac(a);
    // Three 500-byte-payload frames queued at t=0.
    let frame = EthernetFrame::new(dst, src, ethertype::IPV4, vec![0u8; 500]);
    net.attach_app(
        a,
        Box::new(BurstSender {
            frames: vec![frame.clone(), frame.clone(), frame],
        }),
    );
    net.run_until(SimTime::from_millis(20));
    let arrivals = arrivals.lock();
    assert_eq!(arrivals.len(), 3);
    // Wire size 518 bytes → 4144 bits → 414.4 µs at 10 Mbit/s.
    let ser_ns = (518 * 8) as u64 * 100; // bits · (ns per bit at 10 Mb/s)
    assert_eq!(
        arrivals[1].0 - arrivals[0].0,
        ser_ns,
        "FIFO spacing = serialization"
    );
    assert_eq!(arrivals[2].0 - arrivals[1].0, ser_ns);
    // First arrival = serialization + latency.
    assert_eq!(arrivals[0].0, ser_ns + 100_000);
}

#[test]
fn directions_do_not_queue_against_each_other() {
    // Full duplex: simultaneous opposite-direction frames arrive at the
    // same time, not serialized against each other.
    let spec = LinkSpec {
        latency: SimDuration::from_micros(50),
        rate_bps: 1_000_000,
    };
    let mut net = Network::new();
    let a = net.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
    let b = net.add_host("b", Ipv4Addr::new(10, 0, 0, 2));
    net.connect(a, b, spec);
    let log_a: Arc<Mutex<Vec<(u64, usize)>>> = Arc::default();
    let log_b: Arc<Mutex<Vec<(u64, usize)>>> = Arc::default();
    let mac_a = net.host_mac(a);
    let mac_b = net.host_mac(b);

    struct SendAndLog {
        frame: EthernetFrame,
        arrivals: Arc<Mutex<Vec<(u64, usize)>>>,
    }
    impl SocketApp for SendAndLog {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.send_frame(self.frame.clone());
        }
        fn on_raw_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
            self.arrivals
                .lock()
                .push((ctx.now().as_nanos(), frame.payload.len()));
        }
    }
    net.attach_app(
        a,
        Box::new(SendAndLog {
            frame: EthernetFrame::new(mac_b, mac_a, ethertype::IPV4, vec![1u8; 200]),
            arrivals: log_a.clone(),
        }),
    );
    net.attach_app(
        b,
        Box::new(SendAndLog {
            frame: EthernetFrame::new(mac_a, mac_b, ethertype::IPV4, vec![2u8; 200]),
            arrivals: log_b.clone(),
        }),
    );
    net.run_until(SimTime::from_millis(10));
    let ta = log_a.lock()[0].0;
    let tb = log_b.lock()[0].0;
    assert_eq!(ta, tb, "full-duplex directions are independent");
}
