//! End-to-end attack tests on the emulated network: FCI against a virtual
//! IED, ARP-spoof MITM between a SCADA poller and a Modbus server, and a
//! network scan.

use sgcr_attack::{
    CaptureSummary, FciAttackApp, FciPlan, MitmApp, MitmPlan, ProtocolClass, ScanPlan, ScannerApp,
    Transform,
};
use sgcr_ied::{BreakerMap, IedSpec, VirtualIedApp};
use sgcr_kvstore::{ProcessStore, Value};
use sgcr_modbus::{ModbusServerApp, SharedRegisters};
use sgcr_net::{Ipv4Addr, LinkSpec, Network, SimTime};
use sgcr_scada::{ScadaApp, ScadaConfig};

fn ied_spec() -> IedSpec {
    let mut spec = IedSpec::new("GIED1", "S1");
    spec.breakers.push(BreakerMap {
        name: "CB1".into(),
        xcbr: "XCBR1".into(),
        cswi: "CSWI1".into(),
        state_key: "meas/S1/cb/CB1/closed".into(),
        cmd_key: "cmd/S1/cb/CB1/close".into(),
        interlocked: false,
    });
    spec
}

#[test]
fn fci_opens_breaker_through_forged_mms_command() {
    let store = ProcessStore::new();
    store.set("meas/S1/cb/CB1/closed", Value::Bool(true));

    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let ied = net.add_host("ied", Ipv4Addr::new(10, 0, 0, 1));
    let compromised = net.add_host("engineering-ws", Ipv4Addr::new(10, 0, 0, 66));
    net.connect(ied, sw, LinkSpec::default());
    net.connect(compromised, sw, LinkSpec::default());

    let (ied_app, ied_handle) = VirtualIedApp::new(ied_spec(), store.clone());
    net.attach_app(ied, Box::new(ied_app));

    let (attack, report) = FciAttackApp::new(FciPlan {
        victim: Ipv4Addr::new(10, 0, 0, 1),
        item: "GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
        value: false, // open the breaker
        at_ms: 500,
        interrogate: true,
    });
    net.attach_app(compromised, Box::new(attack));

    net.run_until(SimTime::from_millis(1500));

    let report = report.lock().clone();
    assert_eq!(
        report.command_accepted,
        Some(true),
        "victim accepted the forged command"
    );
    assert!(
        !report.discovered_items.is_empty(),
        "recon phase listed the data model"
    );
    assert!(report
        .discovered_items
        .iter()
        .any(|i| i.contains("CSWI1$CO$Pos$Oper$ctlVal")));
    // The breaker command reached the process side.
    assert_eq!(store.get_bool("cmd/S1/cb/CB1/close"), Some(false));
    assert_eq!(
        ied_handle
            .events_of(sgcr_ied::IedEventKind::ControlExecuted)
            .len(),
        1
    );
}

/// Builds SCADA ↔ Modbus-server topology with an attacker on the same switch.
fn mitm_testbed(
    plan: MitmPlan,
) -> (
    Network,
    SharedRegisters,
    sgcr_scada::ScadaHandle,
    sgcr_attack::MitmHandle,
) {
    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let plc = net.add_host("plc", Ipv4Addr::new(10, 0, 0, 1));
    let hmi = net.add_host("hmi", Ipv4Addr::new(10, 0, 0, 2));
    let attacker = net.add_host("attacker", Ipv4Addr::new(10, 0, 0, 99));
    for h in [plc, hmi, attacker] {
        net.connect(h, sw, LinkSpec::default());
    }
    let registers = SharedRegisters::with_size(16);
    net.attach_app(plc, Box::new(ModbusServerApp::new(registers.clone())));
    let config = ScadaConfig::parse(
        r#"<ScadaConfig name="hmi">
  <DataSource name="PLC" type="MODBUS" ip="10.0.0.1" pollMs="200">
    <Point name="P_line" kind="input" address="0"/>
  </DataSource>
</ScadaConfig>"#,
    )
    .unwrap();
    let (scada, handle) = ScadaApp::new(config);
    net.attach_app(hmi, Box::new(scada));
    let (mitm, mitm_handle) = MitmApp::new(plan);
    net.attach_app(attacker, Box::new(mitm));
    (net, registers, handle, mitm_handle)
}

#[test]
fn mitm_rewrites_measurements_seen_by_scada() {
    let (mut net, registers, scada, mitm) = mitm_testbed(MitmPlan {
        victim_a: Ipv4Addr::new(10, 0, 0, 2), // HMI
        victim_b: Ipv4Addr::new(10, 0, 0, 1), // PLC
        start_ms: 1000,
        stop_ms: u64::MAX,
        transform: Transform::ScaleModbusRegisters(10.0),
    });
    // True value: 42.
    registers.set_input(0, 42);

    // Before the attack: SCADA sees the truth.
    net.run_until(SimTime::from_millis(900));
    assert_eq!(scada.tag_value("P_line"), Some(42.0));

    // Attack active: SCADA sees the manipulated value; truth unchanged.
    net.run_until(SimTime::from_millis(3000));
    assert_eq!(
        scada.tag_value("P_line"),
        Some(420.0),
        "HMI displays the falsified measurement"
    );
    let report = mitm.lock().clone();
    assert!(report.position_established);
    assert!(report.modified > 0, "responses were rewritten in flight");
}

#[test]
fn mitm_passthrough_is_transparent() {
    let (mut net, registers, scada, mitm) = mitm_testbed(MitmPlan {
        victim_a: Ipv4Addr::new(10, 0, 0, 2),
        victim_b: Ipv4Addr::new(10, 0, 0, 1),
        start_ms: 500,
        stop_ms: u64::MAX,
        transform: Transform::PassThrough,
    });
    registers.set_input(0, 77);
    net.run_until(SimTime::from_millis(3000));
    // Interception is invisible at the application layer.
    assert_eq!(scada.tag_value("P_line"), Some(77.0));
    let report = mitm.lock().clone();
    assert!(report.forwarded > 0, "traffic flowed through the attacker");
    assert_eq!(report.modified, 0);
}

#[test]
fn mitm_stop_repairs_the_path() {
    let (mut net, registers, scada, _mitm) = mitm_testbed(MitmPlan {
        victim_a: Ipv4Addr::new(10, 0, 0, 2),
        victim_b: Ipv4Addr::new(10, 0, 0, 1),
        start_ms: 500,
        stop_ms: 2000,
        transform: Transform::ScaleModbusRegisters(100.0),
    });
    registers.set_input(0, 5);
    net.run_until(SimTime::from_millis(1500));
    assert_eq!(scada.tag_value("P_line"), Some(500.0), "during attack");
    net.run_until(SimTime::from_millis(4000));
    assert_eq!(
        scada.tag_value("P_line"),
        Some(5.0),
        "after repair SCADA sees the truth again"
    );
}

#[test]
fn scanner_discovers_hosts_and_ports() {
    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let ied = net.add_host("ied", Ipv4Addr::new(10, 0, 0, 1));
    let plc = net.add_host("plc", Ipv4Addr::new(10, 0, 0, 2));
    let attacker = net.add_host("attacker", Ipv4Addr::new(10, 0, 0, 99));
    for h in [ied, plc, attacker] {
        net.connect(h, sw, LinkSpec::default());
    }
    let store = ProcessStore::new();
    let (ied_app, _) = VirtualIedApp::new(ied_spec(), store);
    net.attach_app(ied, Box::new(ied_app));
    let registers = SharedRegisters::with_size(8);
    net.attach_app(plc, Box::new(ModbusServerApp::new(registers)));

    let (scanner, report) = ScannerApp::new(ScanPlan {
        first: Ipv4Addr::new(10, 0, 0, 1),
        last: Ipv4Addr::new(10, 0, 0, 10),
        ports: vec![102, 502],
        probe_interval: sgcr_net::SimDuration::from_millis(20),
    });
    net.attach_app(attacker, Box::new(scanner));
    net.run_until(SimTime::from_secs(5));

    let report = report.lock().clone();
    assert!(report.finished);
    assert_eq!(
        report.hosts.len(),
        2,
        "both live hosts found: {:?}",
        report.hosts
    );
    assert_eq!(
        report.open_ports.get(&Ipv4Addr::new(10, 0, 0, 1)),
        Some(&vec![102]),
        "IED exposes MMS"
    );
    assert_eq!(
        report.open_ports.get(&Ipv4Addr::new(10, 0, 0, 2)),
        Some(&vec![502]),
        "PLC exposes Modbus"
    );
}

#[test]
fn capture_classifies_attack_traffic() {
    let store = ProcessStore::new();
    store.set("meas/S1/cb/CB1/closed", Value::Bool(true));
    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let ied = net.add_host("ied", Ipv4Addr::new(10, 0, 0, 1));
    let attacker = net.add_host("attacker", Ipv4Addr::new(10, 0, 0, 66));
    net.connect(ied, sw, LinkSpec::default());
    net.connect(attacker, sw, LinkSpec::default());
    net.enable_capture(ied);
    let (ied_app, _) = VirtualIedApp::new(ied_spec(), store);
    net.attach_app(ied, Box::new(ied_app));
    let (attack, _) = FciAttackApp::new(FciPlan {
        victim: Ipv4Addr::new(10, 0, 0, 1),
        item: "GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
        value: false,
        at_ms: 200,
        interrogate: false,
    });
    net.attach_app(attacker, Box::new(attack));
    net.run_until(SimTime::from_millis(1000));

    let summary = CaptureSummary::of(net.captured(ied));
    assert!(summary.count(ProtocolClass::Mms) > 0, "{summary}");
    assert!(summary.count(ProtocolClass::Arp) > 0, "{summary}");
}
