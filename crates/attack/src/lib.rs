#![warn(missing_docs)]

//! # sgcr-attack
//!
//! The attack toolkit for the smart grid cyber range — the offensive
//! tooling for the paper's §IV-B case studies, for use inside the emulated
//! network only.
//!
//! * [`FciAttackApp`] — **False Command Injection**: a standard-compliant
//!   MMS client (the paper's IEC61850bean stand-in) issuing forged breaker
//!   controls from a compromised node;
//! * [`MitmApp`] — **ARP-spoofing man-in-the-middle**: poisons two victims,
//!   transparently forwards their traffic, and applies length-preserving
//!   payload rewrites (false data injection on measurements — Figure 6);
//! * [`ScannerApp`] — ARP sweep + TCP port probe (Nmap-style recon);
//! * [`CaptureSummary`] — protocol classification of captured traffic.
//!
//! All tools run as regular [`sgcr_net::SocketApp`]s on emulated hosts:
//! experiments attach them to any node, exactly as the paper attaches
//! penetration-testing tools to cyber range nodes.

mod capture;
mod fci;
mod mitm;
mod scan;

pub use capture::{classify, CaptureSummary, ProtocolClass};
pub use fci::{FciAttackApp, FciHandle, FciPlan, FciReport};
pub use mitm::{MitmApp, MitmHandle, MitmPlan, MitmReport, Transform};
pub use scan::{ScanHandle, ScanPlan, ScanReport, ScannerApp};
