//! Traffic capture analysis: classify captured frames by smart grid
//! protocol, for experiment reporting and intrusion-detection exercises.

use sgcr_net::{
    ethertype, ipproto, CapturedFrame, EthernetFrame, Ipv4Packet, TcpSegment, UdpDatagram,
};
use std::collections::BTreeMap;

/// Protocols the classifier recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtocolClass {
    /// ARP.
    Arp,
    /// IEC 61850 GOOSE (L2 multicast).
    Goose,
    /// IEC 61850 Sampled Values (L2 multicast).
    Sv,
    /// MMS over TPKT/TCP (port 102).
    Mms,
    /// Modbus TCP (port 502).
    Modbus,
    /// R-GOOSE / R-SV session over UDP 102.
    RGoose,
    /// Other TCP traffic.
    OtherTcp,
    /// Other UDP traffic.
    OtherUdp,
    /// Anything else.
    Other,
}

impl std::fmt::Display for ProtocolClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProtocolClass::Arp => "ARP",
            ProtocolClass::Goose => "GOOSE",
            ProtocolClass::Sv => "SV",
            ProtocolClass::Mms => "MMS",
            ProtocolClass::Modbus => "Modbus",
            ProtocolClass::RGoose => "R-GOOSE/R-SV",
            ProtocolClass::OtherTcp => "TCP",
            ProtocolClass::OtherUdp => "UDP",
            ProtocolClass::Other => "other",
        };
        write!(f, "{s}")
    }
}

/// Classifies one frame.
pub fn classify(frame: &EthernetFrame) -> ProtocolClass {
    match frame.ethertype {
        ethertype::ARP => ProtocolClass::Arp,
        ethertype::GOOSE => ProtocolClass::Goose,
        ethertype::SV => ProtocolClass::Sv,
        ethertype::IPV4 => {
            let Some(packet) = Ipv4Packet::decode(&frame.payload) else {
                return ProtocolClass::Other;
            };
            match packet.protocol {
                ipproto::TCP => match TcpSegment::decode(&packet.payload) {
                    Some(segment) => {
                        if segment.src_port == 102 || segment.dst_port == 102 {
                            ProtocolClass::Mms
                        } else if segment.src_port == 502 || segment.dst_port == 502 {
                            ProtocolClass::Modbus
                        } else {
                            ProtocolClass::OtherTcp
                        }
                    }
                    None => ProtocolClass::OtherTcp,
                },
                ipproto::UDP => match UdpDatagram::decode(&packet.payload) {
                    Some(dgram) if dgram.src_port == 102 || dgram.dst_port == 102 => {
                        ProtocolClass::RGoose
                    }
                    Some(_) => ProtocolClass::OtherUdp,
                    None => ProtocolClass::OtherUdp,
                },
                _ => ProtocolClass::Other,
            }
        }
        _ => ProtocolClass::Other,
    }
}

/// A per-protocol frame count summary of a capture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CaptureSummary {
    /// Frame counts by protocol.
    pub counts: BTreeMap<ProtocolClass, u64>,
    /// Total frames.
    pub total: u64,
}

impl CaptureSummary {
    /// Summarizes a capture buffer.
    pub fn of(frames: &[CapturedFrame]) -> CaptureSummary {
        let mut summary = CaptureSummary::default();
        for captured in frames {
            *summary.counts.entry(classify(&captured.frame)).or_default() += 1;
            summary.total += 1;
        }
        summary
    }

    /// Count for one protocol.
    pub fn count(&self, class: ProtocolClass) -> u64 {
        self.counts.get(&class).copied().unwrap_or(0)
    }
}

impl std::fmt::Display for CaptureSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} frames:", self.total)?;
        for (class, count) in &self.counts {
            write!(f, " {class}={count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgcr_net::MacAddr;

    fn tcp_frame(src_port: u16, dst_port: u16) -> EthernetFrame {
        let segment = TcpSegment {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: Default::default(),
            window: 1000,
            payload: bytes::Bytes::new(),
        };
        let packet = Ipv4Packet::new(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            ipproto::TCP,
            segment.encode(),
        );
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            ethertype::IPV4,
            packet.encode(),
        )
    }

    #[test]
    fn classification() {
        assert_eq!(classify(&tcp_frame(49152, 102)), ProtocolClass::Mms);
        assert_eq!(classify(&tcp_frame(502, 49152)), ProtocolClass::Modbus);
        assert_eq!(classify(&tcp_frame(1234, 80)), ProtocolClass::OtherTcp);
        let goose = EthernetFrame::new(
            MacAddr::goose_multicast(1),
            MacAddr::from_index(1),
            ethertype::GOOSE,
            vec![0u8; 16],
        );
        assert_eq!(classify(&goose), ProtocolClass::Goose);
        let arp = sgcr_net::ArpPacket::request(
            MacAddr::from_index(1),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
        )
        .into_frame(MacAddr::BROADCAST);
        assert_eq!(classify(&arp), ProtocolClass::Arp);
    }

    #[test]
    fn summary_counts() {
        let frames = vec![
            CapturedFrame {
                time: sgcr_net::SimTime::ZERO,
                frame: tcp_frame(49152, 102),
            },
            CapturedFrame {
                time: sgcr_net::SimTime::ZERO,
                frame: tcp_frame(49153, 102),
            },
            CapturedFrame {
                time: sgcr_net::SimTime::ZERO,
                frame: tcp_frame(49154, 502),
            },
        ];
        let summary = CaptureSummary::of(&frames);
        assert_eq!(summary.total, 3);
        assert_eq!(summary.count(ProtocolClass::Mms), 2);
        assert_eq!(summary.count(ProtocolClass::Modbus), 1);
        assert_eq!(summary.count(ProtocolClass::Goose), 0);
        assert!(summary.to_string().contains("MMS=2"));
    }
}
