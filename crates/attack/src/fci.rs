//! False Command Injection (FCI): the paper's first case study.
//!
//! *"Assuming that the attacker has compromised one of the nodes in the
//! system and run malwares like CrashOverride to transmit fake IEC 61850
//! MMS commands … running an IEC 61850 MMS client on a node in the cyber
//! range to emit standard-compliant command messages."*
//!
//! [`FciAttackApp`] is that standard-compliant MMS client: from any host it
//! connects to a victim IED, optionally interrogates it, and issues a forged
//! control (`Oper`) write at a scheduled time.

use parking_lot::Mutex;
use sgcr_iec61850::{DataValue, MmsClient, MmsPdu, MmsRequest, MmsResponse, MMS_PORT};
use sgcr_net::{ConnId, HostCtx, Ipv4Addr, SimDuration, SocketApp};
use std::sync::Arc;

/// Outcome of the injection, observable by the experiment harness.
#[derive(Debug, Clone, Default)]
pub struct FciReport {
    /// Names discovered during the (optional) interrogation phase.
    pub discovered_items: Vec<String>,
    /// Whether the forged control was accepted by the victim.
    pub command_accepted: Option<bool>,
    /// Time (sim ms) the command response arrived.
    pub completed_at_ms: Option<u64>,
}

/// Shared handle to the attack's progress.
pub type FciHandle = Arc<Mutex<FciReport>>;

/// The forged command to inject.
#[derive(Debug, Clone)]
pub struct FciPlan {
    /// Victim IED address.
    pub victim: Ipv4Addr,
    /// Control item to write (`GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal`).
    pub item: String,
    /// Forged value (`false` = open breaker).
    pub value: bool,
    /// When to fire, in simulation milliseconds.
    pub at_ms: u64,
    /// Whether to interrogate the server first (recon via getNameList).
    pub interrogate: bool,
}

const TOKEN_FIRE: u64 = 1;

/// The injection client application.
pub struct FciAttackApp {
    plan: FciPlan,
    client: MmsClient,
    conn: Option<ConnId>,
    report: FciHandle,
    write_invoke: Option<u32>,
}

impl FciAttackApp {
    /// Creates the attacker app and its observable report handle.
    pub fn new(plan: FciPlan) -> (FciAttackApp, FciHandle) {
        let report: FciHandle = Arc::default();
        (
            FciAttackApp {
                plan,
                client: MmsClient::new(),
                conn: None,
                report: report.clone(),
                write_invoke: None,
            },
            report,
        )
    }
}

impl SocketApp for FciAttackApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let conn = ctx.tcp_connect(self.plan.victim, MMS_PORT);
        self.conn = Some(conn);
    }

    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        let init = self.client.initiate();
        ctx.tcp_send(conn, &init);
        if self.plan.interrogate {
            let (_, wire) = self.client.request(MmsRequest::GetNameList {
                object_class: 0,
                domain: None,
            });
            ctx.tcp_send(conn, &wire);
        }
        // Schedule the strike.
        let now_ms = ctx.now().as_millis();
        let delay = self.plan.at_ms.saturating_sub(now_ms);
        ctx.set_timer(SimDuration::from_millis(delay), TOKEN_FIRE);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        if token != TOKEN_FIRE {
            return;
        }
        if let Some(conn) = self.conn {
            let (invoke_id, wire) = self.client.request(MmsRequest::Write {
                items: vec![self.plan.item.clone()],
                values: vec![DataValue::Bool(self.plan.value)],
            });
            self.write_invoke = Some(invoke_id);
            ctx.tcp_send(conn, &wire);
        }
    }

    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, _conn: ConnId, data: &[u8]) {
        for pdu in self.client.feed(data) {
            match pdu {
                MmsPdu::ConfirmedResponse {
                    invoke_id,
                    response,
                } => match response {
                    MmsResponse::GetNameList { identifiers, .. } => {
                        self.report.lock().discovered_items = identifiers;
                    }
                    MmsResponse::Write { results } if Some(invoke_id) == self.write_invoke => {
                        let mut report = self.report.lock();
                        report.command_accepted = Some(results[0].is_ok());
                        report.completed_at_ms = Some(ctx.now().as_millis());
                    }
                    _ => {}
                },
                MmsPdu::ConfirmedError { invoke_id, .. }
                    if Some(invoke_id) == self.write_invoke =>
                {
                    let mut report = self.report.lock();
                    report.command_accepted = Some(false);
                    report.completed_at_ms = Some(ctx.now().as_millis());
                }
                _ => {}
            }
        }
    }
}
