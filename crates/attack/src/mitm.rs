//! ARP-spoofing man-in-the-middle: the paper's second case study and
//! Figure 6.
//!
//! *"Typically man-in-the-middle (MITM) attack is mounted by using a
//! strategy called ARP spoofing. This confuses the mapping between a
//! device's logical (IP) address and physical address … the attacker could
//! possibly mislead the SCADA HMI or the PLC to confuse the plant control."*
//!
//! [`MitmApp`] resolves the two victims' real MAC addresses, poisons both
//! caches with unsolicited ARP replies, transparently forwards the
//! redirected traffic, and applies a length-preserving payload transform
//! (e.g. scaling measurement registers) while the attack window is open.
//! On stop it repairs the caches (re-ARP) and goes quiet.

use parking_lot::Mutex;
use sgcr_net::{
    ethertype, ipproto, ArpPacket, EthernetFrame, HostCtx, Ipv4Addr, Ipv4Packet, MacAddr,
    SimDuration, SocketApp, TcpSegment,
};
use std::sync::Arc;

/// The payload rewrite applied to intercepted traffic.
#[derive(Debug, Clone)]
pub enum Transform {
    /// Forward unmodified (pure interception / eavesdropping).
    PassThrough,
    /// Scale every register in Modbus *read input/holding register*
    /// responses by this factor (length-preserving).
    ScaleModbusRegisters(f64),
    /// Overwrite every register in Modbus read responses with a constant.
    SetModbusRegisters(u16),
    /// Scale every `Float` in MMS read responses by this factor
    /// (length-preserving: MMS floats are fixed 5-byte encodings).
    ScaleMmsFloats(f32),
    /// Drop matching traffic entirely (denial of visibility).
    Drop,
}

/// Statistics observable by the experiment harness.
#[derive(Debug, Clone, Default)]
pub struct MitmReport {
    /// Frames forwarded unmodified.
    pub forwarded: u64,
    /// Frames whose payload was rewritten.
    pub modified: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Whether both victims' MACs were resolved.
    pub position_established: bool,
}

/// Shared handle to the attack's statistics.
pub type MitmHandle = Arc<Mutex<MitmReport>>;

/// Attack plan for one MITM position.
#[derive(Debug, Clone)]
pub struct MitmPlan {
    /// First victim (e.g. the SCADA HMI).
    pub victim_a: Ipv4Addr,
    /// Second victim (e.g. the PLC or an IED).
    pub victim_b: Ipv4Addr,
    /// When to begin poisoning (sim ms).
    pub start_ms: u64,
    /// When to stop and repair (sim ms); `u64::MAX` = never.
    pub stop_ms: u64,
    /// The rewrite applied while active.
    pub transform: Transform,
}

const TOKEN_START: u64 = 1;
const TOKEN_POISON: u64 = 2;
const TOKEN_STOP: u64 = 3;
const POISON_PERIOD_MS: u64 = 500;

/// The MITM attacker application.
pub struct MitmApp {
    plan: MitmPlan,
    mac_a: Option<MacAddr>,
    mac_b: Option<MacAddr>,
    active: bool,
    report: MitmHandle,
}

impl MitmApp {
    /// Creates the attacker app and its statistics handle.
    pub fn new(plan: MitmPlan) -> (MitmApp, MitmHandle) {
        let report: MitmHandle = Arc::default();
        (
            MitmApp {
                plan,
                mac_a: None,
                mac_b: None,
                active: false,
                report: report.clone(),
            },
            report,
        )
    }

    fn poison(&self, ctx: &mut HostCtx<'_>) {
        let (Some(mac_a), Some(mac_b)) = (self.mac_a, self.mac_b) else {
            return;
        };
        let my_mac = ctx.mac();
        // Tell A that B's IP is at our MAC…
        let to_a = ArpPacket::reply(my_mac, self.plan.victim_b, mac_a, self.plan.victim_a);
        ctx.send_frame(to_a.into_frame(mac_a));
        // …and tell B that A's IP is at our MAC.
        let to_b = ArpPacket::reply(my_mac, self.plan.victim_a, mac_b, self.plan.victim_b);
        ctx.send_frame(to_b.into_frame(mac_b));
    }

    fn repair(&self, ctx: &mut HostCtx<'_>) {
        let (Some(mac_a), Some(mac_b)) = (self.mac_a, self.mac_b) else {
            return;
        };
        let my_mac = ctx.mac();
        // Restore the genuine mappings. The ARP payload claims the real
        // owners, but the *frame* source stays our MAC — otherwise the
        // switch would learn the victims' MACs on our port and blackhole
        // their traffic (exactly how real arpspoof performs its re-ARP).
        let to_a = ArpPacket::reply(mac_b, self.plan.victim_b, mac_a, self.plan.victim_a);
        ctx.send_frame(EthernetFrame::new(
            mac_a,
            my_mac,
            ethertype::ARP,
            to_a.encode(),
        ));
        let to_b = ArpPacket::reply(mac_a, self.plan.victim_a, mac_b, self.plan.victim_b);
        ctx.send_frame(EthernetFrame::new(
            mac_b,
            my_mac,
            ethertype::ARP,
            to_b.encode(),
        ));
    }

    fn transform_payload(&self, packet: &Ipv4Packet) -> Option<Vec<u8>> {
        // Only TCP payloads are rewritten; everything else passes through.
        if packet.protocol != ipproto::TCP {
            return None;
        }
        let segment = TcpSegment::decode(&packet.payload)?;
        if segment.payload.is_empty() {
            return None;
        }
        let rewritten = match &self.plan.transform {
            Transform::PassThrough | Transform::Drop => return None,
            Transform::ScaleModbusRegisters(factor) => {
                rewrite_modbus_registers(&segment.payload, |reg| {
                    ((f64::from(reg) * factor).clamp(0.0, 65535.0)) as u16
                })?
            }
            Transform::SetModbusRegisters(value) => {
                rewrite_modbus_registers(&segment.payload, |_| *value)?
            }
            Transform::ScaleMmsFloats(factor) => rewrite_mms_floats(&segment.payload, *factor)?,
        };
        let mut new_segment = segment.clone();
        new_segment.payload = rewritten.into();
        let mut new_packet = packet.clone();
        new_packet.payload = new_segment.encode().into();
        Some(new_packet.encode())
    }
}

/// Rewrites register words in Modbus read-response ADUs within a TCP stream
/// chunk. Returns `None` when the chunk is not a rewritable response.
fn rewrite_modbus_registers(stream: &[u8], f: impl Fn(u16) -> u16) -> Option<Vec<u8>> {
    // A chunk may contain several ADUs back to back.
    let mut out = stream.to_vec();
    let mut offset = 0usize;
    let mut touched = false;
    while offset + 9 <= out.len() {
        let length = u16::from_be_bytes([out[offset + 4], out[offset + 5]]) as usize;
        if length < 2 || offset + 6 + length > out.len() {
            break;
        }
        let fc = out[offset + 7];
        // Read holding (3) / input (4) register responses: fc, byte count,
        // then register words.
        if (fc == 3 || fc == 4) && length >= 3 {
            let byte_count = out[offset + 8] as usize;
            let data_start = offset + 9;
            if data_start + byte_count <= out.len() {
                for chunk_start in (data_start..data_start + byte_count).step_by(2) {
                    if chunk_start + 1 < out.len() {
                        let register = u16::from_be_bytes([out[chunk_start], out[chunk_start + 1]]);
                        let rewritten = f(register);
                        out[chunk_start..chunk_start + 2].copy_from_slice(&rewritten.to_be_bytes());
                        touched = true;
                    }
                }
            }
        }
        offset += 6 + length;
    }
    touched.then_some(out)
}

/// Rewrites MMS `Float` TLVs (tag 0x87, length 5, exponent byte 8) inside a
/// TPKT/MMS stream chunk — length-preserving.
fn rewrite_mms_floats(stream: &[u8], factor: f32) -> Option<Vec<u8>> {
    let mut out = stream.to_vec();
    let mut touched = false;
    let mut i = 0usize;
    while i + 7 <= out.len() {
        if out[i] == 0x87 && out[i + 1] == 0x05 && out[i + 2] == 0x08 {
            let value = f32::from_be_bytes([out[i + 3], out[i + 4], out[i + 5], out[i + 6]]);
            let rewritten = value * factor;
            out[i + 3..i + 7].copy_from_slice(&rewritten.to_be_bytes());
            touched = true;
            i += 7;
        } else {
            i += 1;
        }
    }
    touched.then_some(out)
}

impl SocketApp for MitmApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_deliver_transit(true);
        // Resolve the victims' true MACs before poisoning.
        let my_mac = ctx.mac();
        let my_ip = ctx.ip();
        for victim in [self.plan.victim_a, self.plan.victim_b] {
            let request = ArpPacket::request(my_mac, my_ip, victim);
            ctx.send_frame(request.into_frame(MacAddr::BROADCAST));
        }
        let now_ms = ctx.now().as_millis();
        ctx.set_timer(
            SimDuration::from_millis(self.plan.start_ms.saturating_sub(now_ms).max(10)),
            TOKEN_START,
        );
        if self.plan.stop_ms != u64::MAX {
            ctx.set_timer(
                SimDuration::from_millis(self.plan.stop_ms.saturating_sub(now_ms)),
                TOKEN_STOP,
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        match token {
            TOKEN_START => {
                self.active = true;
                self.report.lock().position_established =
                    self.mac_a.is_some() && self.mac_b.is_some();
                self.poison(ctx);
                ctx.set_timer(SimDuration::from_millis(POISON_PERIOD_MS), TOKEN_POISON);
            }
            TOKEN_POISON if self.active => {
                self.poison(ctx);
                ctx.set_timer(SimDuration::from_millis(POISON_PERIOD_MS), TOKEN_POISON);
            }
            TOKEN_STOP => {
                self.active = false;
                self.repair(ctx);
            }
            _ => {}
        }
    }

    fn on_raw_frame(&mut self, _ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
        // Learn victim MACs from their ARP replies to our resolution.
        if frame.ethertype == ethertype::ARP {
            if let Some(arp) = ArpPacket::decode(&frame.payload) {
                if arp.sender_ip == self.plan.victim_a {
                    self.mac_a = Some(arp.sender_mac);
                }
                if arp.sender_ip == self.plan.victim_b {
                    self.mac_b = Some(arp.sender_mac);
                }
            }
        }
    }

    fn on_transit_ip(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
        let Some(packet) = Ipv4Packet::decode(&frame.payload) else {
            return;
        };
        // Only the victims' conversation is interesting.
        let pair = (packet.src, packet.dst);
        let ours = pair == (self.plan.victim_a, self.plan.victim_b)
            || pair == (self.plan.victim_b, self.plan.victim_a);
        if !ours {
            return;
        }
        let dst_mac = if packet.dst == self.plan.victim_a {
            self.mac_a
        } else {
            self.mac_b
        };
        let Some(dst_mac) = dst_mac else {
            return;
        };
        if self.active && matches!(self.plan.transform, Transform::Drop) {
            self.report.lock().dropped += 1;
            return;
        }
        let payload = if self.active {
            self.transform_payload(&packet)
        } else {
            None
        };
        let (bytes, modified) = match payload {
            Some(rewritten) => (rewritten, true),
            None => (frame.payload.to_vec(), false),
        };
        let out = EthernetFrame::new(dst_mac, ctx.mac(), ethertype::IPV4, bytes);
        ctx.send_frame(out);
        let mut report = self.report.lock();
        if modified {
            report.modified += 1;
        } else {
            report.forwarded += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modbus_rewrite_scales_registers() {
        // Build a fc=4 response ADU: tid=1, unit=1, [4, 4, regs 100, 200].
        let mut adu = Vec::new();
        adu.extend_from_slice(&1u16.to_be_bytes());
        adu.extend_from_slice(&[0, 0]);
        adu.extend_from_slice(&7u16.to_be_bytes()); // unit + fc + count + 4 bytes
        adu.push(1);
        adu.push(4);
        adu.push(4);
        adu.extend_from_slice(&100u16.to_be_bytes());
        adu.extend_from_slice(&200u16.to_be_bytes());
        let rewritten = rewrite_modbus_registers(&adu, |r| r * 3).unwrap();
        assert_eq!(u16::from_be_bytes([rewritten[9], rewritten[10]]), 300);
        assert_eq!(u16::from_be_bytes([rewritten[11], rewritten[12]]), 600);
        // A write response (fc=6) is left alone.
        let mut write_adu = adu.clone();
        write_adu[7] = 6;
        assert!(rewrite_modbus_registers(&write_adu, |r| r * 3).is_none());
    }

    #[test]
    fn mms_float_rewrite_is_length_preserving() {
        let mut stream = vec![0x03, 0x00, 0x00, 0x0c]; // TPKT-ish prefix
        stream.push(0x87);
        stream.push(0x05);
        stream.push(0x08);
        stream.extend_from_slice(&2.5f32.to_be_bytes());
        let original_len = stream.len();
        let rewritten = rewrite_mms_floats(&stream, 2.0).unwrap();
        assert_eq!(rewritten.len(), original_len);
        let value = f32::from_be_bytes([rewritten[7], rewritten[8], rewritten[9], rewritten[10]]);
        assert_eq!(value, 5.0);
    }

    #[test]
    fn no_floats_no_rewrite() {
        assert!(rewrite_mms_floats(&[0xa1, 0x03, 0x02, 0x01, 0x05], 2.0).is_none());
        assert!(rewrite_modbus_registers(&[1, 2, 3], |r| r).is_none());
    }
}
