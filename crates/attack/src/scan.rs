//! Network reconnaissance: ARP host sweep + TCP port probe (the Nmap-style
//! tooling the paper notes users can run inside the range).

use parking_lot::Mutex;
use sgcr_net::{
    ethertype, ArpPacket, ConnId, EthernetFrame, HostCtx, Ipv4Addr, MacAddr, SimDuration, SocketApp,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Scan results: hosts discovered and their open TCP ports.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Discovered `(ip, mac)` pairs, in discovery order.
    pub hosts: Vec<(Ipv4Addr, MacAddr)>,
    /// Open ports per IP.
    pub open_ports: HashMap<Ipv4Addr, Vec<u16>>,
    /// Whether the scan has finished.
    pub finished: bool,
}

/// Shared handle to scan progress.
pub type ScanHandle = Arc<Mutex<ScanReport>>;

/// Scan plan: sweep `base.0 .. base.last` then probe `ports`.
#[derive(Debug, Clone)]
pub struct ScanPlan {
    /// First IP of the sweep (inclusive).
    pub first: Ipv4Addr,
    /// Last IP of the sweep (inclusive, same /24 expected).
    pub last: Ipv4Addr,
    /// TCP ports probed on every discovered host.
    pub ports: Vec<u16>,
    /// Gap between ARP probes.
    pub probe_interval: SimDuration,
}

const TOKEN_NEXT_ARP: u64 = 1;
const TOKEN_PORTS: u64 = 2;
const TOKEN_FINISH: u64 = 3;

/// The scanner application.
pub struct ScannerApp {
    plan: ScanPlan,
    next: u32,
    report: ScanHandle,
    conn_targets: HashMap<ConnId, (Ipv4Addr, u16)>,
}

impl ScannerApp {
    /// Creates the scanner and its report handle.
    pub fn new(plan: ScanPlan) -> (ScannerApp, ScanHandle) {
        let report: ScanHandle = Arc::default();
        let next = u32::from(plan.first);
        (
            ScannerApp {
                plan,
                next,
                report: report.clone(),
                conn_targets: HashMap::new(),
            },
            report,
        )
    }
}

impl SocketApp for ScannerApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.plan.probe_interval, TOKEN_NEXT_ARP);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        match token {
            TOKEN_NEXT_ARP => {
                let last = u32::from(self.plan.last);
                if self.next > last {
                    // Sweep done: probe ports on everything found.
                    ctx.set_timer(SimDuration::from_millis(50), TOKEN_PORTS);
                    return;
                }
                let target = Ipv4Addr::from(self.next);
                self.next += 1;
                if target != ctx.ip() {
                    let request = ArpPacket::request(ctx.mac(), ctx.ip(), target);
                    ctx.send_frame(request.into_frame(MacAddr::BROADCAST));
                }
                ctx.set_timer(self.plan.probe_interval, TOKEN_NEXT_ARP);
            }
            TOKEN_PORTS => {
                let hosts: Vec<Ipv4Addr> =
                    self.report.lock().hosts.iter().map(|(ip, _)| *ip).collect();
                for ip in hosts {
                    for &port in &self.plan.ports {
                        let conn = ctx.tcp_connect(ip, port);
                        self.conn_targets.insert(conn, (ip, port));
                    }
                }
                ctx.set_timer(SimDuration::from_millis(2000), TOKEN_FINISH);
            }
            TOKEN_FINISH => {
                self.report.lock().finished = true;
            }
            _ => {}
        }
    }

    fn on_raw_frame(&mut self, _ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
        if frame.ethertype != ethertype::ARP {
            return;
        }
        let Some(arp) = ArpPacket::decode(&frame.payload) else {
            return;
        };
        if arp.operation == ArpPacket::REPLY {
            let mut report = self.report.lock();
            if !report.hosts.iter().any(|(ip, _)| *ip == arp.sender_ip) {
                report.hosts.push((arp.sender_ip, arp.sender_mac));
            }
        }
    }

    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        if let Some((ip, port)) = self.conn_targets.remove(&conn) {
            let mut report = self.report.lock();
            let ports = report.open_ports.entry(ip).or_default();
            if !ports.contains(&port) {
                ports.push(port);
                ports.sort_unstable();
            }
            drop(report);
            ctx.tcp_close(conn);
        }
    }
}
