//! Minimal hand-rolled JSON serialization helpers shared by every exporter
//! in the workspace (journal JSONL, metrics snapshot, span exporters, lint
//! report) so string escaping exists exactly once.
//!
//! This is intentionally *not* a JSON library: just the two primitives a
//! writer needs — quoting a string and formatting a float — over
//! `std::fmt::Write`.

use std::fmt::Write as _;

/// Quotes a string as a JSON string literal, escaping `"`, `\`, and control
/// characters.
///
/// # Examples
///
/// ```
/// assert_eq!(sgcr_obs::json::quote("a\"b"), r#""a\"b""#);
/// assert_eq!(sgcr_obs::json::quote("line\nbreak"), r#""line\nbreak""#);
/// ```
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value.
///
/// Integral floats keep a trailing `.0` so consumers that distinguish int
/// from float see the intended type; non-finite values become strings, since
/// bare `NaN`/`Infinity` are not legal JSON.
///
/// # Examples
///
/// ```
/// assert_eq!(sgcr_obs::json::number(2.0), "2.0");
/// assert_eq!(sgcr_obs::json::number(0.25), "0.25");
/// assert_eq!(sgcr_obs::json::number(f64::NAN), "\"NaN\"");
/// ```
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') {
            s.push_str(".0");
        }
        s
    } else {
        quote(&format!("{v}"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("q\"b\\s"), "\"q\\\"b\\\\s\"");
        assert_eq!(quote("n\nr\rt\t"), "\"n\\nr\\rt\\t\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(quote("ünïcödé"), "\"ünïcödé\"");
    }

    #[test]
    fn number_keeps_float_shape() {
        assert_eq!(number(3.0), "3.0");
        assert_eq!(number(-1.5), "-1.5");
        // Rust's `Display` for f64 never uses exponent notation, so huge
        // integral values still get the float-marking suffix.
        assert!(number(1e300).ends_with(".0"));
        assert_eq!(number(f64::INFINITY), "\"inf\"");
        assert_eq!(number(f64::NEG_INFINITY), "\"-inf\"");
    }
}
