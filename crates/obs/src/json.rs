//! Minimal hand-rolled JSON helpers shared by every exporter in the
//! workspace (journal JSONL, metrics snapshot, span exporters, lint report)
//! so string escaping exists exactly once.
//!
//! This is intentionally *not* a general JSON library: the two primitives a
//! writer needs — quoting a string and formatting a float — plus a small
//! recursive-descent [`parse`] used by the farm status endpoint's `watch`
//! client and its tests (the only in-tree JSON *consumers*).

use std::fmt::Write as _;

/// Quotes a string as a JSON string literal, escaping `"`, `\`, and control
/// characters.
///
/// # Examples
///
/// ```
/// assert_eq!(sgcr_obs::json::quote("a\"b"), r#""a\"b""#);
/// assert_eq!(sgcr_obs::json::quote("line\nbreak"), r#""line\nbreak""#);
/// ```
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value.
///
/// Integral floats keep a trailing `.0` so consumers that distinguish int
/// from float see the intended type; non-finite values become strings, since
/// bare `NaN`/`Infinity` are not legal JSON.
///
/// # Examples
///
/// ```
/// assert_eq!(sgcr_obs::json::number(2.0), "2.0");
/// assert_eq!(sgcr_obs::json::number(0.25), "0.25");
/// assert_eq!(sgcr_obs::json::number(f64::NAN), "\"NaN\"");
/// ```
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') {
            s.push_str(".0");
        }
        s
    } else {
        quote(&format!("{v}"))
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for other kinds / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for other kinds).
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value (`None` for other kinds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value truncated to `u64` (`None` for negatives / other kinds).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value (`None` for other kinds).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value (`None` for other kinds).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error, as are
/// documents nested deeper than 128 levels.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                expected as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err("document nested too deeply".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogate pairs are not resolved; the range's
                            // own writers never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("q\"b\\s"), "\"q\\\"b\\\\s\"");
        assert_eq!(quote("n\nr\rt\t"), "\"n\\nr\\rt\\t\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(quote("ünïcödé"), "\"ünïcödé\"");
    }

    #[test]
    fn number_keeps_float_shape() {
        assert_eq!(number(3.0), "3.0");
        assert_eq!(number(-1.5), "-1.5");
        // Rust's `Display` for f64 never uses exponent notation, so huge
        // integral values still get the float-marking suffix.
        assert!(number(1e300).ends_with(".0"));
        assert_eq!(number(f64::INFINITY), "\"inf\"");
        assert_eq!(number(f64::NEG_INFINITY), "\"-inf\"");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = format!(
            "{{\"name\": {}, \"n\": {}, \"ok\": true, \"none\": null, \"xs\": [1, 2.5, -3]}}",
            quote("a\"b\nc"),
            number(0.25)
        );
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("a\"b\nc"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(0.25));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
        let xs = v.get("xs").and_then(Value::as_array).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].as_f64(), Some(-3.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "depth bound enforced");
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = parse(r#""aA\t\\ünïcödé""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t\\ünïcödé"));
        let u = parse("\"\\u0041\\u00fc\"").unwrap();
        assert_eq!(u.as_str(), Some("Aü"));
    }
}
