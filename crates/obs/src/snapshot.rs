//! Point-in-time exports of the metric registry: a structured snapshot with
//! text and JSON renderings.
//!
//! The JSON schema (documented in `docs/observability.md`):
//!
//! ```json
//! {
//!   "counters": { "net.frames_delivered": 123 },
//!   "gauges": { "range.step_overrun_ratio": 0.02 },
//!   "histograms": {
//!     "powerflow.solve_seconds": {
//!       "count": 20, "sum": 0.0042,
//!       "buckets": [ { "le": 0.000001, "count": 0 }, { "le": "+Inf", "count": 20 } ]
//!     }
//!   },
//!   "journal_dropped": 0,
//!   "spans_dropped": 0
//! }
//! ```
//!
//! Bucket counts are per-bucket (not cumulative); the `+Inf` bucket is
//! always present, so the bucket counts of a histogram sum to its `count`.

use crate::json::{number as json_f64, quote as json_str};
use std::fmt::Write as _;

/// A snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// `(upper_bound, count)` per bucket; the last bound is `f64::INFINITY`.
    pub buckets: Vec<(f64, u64)>,
}

/// A point-in-time copy of every registered instrument, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Journal records evicted because the ring buffer was full.
    pub journal_dropped: u64,
    /// Spans evicted because the span buffer was full (0 unless tracing).
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as the documented JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {value}", json_str(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {}", json_str(name), json_f64(*value));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_str(name),
                h.count,
                json_f64(h.sum)
            );
            for (j, (bound, count)) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let le = if bound.is_finite() {
                    json_f64(*bound)
                } else {
                    json_str("+Inf")
                };
                let _ = write!(out, "{sep}{{\"le\": {le}, \"count\": {count}}}");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let _ = writeln!(out, "  \"journal_dropped\": {},", self.journal_dropped);
        let _ = writeln!(out, "  \"spans_dropped\": {}", self.spans_dropped);
        out.push_str("}\n");
        out
    }

    /// Renders the snapshot as aligned human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:width$}  {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name:width$}  {value:.6}");
        }
        for (name, h) in &self.histograms {
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{name:width$}  count {}  sum {:.6}  mean {:.6}",
                h.count, h.sum, mean
            );
        }
        out
    }
}
