//! Causal tracing across the power, network, and control planes.
//!
//! A [`Tracer`] records [`SpanRecord`]s — named, timestamped intervals tied
//! into causal trees by a propagated [`TraceCtx`]. Each co-simulation step
//! opens a *root* span; everything that happens downstream (a power-flow
//! solve, an IED sampling its measurements, a GOOSE publication, every link
//! traversal inside the network emulator, a PLC scan, a SCADA tag update)
//! records a *child* span carrying the context of whatever caused it. The
//! result is the artifact the paper's experiments need: a reconstructable
//! chain from grid disturbance → protocol traffic → controller action →
//! operator view.
//!
//! The tracer follows the same zero-overhead-when-off discipline as the rest
//! of `sgcr-obs`: a [disabled](Tracer::disabled) tracer allocates nothing,
//! generates no IDs (every [`OpenSpan`] is an empty shell whose
//! [`ctx`](OpenSpan::ctx) is `None`), and every operation is a single
//! branch-on-`None`.
//!
//! IDs are assigned from monotonic counters, so a deterministic simulation
//! produces byte-identical traces run-to-run.
//!
//! # Examples
//!
//! ```
//! use sgcr_obs::{Plane, Tracer};
//!
//! let tracer = Tracer::with_capacity(1024);
//! let mut root = tracer.open("range.step", Plane::Range, None, 0u64);
//! root.attr("step", "0");
//! let solve = tracer.span("power.solve", Plane::Power, root.ctx(), 10u64, 20u64);
//! assert!(solve.is_some(), "enabled tracer hands out contexts");
//! root.end(100u64);
//!
//! let spans = tracer.spans();
//! assert_eq!(spans.len(), 2);
//! // Spans are recorded when they end: the solve closed first.
//! assert_eq!(spans[0].name, "power.solve");
//! assert_eq!(spans[0].parent_span_id, Some(spans[1].span_id));
//! ```

use crate::json;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

/// Default span-buffer capacity: a few minutes of span-dense simulation
/// without unbounded growth.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// A simulation timestamp in **nanoseconds** — the one time unit every
/// observability surface (journal, metrics snapshot, spans) agrees on.
///
/// `From<u64>` treats the raw integer as nanoseconds, so existing
/// nanosecond call sites keep working; call sites holding milliseconds must
/// convert explicitly via [`TimeNs::from_millis`], which is the point of
/// the newtype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeNs(u64);

impl TimeNs {
    /// A timestamp from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> TimeNs {
        TimeNs(ns)
    }

    /// A timestamp from microseconds.
    pub const fn from_micros(us: u64) -> TimeNs {
        TimeNs(us * 1_000)
    }

    /// A timestamp from milliseconds.
    pub const fn from_millis(ms: u64) -> TimeNs {
        TimeNs(ms * 1_000_000)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The timestamp in (fractional) microseconds — the unit of the Chrome
    /// trace-event format.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl From<u64> for TimeNs {
    fn from(ns: u64) -> TimeNs {
        TimeNs(ns)
    }
}

/// The architectural plane a span belongs to. Planes become track names in
/// the Chrome trace-event export, so a Perfetto timeline shows the power,
/// network, and control planes as parallel lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Plane {
    /// The co-simulation driver (step roots).
    Range,
    /// The power-flow solver / physical process.
    Power,
    /// The emulated OT network (link traversals).
    Net,
    /// Field controllers: IEDs and PLCs.
    Control,
    /// The SCADA / HMI layer.
    Scada,
}

impl Plane {
    /// Every plane, in track order.
    pub const ALL: [Plane; 5] = [
        Plane::Range,
        Plane::Power,
        Plane::Net,
        Plane::Control,
        Plane::Scada,
    ];

    /// The plane's lowercase label (JSONL `plane` field, Chrome `cat`).
    pub fn label(self) -> &'static str {
        match self {
            Plane::Range => "range",
            Plane::Power => "power",
            Plane::Net => "net",
            Plane::Control => "control",
            Plane::Scada => "scada",
        }
    }

    /// The stable track (Chrome `tid`) the plane renders on.
    pub fn track(self) -> u32 {
        match self {
            Plane::Range => 0,
            Plane::Power => 1,
            Plane::Net => 2,
            Plane::Control => 3,
            Plane::Scada => 4,
        }
    }
}

/// The propagated causal context: which trace an action belongs to and which
/// span caused it. `Copy`, two words — cheap enough to ride on every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The trace (causal tree) this context belongs to.
    pub trace_id: u64,
    /// The span that caused whatever carries this context.
    pub parent_span_id: u64,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique (per tracer) span ID, assigned when the span opened.
    pub span_id: u64,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// The causing span, or `None` for a trace root.
    pub parent_span_id: Option<u64>,
    /// Span name from the catalogue (`range.step`, `net.link`, …).
    pub name: &'static str,
    /// The plane the span renders on.
    pub plane: Plane,
    /// Start of the interval, simulation nanoseconds.
    pub start_ns: u64,
    /// End of the interval, simulation nanoseconds.
    pub end_ns: u64,
    /// Key/value attributes (`from`/`to` on link spans, `ied` on trips, …).
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// The context a child of this span would carry.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent_span_id: self.span_id,
        }
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the span as one JSON object (one line of the `--spans`
    /// JSONL export, symmetric with the journal's [`crate::EventRecord`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"span_id\":{},\"trace_id\":{},\"parent_span_id\":",
            self.span_id, self.trace_id
        );
        match self.parent_span_id {
            Some(parent) => {
                let _ = write!(out, "{parent}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"name\":{},\"plane\":{},\"start_ns\":{},\"end_ns\":{}",
            json::quote(self.name),
            json::quote(self.plane.label()),
            self.start_ns,
            self.end_ns
        );
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (key, value)) in self.attrs.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}{}:{}", json::quote(key), json::quote(value));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct TracerState {
    spans: VecDeque<SpanRecord>,
    next_trace_id: u64,
    next_span_id: u64,
    dropped: u64,
    provenance: BTreeMap<&'static str, TraceCtx>,
}

#[derive(Debug)]
struct TracerInner {
    capacity: usize,
    state: Mutex<TracerState>,
}

/// The span recorder: a bounded buffer of completed spans plus the
/// deterministic ID counters, or a no-op shell when
/// [disabled](Tracer::disabled).
///
/// Cloning shares the underlying state, exactly like [`crate::Telemetry`].
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer with the [default capacity](DEFAULT_SPAN_CAPACITY).
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled tracer retaining at most `capacity` spans (oldest evicted
    /// first, evictions counted in [`spans_dropped`](Tracer::spans_dropped)).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                capacity: capacity.max(1),
                state: Mutex::new(TracerState::default()),
            })),
        }
    }

    /// The no-op tracer. Identical to `Tracer::default()`.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. With `parent: None` the span roots a **new trace**
    /// (fresh `trace_id`); with a parent it joins the parent's trace.
    ///
    /// The span ID is assigned here, so [`OpenSpan::ctx`] can parent
    /// children before the span closes. Nothing is buffered until
    /// [`OpenSpan::end`]. On a disabled tracer this returns an inert
    /// [`OpenSpan`]: no IDs are allocated and `ctx()` is `None`.
    pub fn open(
        &self,
        name: &'static str,
        plane: Plane,
        parent: Option<TraceCtx>,
        start: impl Into<TimeNs>,
    ) -> OpenSpan {
        let Some(inner) = &self.inner else {
            return OpenSpan { inner: None };
        };
        let (span_id, trace_id) = {
            let mut state = inner.state.lock();
            state.next_span_id += 1;
            let span_id = state.next_span_id;
            let trace_id = match parent {
                Some(ctx) => ctx.trace_id,
                None => {
                    state.next_trace_id += 1;
                    state.next_trace_id
                }
            };
            (span_id, trace_id)
        };
        let start_ns = start.into().as_nanos();
        OpenSpan {
            inner: Some(OpenSpanInner {
                tracer: inner.clone(),
                record: SpanRecord {
                    span_id,
                    trace_id,
                    parent_span_id: parent.map(|c| c.parent_span_id),
                    name,
                    plane,
                    start_ns,
                    end_ns: start_ns,
                    attrs: Vec::new(),
                },
            }),
        }
    }

    /// Records a completed span in one call and returns the context its
    /// children would carry (`None` on a disabled tracer).
    pub fn span(
        &self,
        name: &'static str,
        plane: Plane,
        parent: Option<TraceCtx>,
        start: impl Into<TimeNs>,
        end: impl Into<TimeNs>,
    ) -> Option<TraceCtx> {
        let span = self.open(name, plane, parent, start);
        let ctx = span.ctx();
        span.end(end);
        ctx
    }

    /// Publishes `ctx` under a named provenance slot — causality that flows
    /// through shared state rather than messages. The power loop publishes
    /// its solve span under `"power.solve"`; IEDs sampling the shared
    /// process store parent their sample spans to it.
    pub fn set_provenance(&self, slot: &'static str, ctx: TraceCtx) {
        if let Some(inner) = &self.inner {
            inner.state.lock().provenance.insert(slot, ctx);
        }
    }

    /// The context last published under `slot`.
    pub fn provenance(&self, slot: &'static str) -> Option<TraceCtx> {
        self.inner
            .as_ref()
            .and_then(|i| i.state.lock().provenance.get(slot).copied())
    }

    /// All buffered spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().spans.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// How many spans were evicted by the buffer bound.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().dropped)
    }

    /// Every buffered span of one trace, sorted by start time (the query
    /// API: hand it the `trace_id` of an interesting span and read the
    /// whole causal tree).
    pub fn trace_of(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .spans()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.span_id));
        spans
    }

    /// The chain from span `span_id` up to its trace root (the span itself
    /// first). Stops early if an ancestor was evicted from the buffer.
    pub fn ancestry(&self, span_id: u64) -> Vec<SpanRecord> {
        let spans = self.spans();
        let mut chain = Vec::new();
        let mut cursor = Some(span_id);
        while let Some(id) = cursor {
            let Some(span) = spans.iter().find(|s| s.span_id == id) else {
                break;
            };
            cursor = span.parent_span_id;
            chain.push(span.clone());
        }
        chain
    }

    fn push(&self, record: SpanRecord) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            if state.spans.len() == inner.capacity {
                state.spans.pop_front();
                state.dropped += 1;
            }
            state.spans.push_back(record);
        }
    }

    /// The span log as JSON Lines, one [`SpanRecord`] object per line — the
    /// CLI's `--spans` file format, symmetric with the event journal.
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }

    /// The span buffer rendered as Chrome trace-event JSON (the
    /// `traceEvents` array form), loadable directly in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Each plane becomes a named track (`thread_name` metadata on a stable
    /// `tid`); spans are complete (`"ph":"X"`) events with microsecond
    /// `ts`/`dur` and their trace/span/parent IDs in `args`, sorted by start
    /// time so timestamps are monotonic within every track.
    pub fn chrome_trace_json(&self) -> String {
        let mut spans = self.spans();
        spans.sort_by_key(|s| (s.start_ns, s.span_id));
        let mut out = String::from("[\n");
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"sgcr\"}}}}"
        );
        for plane in Plane::ALL {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                plane.track(),
                json::quote(plane.label())
            );
        }
        for span in &spans {
            let dur_ns = span.end_ns.saturating_sub(span.start_ns);
            let _ = write!(
                out,
                ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"trace_id\":{},\"span_id\":{}",
                span.plane.track(),
                json::quote(span.name),
                json::quote(span.plane.label()),
                json::number(TimeNs(span.start_ns).as_micros_f64()),
                json::number(TimeNs(dur_ns).as_micros_f64()),
                span.trace_id,
                span.span_id,
            );
            if let Some(parent) = span.parent_span_id {
                let _ = write!(out, ",\"parent_span_id\":{parent}");
            }
            for (key, value) in &span.attrs {
                let _ = write!(out, ",{}:{}", json::quote(key), json::quote(value));
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }
}

struct OpenSpanInner {
    tracer: Arc<TracerInner>,
    record: SpanRecord,
}

/// An in-progress span: the ID is already assigned (so children can parent
/// to it via [`ctx`](OpenSpan::ctx)), but nothing is buffered until
/// [`end`](OpenSpan::end). Dropping without `end` discards the span.
///
/// From a disabled [`Tracer`] this is an inert shell: `ctx()` is `None` and
/// every method is a branch-on-`None` no-op.
#[must_use = "an OpenSpan records nothing until end() is called"]
pub struct OpenSpan {
    inner: Option<OpenSpanInner>,
}

impl OpenSpan {
    /// The context children of this span should carry (`None` when the
    /// tracer is disabled — callers propagate the `None` and downstream
    /// stays dark too).
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.inner.as_ref().map(|i| i.record.ctx())
    }

    /// Whether this span will actually be recorded — gate attribute
    /// formatting on this in hot paths.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches an attribute. No-op (value dropped) when not recording.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            inner.record.attrs.push((key, value.into()));
        }
    }

    /// Closes the span at `end` and commits it to the buffer.
    pub fn end(self, end: impl Into<TimeNs>) {
        if let Some(mut inner) = self.inner {
            inner.record.end_ns = end.into().as_nanos();
            let tracer = Tracer {
                inner: Some(inner.tracer),
            };
            tracer.push(inner.record);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn disabled_allocates_no_ids_and_buffers_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut span = tracer.open("range.step", Plane::Range, None, 0u64);
        assert!(span.ctx().is_none(), "no IDs on the disabled path");
        assert!(!span.is_recording());
        span.attr("step", "0");
        span.end(5u64);
        assert!(tracer.span("x", Plane::Net, None, 0u64, 1u64).is_none());
        tracer.set_provenance(
            "power.solve",
            TraceCtx {
                trace_id: 1,
                parent_span_id: 1,
            },
        );
        assert!(tracer.provenance("power.solve").is_none());
        assert!(tracer.spans().is_empty());
        assert_eq!(tracer.spans_dropped(), 0);
    }

    #[test]
    fn parenting_and_trace_membership() {
        let tracer = Tracer::new();
        let root = tracer.open("range.step", Plane::Range, None, 0u64);
        let root_ctx = root.ctx().unwrap();
        let solve = tracer
            .span("power.solve", Plane::Power, Some(root_ctx), 1u64, 2u64)
            .unwrap();
        assert_eq!(solve.trace_id, root_ctx.trace_id);
        let hop = tracer
            .span("net.link", Plane::Net, Some(solve), 3u64, 4u64)
            .unwrap();
        root.end(10u64);

        let trace = tracer.trace_of(root_ctx.trace_id);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].name, "range.step", "sorted by start time");
        // `hop.parent_span_id` is the link span's own ID (the ctx a child
        // of the hop would carry), so the chain starts at net.link.
        let chain = tracer.ancestry(hop.parent_span_id);
        assert_eq!(
            chain.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["net.link", "power.solve", "range.step"]
        );
    }

    #[test]
    fn roots_get_fresh_trace_ids() {
        let tracer = Tracer::new();
        let a = tracer.span("a", Plane::Range, None, 0u64, 1u64).unwrap();
        let b = tracer.span("b", Plane::Range, None, 2u64, 3u64).unwrap();
        assert_ne!(a.trace_id, b.trace_id);
    }

    #[test]
    fn id_assignment_is_deterministic() {
        let run = || {
            let tracer = Tracer::new();
            let root = tracer.open("range.step", Plane::Range, None, 0u64);
            let child = tracer.span("power.solve", Plane::Power, root.ctx(), 1u64, 2u64);
            root.end(3u64);
            let _ = child;
            tracer.spans()
        };
        assert_eq!(run(), run(), "same operations, same IDs, same buffer");
    }

    #[test]
    fn buffer_is_bounded_and_counts_drops() {
        let tracer = Tracer::with_capacity(2);
        for i in 0..5u64 {
            let _ = tracer.span("net.link", Plane::Net, None, i, i + 1);
        }
        assert_eq!(tracer.spans().len(), 2);
        assert_eq!(tracer.spans_dropped(), 3);
    }

    #[test]
    fn provenance_slots_hold_the_latest_ctx() {
        let tracer = Tracer::new();
        let first = tracer
            .span("power.solve", Plane::Power, None, 0u64, 1u64)
            .unwrap();
        tracer.set_provenance("power.solve", first);
        let second = tracer
            .span("power.solve", Plane::Power, None, 2u64, 3u64)
            .unwrap();
        tracer.set_provenance("power.solve", second);
        assert_eq!(tracer.provenance("power.solve"), Some(second));
    }

    #[test]
    fn jsonl_lines_carry_ids_and_attrs() {
        let tracer = Tracer::new();
        let mut span = tracer.open("net.link", Plane::Net, None, 1_000u64);
        span.attr("from", "GIED1");
        span.attr("to", "sw-GenBus");
        span.end(2_000u64);
        let jsonl = tracer.spans_jsonl();
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"name\":\"net.link\""));
        assert!(line.contains("\"plane\":\"net\""));
        assert!(line.contains("\"parent_span_id\":null"));
        assert!(line.contains("\"attrs\":{\"from\":\"GIED1\",\"to\":\"sw-GenBus\"}"));
    }

    #[test]
    fn chrome_export_has_tracks_and_complete_events() {
        let tracer = Tracer::new();
        let root = tracer.open("range.step", Plane::Range, None, 0u64);
        let _ = tracer.span("power.solve", Plane::Power, root.ctx(), 500u64, 1_500u64);
        root.end(2_000u64);
        let json = tracer.chrome_trace_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"power\""));
        assert!(json.contains("\"ph\":\"X\""));
        // 500 ns start → 0.5 µs in Chrome's unit.
        assert!(json.contains("\"ts\":0.5"), "{json}");
        assert!(json.contains("\"dur\":1.0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn time_ns_conversions() {
        assert_eq!(TimeNs::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(TimeNs::from_micros(7).as_nanos(), 7_000);
        assert_eq!(TimeNs::from_nanos(9).as_nanos(), 9);
        assert!((TimeNs::from_nanos(2_500).as_micros_f64() - 2.5).abs() < 1e-12);
        let t: TimeNs = 42u64.into();
        assert_eq!(t.as_nanos(), 42);
    }
}
