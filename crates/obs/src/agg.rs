//! Streaming aggregation of per-tenant metric snapshots into one farm-level
//! registry.
//!
//! The range farm used to keep every step's wall time in a raw `Vec<f64>` per
//! tenant so it could compute p50/p99 at the end — O(steps) memory, which a
//! soak run holding thousands of tenants for hours cannot afford. This module
//! replaces that with *mergeable fixed-bucket histograms*: each tenant's
//! [`MetricsSnapshot`] is folded into one aggregate whose memory is
//! O(buckets × tenants) regardless of how many steps ran.
//!
//! Fold semantics:
//!
//! * counters — summed,
//! * gauges — last write wins (tenants are folded in ascending id order, so
//!   the result is deterministic),
//! * histograms — bucket-merged via [`merge_histogram`],
//! * `journal_dropped` / `spans_dropped` — summed.
//!
//! Because snapshots are *cumulative*, the aggregator keeps only the latest
//! snapshot per tenant and re-folds on demand; re-submitting a tenant
//! replaces its contribution instead of double-counting it.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Merges `from` into `into`, bucket by bucket.
///
/// When both histograms share the same bucket bounds (the common case: every
/// tenant of a farm registers the same instruments) counts add element-wise.
/// With differing bounds, each `from` bucket is attributed to the first
/// `into` bucket whose upper bound can hold it — a conservative fold that
/// never loses observations (the `+Inf` bucket catches everything) at the
/// cost of coarser attribution.
pub fn merge_histogram(into: &mut HistogramSnapshot, from: &HistogramSnapshot) {
    if from.count == 0 && from.buckets.iter().all(|(_, c)| *c == 0) {
        return;
    }
    if into.buckets.is_empty() {
        *into = from.clone();
        return;
    }
    let same_bounds = into.buckets.len() == from.buckets.len()
        && into
            .buckets
            .iter()
            .zip(&from.buckets)
            .all(|((a, _), (b, _))| a.total_cmp(b).is_eq());
    if same_bounds {
        for ((_, a), (_, b)) in into.buckets.iter_mut().zip(&from.buckets) {
            *a += b;
        }
    } else {
        let last = into.buckets.len() - 1;
        for (bound, count) in &from.buckets {
            if *count == 0 {
                continue;
            }
            let index = into
                .buckets
                .iter()
                .position(|(b, _)| bound <= b)
                .unwrap_or(last);
            into.buckets[index].1 += count;
        }
    }
    into.count += from.count;
    into.sum += from.sum;
}

/// Estimates the `q`-quantile (`0.0 ..= 1.0`) of a bucketed histogram using
/// Prometheus-style linear interpolation within the holding bucket.
///
/// The first bucket is assumed to start at 0 (all recorded quantities are
/// non-negative wall times and counts); a quantile landing in the `+Inf`
/// overflow bucket returns the largest finite bound, and an empty histogram
/// returns 0.0. The estimate is an upper-ish bound within one bucket's
/// width — callers holding the true max should clamp with it.
pub fn histogram_quantile(h: &HistogramSnapshot, q: f64) -> f64 {
    if h.count == 0 || h.buckets.is_empty() {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * h.count as f64;
    let mut cumulative = 0u64;
    let mut lower = 0.0f64;
    for (bound, count) in &h.buckets {
        let before = cumulative as f64;
        cumulative += count;
        if *count > 0 && cumulative as f64 >= rank {
            if !bound.is_finite() {
                return lower;
            }
            let fraction = ((rank - before) / *count as f64).clamp(0.0, 1.0);
            return lower + (bound - lower) * fraction;
        }
        if bound.is_finite() {
            lower = *bound;
        }
    }
    lower
}

/// Folds per-tenant [`MetricsSnapshot`]s into one farm-level snapshot.
///
/// Thread-safe: worker threads [`submit`](FarmAggregator::submit) while a
/// collector thread [`aggregate`](FarmAggregator::aggregate)s. Memory is
/// bounded by one snapshot per tenant (O(buckets × tenants)), never by the
/// number of steps any tenant has run.
#[derive(Debug, Default)]
pub struct FarmAggregator {
    latest: Mutex<BTreeMap<usize, MetricsSnapshot>>,
}

impl FarmAggregator {
    /// An empty aggregator.
    pub fn new() -> FarmAggregator {
        FarmAggregator::default()
    }

    /// Records `snapshot` as tenant `tenant`'s latest cumulative state,
    /// replacing any earlier submission from the same tenant.
    pub fn submit(&self, tenant: usize, snapshot: MetricsSnapshot) {
        self.latest.lock().insert(tenant, snapshot);
    }

    /// How many tenants have submitted at least one snapshot.
    pub fn tenants(&self) -> usize {
        self.latest.lock().len()
    }

    /// The latest snapshot submitted by `tenant`, if any.
    pub fn latest(&self, tenant: usize) -> Option<MetricsSnapshot> {
        self.latest.lock().get(&tenant).cloned()
    }

    /// Removes `tenant`'s contribution entirely, returning whether it was
    /// present. Long-lived farms evict drained/retired tenants so the
    /// aggregate (and the `/metrics` scrape built from it) stays bounded by
    /// the *live* tenant population, not by everything ever admitted.
    pub fn evict(&self, tenant: usize) -> bool {
        self.latest.lock().remove(&tenant).is_some()
    }

    /// Folds every tenant's latest snapshot (ascending tenant id) into one
    /// farm-level snapshot.
    pub fn aggregate(&self) -> MetricsSnapshot {
        let latest = self.latest.lock();
        let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<&str, f64> = BTreeMap::new();
        let mut histograms: BTreeMap<&str, HistogramSnapshot> = BTreeMap::new();
        let mut journal_dropped = 0u64;
        let mut spans_dropped = 0u64;
        for snapshot in latest.values() {
            for (name, value) in &snapshot.counters {
                *counters.entry(name).or_insert(0) += value;
            }
            for (name, value) in &snapshot.gauges {
                gauges.insert(name, *value);
            }
            for (name, h) in &snapshot.histograms {
                merge_histogram(
                    histograms.entry(name).or_insert_with(|| HistogramSnapshot {
                        count: 0,
                        sum: 0.0,
                        buckets: Vec::new(),
                    }),
                    h,
                );
            }
            journal_dropped += snapshot.journal_dropped;
            spans_dropped += snapshot.spans_dropped;
        }
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            histograms: histograms
                .into_iter()
                .map(|(n, h)| (n.to_string(), h))
                .collect(),
            journal_dropped,
            spans_dropped,
        }
    }
}

/// The process's resident set size in bytes, read from `/proc/self/statm`.
///
/// Returns `None` on platforms without procfs (the farm exports the gauge
/// only when a reading is available). The page size is taken as 4 KiB, the
/// fixed base page size on every Linux target this workspace builds for.
#[cfg(target_os = "linux")]
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident * 4096)
}

/// The process's resident set size in bytes (`None`: no procfs here).
#[cfg(not(target_os = "linux"))]
pub fn rss_bytes() -> Option<u64> {
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{buckets, Telemetry};

    fn hist(values: &[f64]) -> HistogramSnapshot {
        let t = Telemetry::new();
        let h = t.histogram("h", &buckets::LATENCY_SECONDS);
        for v in values {
            h.observe(*v);
        }
        t.snapshot().histogram("h").unwrap().clone()
    }

    #[test]
    fn merge_same_bounds_adds_bucketwise() {
        let mut a = hist(&[0.0005, 0.002]);
        let b = hist(&[0.002, 20.0]);
        merge_histogram(&mut a, &b);
        assert_eq!(a.count, 4);
        assert!((a.sum - 20.0045).abs() < 1e-9);
        assert_eq!(a.buckets.iter().map(|(_, c)| c).sum::<u64>(), 4);
        assert_eq!(a.buckets.last().unwrap().1, 1, "+Inf holds 20.0");
    }

    #[test]
    fn merge_into_empty_clones() {
        let mut acc = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            buckets: Vec::new(),
        };
        let b = hist(&[0.01]);
        merge_histogram(&mut acc, &b);
        assert_eq!(acc, b);
    }

    #[test]
    fn merge_mismatched_bounds_folds_at_upper_bound() {
        let t = Telemetry::new();
        let coarse = t.histogram("c", &[0.1, 1.0]);
        coarse.observe(0.05);
        let mut into = t.snapshot().histogram("c").unwrap().clone();
        let from = hist(&[0.0005, 20.0]); // finer bounds + an overflow
        merge_histogram(&mut into, &from);
        assert_eq!(into.count, 3);
        assert_eq!(
            into.buckets.iter().map(|(_, c)| c).sum::<u64>(),
            3,
            "no observation lost"
        );
        assert_eq!(into.buckets.last().unwrap().1, 1, "overflow stays overflow");
    }

    #[test]
    fn quantile_interpolates_and_orders() {
        let h = hist(&[0.0004, 0.0004, 0.0004, 0.02]);
        let p50 = histogram_quantile(&h, 0.50);
        let p99 = histogram_quantile(&h, 0.99);
        assert!(p50 > 0.0 && p50 <= 0.0005, "p50 lands in (1e-4, 5e-4]");
        assert!(p99 >= p50, "quantiles are monotonic in q");
        assert!(p99 <= 0.05, "p99 bounded by holding bucket");
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            buckets: Vec::new(),
        };
        assert_eq!(histogram_quantile(&empty, 0.99), 0.0);
        let overflow = hist(&[100.0]);
        assert_eq!(
            histogram_quantile(&overflow, 0.99),
            10.0,
            "+Inf quantile returns the largest finite bound"
        );
    }

    #[test]
    fn aggregator_replaces_not_adds() {
        let agg = FarmAggregator::new();
        let t = Telemetry::new();
        t.counter("range.steps").add(5);
        agg.submit(0, t.snapshot());
        t.counter("range.steps").add(5);
        agg.submit(0, t.snapshot()); // cumulative resubmission
        let farm = agg.aggregate();
        assert_eq!(
            farm.counter("range.steps"),
            Some(10),
            "latest cumulative snapshot wins; no double counting"
        );
        assert_eq!(agg.tenants(), 1);
    }

    #[test]
    fn aggregator_folds_across_tenants() {
        let agg = FarmAggregator::new();
        for tenant in 0..3usize {
            let t = Telemetry::new();
            t.counter("range.steps").add(10);
            t.gauge("range.overrun_ratio").set(tenant as f64);
            t.histogram("range.step_seconds", &buckets::LATENCY_SECONDS)
                .observe(0.001 * (tenant + 1) as f64);
            agg.submit(tenant, t.snapshot());
        }
        let farm = agg.aggregate();
        assert_eq!(farm.counter("range.steps"), Some(30), "counters sum");
        assert_eq!(
            farm.gauge("range.overrun_ratio"),
            Some(2.0),
            "gauges take the last tenant's write"
        );
        let h = farm.histogram("range.step_seconds").unwrap();
        assert_eq!(h.count, 3, "histograms merge");
        assert!((h.sum - 0.006).abs() < 1e-12);
    }

    #[test]
    fn aggregate_memory_is_bucket_bound_not_step_bound() {
        // Two aggregates built from runs of very different lengths hold the
        // exact same number of buckets: O(buckets), never O(steps).
        let sizes: Vec<usize> = [10usize, 10_000]
            .iter()
            .map(|steps| {
                let agg = FarmAggregator::new();
                let t = Telemetry::new();
                let h = t.histogram("range.step_seconds", &buckets::LATENCY_SECONDS);
                for i in 0..*steps {
                    h.observe(1e-6 * i as f64);
                }
                agg.submit(0, t.snapshot());
                let farm = agg.aggregate();
                farm.histogram("range.step_seconds").unwrap().buckets.len()
            })
            .collect();
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[0], buckets::LATENCY_SECONDS.len() + 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_probe_reads_something_positive() {
        let rss = rss_bytes().expect("procfs available on linux");
        assert!(rss > 0);
    }
}
