//! Metric instruments: monotonic counters, gauges, and fixed-bucket
//! histograms.
//!
//! Instruments are cheap handles around atomics. A *disabled* instrument
//! (what every [`crate::Telemetry::disabled`] registry hands out) carries no
//! allocation at all; its operations are a single branch on `None` — safe to
//! leave on the hottest paths of the simulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what disabled telemetry hands out).
    pub fn disabled() -> Counter {
        Counter(None)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge holding the latest observed value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn disabled() -> Gauge {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Shared state of an enabled histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Upper bounds of the finite buckets, ascending. An implicit `+Inf`
    /// bucket always follows.
    pub(crate) bounds: Box<[f64]>,
    /// One cell per finite bound plus the overflow bucket.
    pub(crate) buckets: Box<[AtomicU64]>,
    pub(crate) count: AtomicU64,
    /// Sum of observations, stored as f64 bits and updated with a CAS loop.
    pub(crate) sum_bits: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[f64]) -> HistogramCore {
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds: sorted.into_boxed_slice(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// A histogram with fixed bucket bounds chosen at creation.
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A detached no-op histogram.
    pub fn disabled() -> Histogram {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        let Some(core) = &self.0 else {
            return;
        };
        // First bound >= value, else the +Inf overflow bucket. Bounds are
        // small fixed arrays, so a linear scan beats binary search here.
        let index = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[index].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Total number of observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all observations (0.0 when disabled).
    pub fn sum(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.sum_bits.load(Ordering::Relaxed)))
    }
}

/// Standard bucket bound sets used across the range's subsystems.
pub mod buckets {
    /// Wall-clock latency buckets in seconds: 1 µs … 10 s, roughly
    /// logarithmic. Suits both power-flow solves and emulated link delays.
    pub const LATENCY_SECONDS: [f64; 14] = [
        1e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
    ];

    /// Newton–Raphson iteration-count buckets.
    pub const ITERATIONS: [f64; 8] = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0];
}
