//! Prometheus text exposition (version 0.0.4) of a [`MetricsSnapshot`].
//!
//! Zero-dependency: the format is line-oriented text. Metric names are the
//! registry names with every non-alphanumeric character mapped to `_` and an
//! `sgcr_` namespace prefix (`farm.ranges_total` → `sgcr_farm_ranges_total`,
//! `step.plane.plc_seconds` → `sgcr_step_plane_plc_seconds`). Histograms are
//! exported with *cumulative* `_bucket{le="…"}` series (the snapshot stores
//! per-bucket counts), a `_sum`, and a `_count`, ending in `le="+Inf"` as the
//! format requires. Ordering is stable: counters, gauges, histograms — each
//! already name-sorted in the snapshot — then the journal/span drop counters.

use crate::snapshot::MetricsSnapshot;
use std::fmt::Write as _;

/// Renders the snapshot in Prometheus text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, value) in &snapshot.counters {
        let prom = metric_name(name);
        let _ = writeln!(out, "# HELP {prom} range counter {name}");
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let prom = metric_name(name);
        let _ = writeln!(out, "# HELP {prom} range gauge {name}");
        let _ = writeln!(out, "# TYPE {prom} gauge");
        let _ = writeln!(out, "{prom} {}", number(*value));
    }
    for (name, h) in &snapshot.histograms {
        let prom = metric_name(name);
        let _ = writeln!(out, "# HELP {prom} range histogram {name}");
        let _ = writeln!(out, "# TYPE {prom} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in &h.buckets {
            cumulative += count;
            let le = if bound.is_finite() {
                number(*bound)
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(out, "{prom}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{prom}_sum {}", number(h.sum));
        let _ = writeln!(out, "{prom}_count {}", h.count);
    }
    for (prom, name, value) in [
        (
            "sgcr_journal_dropped_total",
            "journal records evicted by the ring-buffer bound",
            snapshot.journal_dropped,
        ),
        (
            "sgcr_spans_dropped_total",
            "spans evicted by the span-buffer bound",
            snapshot.spans_dropped,
        ),
    ] {
        let _ = writeln!(out, "# HELP {prom} {name}");
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    out
}

/// Maps a registry metric name to a legal Prometheus metric name.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("sgcr_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a sample value; Prometheus spells non-finite floats `NaN`,
/// `+Inf`, `-Inf`.
fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{buckets, Telemetry};

    #[test]
    fn names_are_namespaced_and_sanitized() {
        assert_eq!(metric_name("farm.ranges_total"), "sgcr_farm_ranges_total");
        assert_eq!(
            metric_name("step.plane.plc_seconds"),
            "sgcr_step_plane_plc_seconds"
        );
        assert_eq!(metric_name("a-b c"), "sgcr_a_b_c");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let t = Telemetry::new();
        let h = t.histogram("range.step_seconds", &buckets::LATENCY_SECONDS);
        h.observe(0.0004);
        h.observe(0.0004);
        h.observe(20.0);
        let text = render(&t.snapshot());
        assert!(text.contains("# TYPE sgcr_range_step_seconds histogram"));
        assert!(text.contains("sgcr_range_step_seconds_bucket{le=\"0.0005\"} 2"));
        assert!(text.contains("sgcr_range_step_seconds_bucket{le=\"10\"} 2"));
        assert!(text.contains("sgcr_range_step_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sgcr_range_step_seconds_count 3"));
        let inf_line = text
            .lines()
            .position(|l| l.contains("le=\"+Inf\""))
            .unwrap();
        let sum_line = text
            .lines()
            .position(|l| l.starts_with("sgcr_range_step_seconds_sum"))
            .unwrap();
        assert!(inf_line < sum_line, "+Inf bucket precedes _sum");
    }

    #[test]
    fn drop_counters_always_present() {
        let text = render(&Telemetry::new().snapshot());
        assert!(text.contains("sgcr_journal_dropped_total 0"));
        assert!(text.contains("sgcr_spans_dropped_total 0"));
    }
}
