//! The event journal: a bounded ring buffer of typed simulation events.
//!
//! Unlike the metric registry (aggregates), the journal keeps *individual*
//! occurrences — which packet was dropped, which relay tripped when — so an
//! experiment can be reconstructed after the fact. The buffer is bounded:
//! when full, the oldest records are evicted and counted in
//! [`crate::Telemetry::events_dropped`].

use crate::json::{number as json_f64, quote as json_str};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// A typed simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A host handed a frame to its link.
    PacketSent {
        /// Sending host name.
        host: String,
        /// Frame length on the wire, in bytes.
        bytes: u64,
    },
    /// A frame arrived at the host it was addressed to.
    PacketDelivered {
        /// Receiving host name.
        host: String,
        /// Frame length on the wire, in bytes.
        bytes: u64,
    },
    /// A frame was discarded before delivery.
    PacketDropped {
        /// Host that attempted the send.
        host: String,
        /// Frame length on the wire, in bytes.
        bytes: u64,
        /// Why it was dropped (`link-down`, `no-link`).
        reason: String,
    },
    /// A power-flow solve finished successfully.
    SolveCompleted {
        /// Newton–Raphson iterations used.
        iters: u64,
        /// Wall-clock solve time in seconds.
        seconds: f64,
    },
    /// A power-flow solve failed; the range keeps running on stale state.
    SolveFailed {
        /// The solver error text.
        detail: String,
    },
    /// A protection element operated and tripped its breaker.
    ProtectionTrip {
        /// The IED that tripped.
        ied: String,
        /// LN and breaker detail.
        detail: String,
    },
    /// An MMS control was executed by an IED.
    ControlExecuted {
        /// The IED executing the control.
        ied: String,
        /// Command detail.
        detail: String,
    },
    /// An MMS control was rejected (e.g. interlock).
    ControlRejected {
        /// The IED rejecting the control.
        ied: String,
        /// Rejection detail.
        detail: String,
    },
    /// An IED published a GOOSE message.
    GooseSent {
        /// The publishing IED.
        ied: String,
    },
    /// The SCADA HMI raised an alarm.
    ScadaAlarm {
        /// The alarmed point.
        point: String,
        /// Alarm message.
        message: String,
    },
    /// The SCADA HMI cleared an alarm.
    ScadaAlarmCleared {
        /// The cleared point.
        point: String,
        /// Alarm message.
        message: String,
    },
    /// An operator command left the SCADA HMI.
    ScadaCommand {
        /// Target tag.
        tag: String,
        /// Commanded value.
        value: f64,
    },
    /// A PLC issued an MMS control towards an IED.
    PlcControl {
        /// The PLC variable that changed.
        variable: String,
        /// The commanded boolean.
        value: bool,
    },
    /// A co-simulation step took longer than its real-time budget.
    StepOverrun {
        /// Step ordinal.
        step: u64,
        /// Wall time over interval (1.0 = exactly on budget).
        ratio: f64,
    },
    /// An exercise scenario stage began executing.
    StageStarted {
        /// Stage id from the scenario file.
        stage: String,
    },
    /// An exercise scenario stage finished executing.
    StageEnded {
        /// Stage id from the scenario file.
        stage: String,
    },
    /// An exercise objective was resolved (pass or fail).
    ObjectiveResolved {
        /// Objective id from the scenario file.
        objective: String,
        /// Whether the objective passed.
        passed: bool,
    },
    /// The adversary planner produced a campaign for a declared goal.
    AdversaryPlanned {
        /// The declared goal (`breakerOpen:EPIC/CB_GEN`).
        goal: String,
        /// The planner seed.
        seed: u64,
        /// Number of campaign stages planned.
        stages: u64,
    },
    /// A planner-emitted campaign stage began executing.
    AdversaryActionStarted {
        /// Planned stage id (`adv-scan`, `adv-mitm`, `adv-strike`).
        stage: String,
    },
    /// The adversary's goal objective passed — the campaign reached its
    /// declared goal.
    AdversaryGoalReached {
        /// The goal objective's id.
        objective: String,
    },
    /// A fault was injected (or cleared) on a range element.
    FaultInjected {
        /// The link, host, or IED the fault applies to.
        target: String,
        /// Human description of the fault profile (`loss=30% jitter<=5ms`,
        /// `stuck`, `clear`, …).
        detail: String,
    },
    /// A simulated device (IED/PLC host) crashed and went silent.
    DeviceCrashed {
        /// The crashed host.
        host: String,
    },
    /// A crashed device came back after its restart delay.
    DeviceRestarted {
        /// The restarted host.
        host: String,
    },
    /// The power flow failed to converge; the range is serving the
    /// last-good solution and has flipped measurement quality to invalid.
    MeasurementsHeld {
        /// The solver error that triggered the hold.
        detail: String,
    },
    /// The power flow converged again after one or more held steps;
    /// measurement quality is good again.
    MeasurementsRecovered {
        /// How many consecutive steps served the held solution.
        held_steps: u64,
    },
    /// A SCADA tag stopped updating within the stale window; its quality
    /// degraded to `old`.
    TagStale {
        /// The stale tag.
        tag: String,
        /// Milliseconds since the last update when staleness was declared.
        age_ms: u64,
    },
    /// A GOOSE subscription's time-allowed-to-live expired; the subscriber
    /// stopped trusting the last frame.
    GooseExpired {
        /// The subscribing IED.
        ied: String,
        /// The silent publisher.
        publisher: String,
    },
    /// A range farm began a batch run.
    FarmStarted {
        /// Tenants requested.
        tenants: u64,
        /// Worker threads in the pool.
        threads: u64,
        /// Simulated seconds each tenant will run.
        sim_seconds: u64,
    },
    /// A range farm finished its batch run.
    FarmFinished {
        /// Tenants that completed their full simulation.
        tenants_completed: u64,
        /// Tenants halted early by the step-budget overrun limit.
        tenants_halted: u64,
        /// Tenants that failed outright.
        tenants_failed: u64,
    },
    /// The farm supervisor captured a mid-run checkpoint of a tenant.
    TenantCheckpointed {
        /// The checkpointed tenant's index.
        tenant: u64,
        /// Co-simulation steps the tenant had executed at capture.
        steps: u64,
    },
    /// The farm supervisor restarted a halted/crashed tenant from its last
    /// checkpoint.
    TenantRestarted {
        /// The restarted tenant's index.
        tenant: u64,
        /// Restart count for this tenant, including this one.
        restarts: u64,
        /// Steps recovered from the checkpoint (0: restarted from scratch).
        from_steps: u64,
    },
    /// The farm supervisor's circuit breaker opened: the tenant exhausted
    /// its restart budget and will not be retried.
    TenantGivenUp {
        /// The abandoned tenant's index.
        tenant: u64,
        /// How many restarts were attempted before giving up.
        restarts: u64,
    },
    /// An event from outside the built-in instrumentation.
    Custom {
        /// Event name.
        name: String,
        /// Free-form detail.
        detail: String,
    },
}

impl Event {
    /// The event's type tag, as emitted in the JSON journal.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PacketSent { .. } => "PacketSent",
            Event::PacketDelivered { .. } => "PacketDelivered",
            Event::PacketDropped { .. } => "PacketDropped",
            Event::SolveCompleted { .. } => "SolveCompleted",
            Event::SolveFailed { .. } => "SolveFailed",
            Event::ProtectionTrip { .. } => "ProtectionTrip",
            Event::ControlExecuted { .. } => "ControlExecuted",
            Event::ControlRejected { .. } => "ControlRejected",
            Event::GooseSent { .. } => "GooseSent",
            Event::ScadaAlarm { .. } => "ScadaAlarm",
            Event::ScadaAlarmCleared { .. } => "ScadaAlarmCleared",
            Event::ScadaCommand { .. } => "ScadaCommand",
            Event::PlcControl { .. } => "PlcControl",
            Event::StepOverrun { .. } => "StepOverrun",
            Event::StageStarted { .. } => "StageStarted",
            Event::StageEnded { .. } => "StageEnded",
            Event::ObjectiveResolved { .. } => "ObjectiveResolved",
            Event::AdversaryPlanned { .. } => "AdversaryPlanned",
            Event::AdversaryActionStarted { .. } => "AdversaryActionStarted",
            Event::AdversaryGoalReached { .. } => "AdversaryGoalReached",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::DeviceCrashed { .. } => "DeviceCrashed",
            Event::DeviceRestarted { .. } => "DeviceRestarted",
            Event::MeasurementsHeld { .. } => "MeasurementsHeld",
            Event::MeasurementsRecovered { .. } => "MeasurementsRecovered",
            Event::TagStale { .. } => "TagStale",
            Event::GooseExpired { .. } => "GooseExpired",
            Event::FarmStarted { .. } => "FarmStarted",
            Event::FarmFinished { .. } => "FarmFinished",
            Event::TenantCheckpointed { .. } => "TenantCheckpointed",
            Event::TenantRestarted { .. } => "TenantRestarted",
            Event::TenantGivenUp { .. } => "TenantGivenUp",
            Event::Custom { .. } => "Custom",
        }
    }
}

/// One journal entry: an [`Event`] stamped with simulation time and a
/// monotonic sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Sequence number (monotonic across the journal's lifetime, including
    /// evicted records).
    pub seq: u64,
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// The event.
    pub event: Event,
}

impl EventRecord {
    /// Serializes the record as one JSON object (one JSONL journal line).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_ns\":{},\"type\":{}",
            self.seq,
            self.t_ns,
            json_str(self.event.kind())
        );
        match &self.event {
            Event::PacketSent { host, bytes } | Event::PacketDelivered { host, bytes } => {
                let _ = write!(out, ",\"host\":{},\"bytes\":{bytes}", json_str(host));
            }
            Event::PacketDropped {
                host,
                bytes,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"host\":{},\"bytes\":{bytes},\"reason\":{}",
                    json_str(host),
                    json_str(reason)
                );
            }
            Event::SolveCompleted { iters, seconds } => {
                let _ = write!(out, ",\"iters\":{iters},\"seconds\":{}", json_f64(*seconds));
            }
            Event::SolveFailed { detail } => {
                let _ = write!(out, ",\"detail\":{}", json_str(detail));
            }
            Event::ProtectionTrip { ied, detail }
            | Event::ControlExecuted { ied, detail }
            | Event::ControlRejected { ied, detail } => {
                let _ = write!(
                    out,
                    ",\"ied\":{},\"detail\":{}",
                    json_str(ied),
                    json_str(detail)
                );
            }
            Event::GooseSent { ied } => {
                let _ = write!(out, ",\"ied\":{}", json_str(ied));
            }
            Event::ScadaAlarm { point, message } | Event::ScadaAlarmCleared { point, message } => {
                let _ = write!(
                    out,
                    ",\"point\":{},\"message\":{}",
                    json_str(point),
                    json_str(message)
                );
            }
            Event::ScadaCommand { tag, value } => {
                let _ = write!(
                    out,
                    ",\"tag\":{},\"value\":{}",
                    json_str(tag),
                    json_f64(*value)
                );
            }
            Event::PlcControl { variable, value } => {
                let _ = write!(
                    out,
                    ",\"variable\":{},\"value\":{value}",
                    json_str(variable)
                );
            }
            Event::StepOverrun { step, ratio } => {
                let _ = write!(out, ",\"step\":{step},\"ratio\":{}", json_f64(*ratio));
            }
            Event::StageStarted { stage } | Event::StageEnded { stage } => {
                let _ = write!(out, ",\"stage\":{}", json_str(stage));
            }
            Event::ObjectiveResolved { objective, passed } => {
                let _ = write!(
                    out,
                    ",\"objective\":{},\"passed\":{passed}",
                    json_str(objective)
                );
            }
            Event::AdversaryPlanned { goal, seed, stages } => {
                let _ = write!(
                    out,
                    ",\"goal\":{},\"seed\":{seed},\"stages\":{stages}",
                    json_str(goal)
                );
            }
            Event::AdversaryActionStarted { stage } => {
                let _ = write!(out, ",\"stage\":{}", json_str(stage));
            }
            Event::AdversaryGoalReached { objective } => {
                let _ = write!(out, ",\"objective\":{}", json_str(objective));
            }
            Event::FaultInjected { target, detail } => {
                let _ = write!(
                    out,
                    ",\"target\":{},\"detail\":{}",
                    json_str(target),
                    json_str(detail)
                );
            }
            Event::DeviceCrashed { host } | Event::DeviceRestarted { host } => {
                let _ = write!(out, ",\"host\":{}", json_str(host));
            }
            Event::MeasurementsHeld { detail } => {
                let _ = write!(out, ",\"detail\":{}", json_str(detail));
            }
            Event::MeasurementsRecovered { held_steps } => {
                let _ = write!(out, ",\"held_steps\":{held_steps}");
            }
            Event::TagStale { tag, age_ms } => {
                let _ = write!(out, ",\"tag\":{},\"age_ms\":{age_ms}", json_str(tag));
            }
            Event::GooseExpired { ied, publisher } => {
                let _ = write!(
                    out,
                    ",\"ied\":{},\"publisher\":{}",
                    json_str(ied),
                    json_str(publisher)
                );
            }
            Event::FarmStarted {
                tenants,
                threads,
                sim_seconds,
            } => {
                let _ = write!(
                    out,
                    ",\"tenants\":{tenants},\"threads\":{threads},\"sim_seconds\":{sim_seconds}"
                );
            }
            Event::FarmFinished {
                tenants_completed,
                tenants_halted,
                tenants_failed,
            } => {
                let _ = write!(
                    out,
                    ",\"tenants_completed\":{tenants_completed},\"tenants_halted\":{tenants_halted},\"tenants_failed\":{tenants_failed}"
                );
            }
            Event::TenantCheckpointed { tenant, steps } => {
                let _ = write!(out, ",\"tenant\":{tenant},\"steps\":{steps}");
            }
            Event::TenantRestarted {
                tenant,
                restarts,
                from_steps,
            } => {
                let _ = write!(
                    out,
                    ",\"tenant\":{tenant},\"restarts\":{restarts},\"from_steps\":{from_steps}"
                );
            }
            Event::TenantGivenUp { tenant, restarts } => {
                let _ = write!(out, ",\"tenant\":{tenant},\"restarts\":{restarts}");
            }
            Event::Custom { name, detail } => {
                let _ = write!(
                    out,
                    ",\"name\":{},\"detail\":{}",
                    json_str(name),
                    json_str(detail)
                );
            }
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct JournalState {
    events: VecDeque<EventRecord>,
    next_seq: u64,
    dropped: u64,
}

/// The bounded ring buffer behind an enabled [`crate::Telemetry`].
#[derive(Debug)]
pub(crate) struct Journal {
    capacity: usize,
    state: Mutex<JournalState>,
}

impl Journal {
    pub(crate) fn new(capacity: usize) -> Journal {
        Journal {
            capacity: capacity.max(1),
            state: Mutex::new(JournalState::default()),
        }
    }

    pub(crate) fn push(&self, t_ns: u64, event: Event) {
        let mut state = self.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(EventRecord { seq, t_ns, event });
    }

    pub(crate) fn snapshot(&self) -> Vec<EventRecord> {
        self.state.lock().events.iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }
}
