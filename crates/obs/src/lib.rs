#![warn(missing_docs)]

//! # sgcr-obs
//!
//! Zero-overhead-when-off telemetry for the smart grid cyber range: the
//! measurement layer the paper's evaluation (§IV) is built on. A
//! [`Telemetry`] handle carries a metric registry (monotonic [`Counter`]s,
//! [`Gauge`]s, fixed-bucket [`Histogram`]s) and a bounded ring-buffer
//! [`Event`] journal; it is threaded through the network emulator, the
//! power-flow solver, and the co-simulation loop.
//!
//! Two states, one API:
//!
//! * [`Telemetry::new`] — instruments record, the journal retains events,
//!   and snapshots/exports are available.
//! * [`Telemetry::disabled`] — every handed-out instrument is a detached
//!   no-op and [`Telemetry::record`] returns before even *constructing* the
//!   event (the closure is never called). No allocation, no formatting, no
//!   locking on the hot path: a disabled range behaves byte-identically to
//!   an un-instrumented one.
//!
//! # Examples
//!
//! ```
//! use sgcr_obs::{buckets, Event, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! let delivered = telemetry.counter("net.frames_delivered");
//! let solve = telemetry.histogram("powerflow.solve_seconds", &buckets::LATENCY_SECONDS);
//! delivered.inc();
//! solve.observe(0.0004);
//! telemetry.record(1_000_000, || Event::SolveCompleted { iters: 3, seconds: 0.0004 });
//!
//! let snap = telemetry.snapshot();
//! assert_eq!(snap.counter("net.frames_delivered"), Some(1));
//! assert_eq!(snap.histogram("powerflow.solve_seconds").map(|h| h.count), Some(1));
//! assert_eq!(telemetry.events().len(), 1);
//! ```

pub mod agg;
mod journal;
pub mod json;
mod metric;
pub mod prom;
mod snapshot;
mod trace;

pub use agg::FarmAggregator;
pub use journal::{Event, EventRecord};
pub use metric::{buckets, Counter, Gauge, Histogram};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use trace::{OpenSpan, Plane, SpanRecord, TimeNs, TraceCtx, Tracer, DEFAULT_SPAN_CAPACITY};

use journal::Journal;
use metric::HistogramCore;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default journal capacity: enough for minutes of event-dense simulation
/// without unbounded growth.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

struct Inner {
    instruments: Mutex<BTreeMap<String, Instrument>>,
    journal: Journal,
    tracer: Tracer,
}

/// The telemetry handle: a cheaply cloneable registry + journal, or a
/// no-op shell when [disabled](Telemetry::disabled).
///
/// Cloning shares the underlying state, so a handle can be given to every
/// subsystem of a range and observed from the outside.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// An enabled registry with the [default journal capacity](DEFAULT_JOURNAL_CAPACITY).
    /// Tracing stays off; use [`Telemetry::with_tracing`] to record spans.
    pub fn new() -> Telemetry {
        Telemetry::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// An enabled registry whose journal retains at most `capacity` events
    /// (oldest evicted first).
    pub fn with_journal_capacity(capacity: usize) -> Telemetry {
        Telemetry::with_capacities(capacity, None)
    }

    /// An enabled registry that also records causal [spans](SpanRecord):
    /// [`tracer`](Telemetry::tracer) hands out a live [`Tracer`] with the
    /// [default span capacity](DEFAULT_SPAN_CAPACITY).
    pub fn with_tracing() -> Telemetry {
        Telemetry::with_capacities(DEFAULT_JOURNAL_CAPACITY, Some(DEFAULT_SPAN_CAPACITY))
    }

    /// An enabled registry with explicit journal and span-buffer capacities
    /// (`span_capacity: None` leaves tracing off).
    pub fn with_capacities(journal_capacity: usize, span_capacity: Option<usize>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                instruments: Mutex::new(BTreeMap::new()),
                journal: Journal::new(journal_capacity),
                tracer: match span_capacity {
                    Some(capacity) => Tracer::with_capacity(capacity),
                    None => Tracer::disabled(),
                },
            })),
        }
    }

    /// The no-op handle. Identical to `Telemetry::default()`.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The tracer behind this handle: live after
    /// [`Telemetry::with_tracing`], otherwise the disabled no-op tracer.
    /// Cheap to clone; subsystems keep their own copy.
    pub fn tracer(&self) -> Tracer {
        self.inner
            .as_ref()
            .map(|i| i.tracer.clone())
            .unwrap_or_default()
    }

    /// Whether spans are being recorded.
    pub fn is_tracing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.tracer.is_enabled())
    }

    /// All buffered spans, in completion order (empty unless tracing).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.tracer().spans()
    }

    /// How many spans were evicted by the span-buffer bound.
    pub fn spans_dropped(&self) -> u64 {
        self.tracer().spans_dropped()
    }

    /// Gets or creates the counter `name`.
    ///
    /// Disabled telemetry returns a detached no-op counter. If `name` is
    /// already registered as a different instrument kind, a detached
    /// (unexported) counter is returned rather than panicking.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::disabled();
        };
        let mut instruments = inner.instruments.lock();
        match instruments.get(name) {
            Some(Instrument::Counter(cell)) => Counter(Some(cell.clone())),
            Some(_) => Counter(Some(Arc::new(AtomicU64::new(0)))),
            None => {
                let cell = Arc::new(AtomicU64::new(0));
                instruments.insert(name.to_string(), Instrument::Counter(cell.clone()));
                Counter(Some(cell))
            }
        }
    }

    /// Gets or creates the gauge `name` (same conventions as [`counter`](Telemetry::counter)).
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::disabled();
        };
        let mut instruments = inner.instruments.lock();
        match instruments.get(name) {
            Some(Instrument::Gauge(cell)) => Gauge(Some(cell.clone())),
            Some(_) => Gauge(Some(Arc::new(AtomicU64::new(0f64.to_bits())))),
            None => {
                let cell = Arc::new(AtomicU64::new(0f64.to_bits()));
                instruments.insert(name.to_string(), Instrument::Gauge(cell.clone()));
                Gauge(Some(cell))
            }
        }
    }

    /// Gets or creates the histogram `name` with the given finite bucket
    /// bounds (an overflow `+Inf` bucket is implicit). A histogram that
    /// already exists keeps its original bounds; `bounds` is then ignored.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::disabled();
        };
        let mut instruments = inner.instruments.lock();
        match instruments.get(name) {
            Some(Instrument::Histogram(core)) => Histogram(Some(core.clone())),
            Some(_) => Histogram(Some(Arc::new(HistogramCore::new(bounds)))),
            None => {
                let core = Arc::new(HistogramCore::new(bounds));
                instruments.insert(name.to_string(), Instrument::Histogram(core.clone()));
                Histogram(Some(core))
            }
        }
    }

    /// Appends an event to the journal at simulation time `t` (anything
    /// convertible to [`TimeNs`]: raw `u64` nanoseconds, or an explicit
    /// [`TimeNs::from_millis`] at millisecond call sites).
    ///
    /// The event is built by the closure, which is **not called** when
    /// telemetry is disabled — callers can format strings inside it without
    /// paying anything on the disabled path.
    #[inline]
    pub fn record<T: Into<TimeNs>, F: FnOnce() -> Event>(&self, t: T, make: F) {
        if let Some(inner) = &self.inner {
            inner.journal.push(t.into().as_nanos(), make());
        }
    }

    /// A snapshot of the journal, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.inner
            .as_ref()
            .map(|i| i.journal.snapshot())
            .unwrap_or_default()
    }

    /// How many journal records have been evicted by the ring-buffer bound.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.journal.dropped())
    }

    /// The journal rendered as JSON Lines (one [`EventRecord`] object per
    /// line) — the `--journal` file format of the CLI.
    pub fn journal_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.events() {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }

    /// A point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let instruments = inner.instruments.lock();
        let mut snap = MetricsSnapshot {
            journal_dropped: inner.journal.dropped(),
            spans_dropped: inner.tracer.spans_dropped(),
            ..MetricsSnapshot::default()
        };
        for (name, instrument) in instruments.iter() {
            match instrument {
                Instrument::Counter(cell) => snap
                    .counters
                    .push((name.clone(), cell.load(Ordering::Relaxed))),
                Instrument::Gauge(cell) => snap
                    .gauges
                    .push((name.clone(), f64::from_bits(cell.load(Ordering::Relaxed)))),
                Instrument::Histogram(core) => {
                    let mut buckets: Vec<(f64, u64)> = core
                        .bounds
                        .iter()
                        .zip(core.buckets.iter())
                        .map(|(b, c)| (*b, c.load(Ordering::Relaxed)))
                        .collect();
                    buckets.push((
                        f64::INFINITY,
                        core.buckets[core.bounds.len()].load(Ordering::Relaxed),
                    ));
                    snap.histograms.push((
                        name.clone(),
                        HistogramSnapshot {
                            count: core.count.load(Ordering::Relaxed),
                            sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                            buckets,
                        },
                    ));
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_share() {
        let t = Telemetry::new();
        let a = t.counter("x");
        let b = t.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(t.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn disabled_is_a_noop_everywhere() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let c = t.counter("c");
        c.inc();
        assert_eq!(c.get(), 0);
        t.gauge("g").set(5.0);
        t.histogram("h", &buckets::LATENCY_SECONDS).observe(1.0);
        let mut called = false;
        t.record(0, || {
            called = true;
            Event::GooseSent { ied: "x".into() }
        });
        assert!(!called, "disabled record must not build the event");
        assert!(t.events().is_empty());
        let snap = t.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn histogram_buckets_fill_and_sum() {
        let t = Telemetry::new();
        let h = t.histogram("lat", &[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(0.05);
        h.observe(5.0); // overflow
        assert_eq!(h.count(), 4);
        let snap = t.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(
            hs.buckets.iter().map(|(_, c)| c).sum::<u64>(),
            hs.count,
            "bucket counts sum to total"
        );
        assert_eq!(hs.buckets.last().unwrap().1, 1, "+Inf bucket holds 5.0");
        assert!((hs.sum - 5.0555).abs() < 1e-9);
    }

    #[test]
    fn journal_is_bounded_and_counts_evictions() {
        let t = Telemetry::with_journal_capacity(3);
        for i in 0..5u64 {
            t.record(i, || Event::GooseSent {
                ied: format!("ied{i}"),
            });
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(t.events_dropped(), 2);
        assert_eq!(t.snapshot().journal_dropped, 2);
    }

    #[test]
    fn kind_mismatch_returns_detached_instrument() {
        let t = Telemetry::new();
        let _c = t.counter("name");
        let g = t.gauge("name"); // same name, different kind
        g.set(3.0);
        // The gauge works but is not exported; the counter keeps the name.
        assert!((g.get() - 3.0).abs() < f64::EPSILON);
        assert_eq!(t.snapshot().counter("name"), Some(0));
        assert!(t.snapshot().gauge("name").is_none());
    }

    #[test]
    fn snapshot_json_shape() {
        let t = Telemetry::new();
        t.counter("net.frames_delivered").add(7);
        t.gauge("range.step_overrun_ratio").set(0.25);
        t.histogram("powerflow.solve_seconds", &[0.001])
            .observe(0.0004);
        let json = t.snapshot().to_json();
        assert!(json.contains("\"net.frames_delivered\": 7"));
        assert!(json.contains("\"range.step_overrun_ratio\": 0.25"));
        assert!(json.contains("\"powerflow.solve_seconds\""));
        assert!(json.contains("\"le\": \"+Inf\""));
        assert!(json.contains("\"journal_dropped\": 0"));
    }

    #[test]
    fn journal_jsonl_lines_are_typed() {
        let t = Telemetry::new();
        t.record(1_500_000, || Event::ProtectionTrip {
            ied: "TIED2".into(),
            detail: "PTOC1 tripped CB2".into(),
        });
        t.record(2_000_000, || Event::SolveCompleted {
            iters: 4,
            seconds: 0.001,
        });
        let jsonl = t.journal_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"ProtectionTrip\""));
        assert!(lines[0].contains("\"t_ns\":1500000"));
        assert!(lines[1].contains("\"type\":\"SolveCompleted\""));
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let json = Telemetry::new().snapshot().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
