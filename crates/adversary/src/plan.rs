//! The seeded goal-driven campaign planner.
//!
//! Given a derived [`AttackGraph`] and a declared goal
//! (`breakerOpen:EPIC/CB_GEN`, `scadaAlarm:MicroVolt_pu`), the planner
//! searches the graph for a multi-stage campaign — scan → ARP MitM →
//! FCI/transform — that reaches the goal within an action budget, and
//! emits the chosen stages as a neutral [`CampaignPlan`] the exercise
//! engine converts into ordinary scenario stages.
//!
//! All choice points (victim among equivalent control paths, attacker
//! addresses, stage timing) draw from the SplitMix64 [`FaultRng`] seeded
//! by the scenario's `<Adversary seed=…>`, never from a wall clock or OS
//! RNG — the same seed replays the same campaign byte-identically, and
//! [`CampaignPlan::to_json`] is the byte-stable witness.

use crate::graph::{AlarmDir, AttackGraph, EdgeKind, HostRole, Node, PointAddr};
use sgcr_faults::FaultRng;
use sgcr_net::Ipv4Addr;
use sgcr_obs::json::{number, quote};
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

/// A parsed adversary goal (`<kind>:<target>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Goal {
    /// Open a named power-model breaker (`breakerOpen:EPIC/CB_GEN`).
    BreakerOpen {
        /// Scoped switch name.
        switch: String,
    },
    /// Close a named power-model breaker.
    BreakerClosed {
        /// Scoped switch name.
        switch: String,
    },
    /// Raise a SCADA alarm on a named HMI point
    /// (`scadaAlarm:MicroVolt_pu`).
    ScadaAlarm {
        /// Alarmed point (tag) name.
        point: String,
    },
}

impl Goal {
    /// Parses the `goal=` attribute grammar.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadGoal`] when the text is not
    /// `breakerOpen:<switch>`, `breakerClosed:<switch>`, or
    /// `scadaAlarm:<point>`.
    pub fn parse(text: &str) -> Result<Goal, PlanError> {
        let bad = || PlanError::BadGoal {
            goal: text.to_string(),
        };
        let (kind, target) = text.split_once(':').ok_or_else(bad)?;
        if target.is_empty() {
            return Err(bad());
        }
        Ok(match kind {
            "breakerOpen" => Goal::BreakerOpen {
                switch: target.to_string(),
            },
            "breakerClosed" => Goal::BreakerClosed {
                switch: target.to_string(),
            },
            "scadaAlarm" => Goal::ScadaAlarm {
                point: target.to_string(),
            },
            _ => return Err(bad()),
        })
    }
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Goal::BreakerOpen { switch } => write!(f, "breakerOpen:{switch}"),
            Goal::BreakerClosed { switch } => write!(f, "breakerClosed:{switch}"),
            Goal::ScadaAlarm { point } => write!(f, "scadaAlarm:{point}"),
        }
    }
}

/// Why no campaign could be planned.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The goal text does not parse (`<kind>:<target>` grammar).
    BadGoal {
        /// The offending text.
        goal: String,
    },
    /// The goal's target names nothing in the derived attack graph.
    UnknownTarget {
        /// The goal as declared.
        goal: String,
        /// Targets of the right kind that *do* exist, for the message.
        known: Vec<String>,
    },
    /// The target exists but no attack-primitive path reaches it.
    Unreachable {
        /// The goal as declared.
        goal: String,
        /// Why the graph offers no path.
        reason: String,
    },
    /// A path exists but needs more actions than the declared budget.
    BudgetTooSmall {
        /// The goal as declared.
        goal: String,
        /// Minimum actions any path needs.
        needed: u32,
        /// The declared budget.
        budget: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BadGoal { goal } => write!(
                f,
                "goal {goal:?} does not parse; expected breakerOpen:<switch>, \
                 breakerClosed:<switch>, or scadaAlarm:<point>"
            ),
            PlanError::UnknownTarget { goal, known } => {
                write!(f, "goal {goal:?} names an unknown target")?;
                if !known.is_empty() {
                    write!(f, "; known: {}", known.join(", "))?;
                }
                Ok(())
            }
            PlanError::Unreachable { goal, reason } => {
                write!(f, "goal {goal:?} is unreachable: {reason}")
            }
            PlanError::BudgetTooSmall {
                goal,
                needed,
                budget,
            } => write!(
                f,
                "goal {goal:?} needs at least {needed} actions, budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// An attacker host the campaign adds to the range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedHost {
    /// Host name (`red-1`, `red-2`, …).
    pub name: String,
    /// Chosen IPv4 address on the target segment.
    pub ip: Ipv4Addr,
    /// Switch (segment) the host attaches to.
    pub switch: String,
}

/// When a planned step starts, mirroring scenario stage scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedStart {
    /// At an absolute exercise time (ms).
    At(u64),
    /// After another planned step completes, plus a delay.
    After {
        /// Id of the step waited on.
        step: String,
        /// Extra delay in ms.
        delay_ms: u64,
    },
}

/// The MitM payload transform a planned step applies.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedTransform {
    /// Forward unmodified (eavesdrop).
    PassThrough,
    /// Scale Modbus register values by a factor.
    ScaleModbusRegisters(f64),
    /// Scale floats inside MMS read responses by a factor.
    ScaleMmsFloats(f32),
}

/// One action of the planned campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedAction {
    /// ARP sweep + port scan of the target segment.
    Scan {
        /// Attacker host running the scanner.
        host: String,
        /// First swept address.
        first: Ipv4Addr,
        /// Last swept address (inclusive).
        last: Ipv4Addr,
        /// Probed TCP ports.
        ports: Vec<u16>,
    },
    /// ARP-spoofing man-in-the-middle between two victims.
    Mitm {
        /// Attacker host running the MitM.
        host: String,
        /// First victim host name.
        victim_a: String,
        /// Second victim host name.
        victim_b: String,
        /// Hold window in ms.
        duration_ms: u64,
        /// Payload transform while in position.
        transform: PlannedTransform,
    },
    /// False command injection against an MMS server.
    Fci {
        /// Attacker host running the injection.
        host: String,
        /// Victim host name.
        victim: String,
        /// MMS item written.
        item: String,
        /// Forged boolean value.
        value: bool,
    },
}

impl PlannedAction {
    /// The action kind name (matches scenario stage `kind=`).
    pub fn kind(&self) -> &'static str {
        match self {
            PlannedAction::Scan { .. } => "scan",
            PlannedAction::Mitm { .. } => "mitm",
            PlannedAction::Fci { .. } => "fci",
        }
    }

    /// The attacker host the action runs on.
    pub fn host(&self) -> &str {
        match self {
            PlannedAction::Scan { host, .. }
            | PlannedAction::Mitm { host, .. }
            | PlannedAction::Fci { host, .. } => host,
        }
    }

    /// The victim host names the action touches.
    pub fn victims(&self) -> Vec<&str> {
        match self {
            PlannedAction::Scan { .. } => Vec::new(),
            PlannedAction::Mitm {
                victim_a, victim_b, ..
            } => vec![victim_a, victim_b],
            PlannedAction::Fci { victim, .. } => vec![victim],
        }
    }
}

/// One scheduled step of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStep {
    /// Unique step id (`adv-scan`, `adv-mitm`, `adv-strike`).
    pub id: String,
    /// When the step starts.
    pub start: PlannedStart,
    /// What the step does.
    pub action: PlannedAction,
}

/// The complete deterministic campaign a seed produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// The goal as declared in the scenario.
    pub goal: Goal,
    /// The planner seed.
    pub seed: u64,
    /// The declared action budget.
    pub budget: u32,
    /// Attacker hosts to add before the exercise starts.
    pub hosts: Vec<PlannedHost>,
    /// Campaign steps in execution order.
    pub steps: Vec<PlannedStep>,
    /// Step id whose *start* anchors the goal objective's deadline.
    pub objective_after: String,
    /// Goal objective deadline, ms after the anchor step starts.
    pub objective_within_ms: u64,
}

impl CampaignPlan {
    /// The id the goal objective is registered under in the exercise.
    pub const OBJECTIVE_ID: &'static str = "adv-goal";

    /// Serializes the plan as deterministic JSON — the replay witness:
    /// same graph + same goal + same seed ⇒ byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"goal\":{},\"seed\":{},\"budget\":{},\"hosts\":[",
            quote(&self.goal.to_string()),
            self.seed,
            self.budget
        );
        for (i, host) in self.hosts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"ip\":{},\"switch\":{}}}",
                quote(&host.name),
                quote(&host.ip.to_string()),
                quote(&host.switch)
            );
        }
        out.push_str("],\"steps\":[");
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"kind\":{},",
                quote(&step.id),
                quote(step.action.kind())
            );
            match &step.start {
                PlannedStart::At(t) => {
                    let _ = write!(out, "\"t\":{t},");
                }
                PlannedStart::After { step, delay_ms } => {
                    let _ = write!(out, "\"after\":{},\"delayMs\":{delay_ms},", quote(step));
                }
            }
            match &step.action {
                PlannedAction::Scan {
                    host,
                    first,
                    last,
                    ports,
                } => {
                    let ports: Vec<String> = ports.iter().map(u16::to_string).collect();
                    let _ = write!(
                        out,
                        "\"host\":{},\"first\":{},\"last\":{},\"ports\":{}",
                        quote(host),
                        quote(&first.to_string()),
                        quote(&last.to_string()),
                        quote(&ports.join(","))
                    );
                }
                PlannedAction::Mitm {
                    host,
                    victim_a,
                    victim_b,
                    duration_ms,
                    transform,
                } => {
                    let _ = write!(
                        out,
                        "\"host\":{},\"victimA\":{},\"victimB\":{},\"durationMs\":{duration_ms},\
                         \"transform\":{}",
                        quote(host),
                        quote(victim_a),
                        quote(victim_b),
                        quote(&match transform {
                            PlannedTransform::PassThrough => "passThrough".to_string(),
                            PlannedTransform::ScaleModbusRegisters(f) =>
                                format!("scaleModbusRegisters:{}", number(*f)),
                            PlannedTransform::ScaleMmsFloats(f) =>
                                format!("scaleMmsFloats:{}", number(f64::from(*f))),
                        })
                    );
                }
                PlannedAction::Fci {
                    host,
                    victim,
                    item,
                    value,
                } => {
                    let _ = write!(
                        out,
                        "\"host\":{},\"victim\":{},\"item\":{},\"value\":{value}",
                        quote(host),
                        quote(victim),
                        quote(item)
                    );
                }
            }
            out.push('}');
        }
        let _ = write!(
            out,
            "],\"objective\":{{\"id\":{},\"after\":{},\"withinMs\":{}}}}}",
            quote(Self::OBJECTIVE_ID),
            quote(&self.objective_after),
            self.objective_within_ms
        );
        out
    }
}

/// Inputs to [`plan`] beyond the graph itself.
#[derive(Debug, Clone, Default)]
pub struct PlanRequest<'a> {
    /// The declared goal text (`breakerOpen:EPIC/CB_GEN`).
    pub goal: &'a str,
    /// Maximum number of campaign actions.
    pub budget: u32,
    /// Planner seed (SplitMix64).
    pub seed: u64,
    /// Host names already taken (range hosts are read off the graph;
    /// these are *additional* reservations, e.g. manual `<Host>`s).
    pub reserved_names: &'a [String],
    /// IPv4 addresses already taken beyond the graph's hosts.
    pub reserved_ips: &'a [Ipv4Addr],
}

/// Minimum actions any campaign needs: a recon scan plus the strike.
const MIN_ACTIONS: u32 = 2;

/// How long a recon (pass-through) MitM holds its position.
const RECON_MITM_MS: u64 = 1200;

/// How long a transforming MitM holds its position — long enough for
/// several SCADA poll cycles to ingest the transformed values.
const TRANSFORM_MITM_MS: u64 = 4000;

/// Deadline slack granted to the goal objective beyond the strike itself.
const OBJECTIVE_SLACK_MS: u64 = 3000;

/// Plans a campaign over the derived graph.
///
/// Deterministic: every choice draws from the seeded [`FaultRng`] in a
/// fixed order, so the same `(graph, goal, budget, seed)` quadruple always
/// returns the same plan.
///
/// # Errors
///
/// Returns [`PlanError`] when the goal does not parse, names an unknown
/// target, is unreachable with the available attack primitives, or needs
/// more actions than the budget allows.
pub fn plan(graph: &AttackGraph, request: &PlanRequest<'_>) -> Result<CampaignPlan, PlanError> {
    let goal = Goal::parse(request.goal)?;
    let mut rng = FaultRng::new(request.seed);
    let mut ctx = Ctx::new(graph, request);

    // Draw order is part of the replay contract: t0 first, then per-goal
    // choices, then per-host addresses, then inter-step delays.
    let t0 = 200 + rng.below(4) * 100;

    let (hosts, steps) = match &goal {
        Goal::BreakerOpen { switch } => {
            breaker_campaign(&mut ctx, &mut rng, &goal, switch, false, t0)?
        }
        Goal::BreakerClosed { switch } => {
            breaker_campaign(&mut ctx, &mut rng, &goal, switch, true, t0)?
        }
        Goal::ScadaAlarm { point } => alarm_campaign(&mut ctx, &mut rng, &goal, point, t0)?,
    };

    let last = steps
        .last()
        .map(|s| s.id.clone())
        .unwrap_or_else(|| "adv-strike".to_string());
    let objective_within_ms = match &goal {
        Goal::ScadaAlarm { .. } => TRANSFORM_MITM_MS + OBJECTIVE_SLACK_MS,
        _ => OBJECTIVE_SLACK_MS,
    };
    Ok(CampaignPlan {
        goal,
        seed: request.seed,
        budget: request.budget,
        hosts,
        steps,
        objective_after: last,
        objective_within_ms,
    })
}

/// Shared planning context: budget plus name/address reservations over
/// the graph.
struct Ctx<'a> {
    graph: &'a AttackGraph,
    budget: u32,
    taken_names: BTreeSet<String>,
    taken_ips: BTreeSet<Ipv4Addr>,
}

impl<'a> Ctx<'a> {
    fn new(graph: &'a AttackGraph, request: &PlanRequest<'_>) -> Ctx<'a> {
        let mut taken_names: BTreeSet<String> = request.reserved_names.iter().cloned().collect();
        let mut taken_ips: BTreeSet<Ipv4Addr> = request.reserved_ips.iter().copied().collect();
        for node in &graph.nodes {
            if let Node::Host { name, ip, .. } = node {
                taken_names.insert(name.clone());
                taken_ips.insert(*ip);
            }
        }
        Ctx {
            graph,
            budget: request.budget,
            taken_names,
            taken_ips,
        }
    }

    /// The host node fields for a host name.
    fn host_info(&self, name: &str) -> Option<(Ipv4Addr, String)> {
        self.graph.nodes.iter().find_map(|n| match n {
            Node::Host {
                name: n,
                ip,
                switch,
                ..
            } if n == name => Some((*ip, switch.clone())),
            _ => None,
        })
    }

    /// IPs of all planned hosts on a segment, for the recon sweep range.
    fn segment_ips(&self, switch: &str) -> Vec<Ipv4Addr> {
        self.graph
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Host { ip, switch: sw, .. } if sw == switch => Some(*ip),
                _ => None,
            })
            .collect()
    }

    /// Reserves a fresh attacker host on `switch`, seeding the address
    /// from the segment's subnet with an RNG-chosen high host octet.
    fn alloc_host(
        &mut self,
        rng: &mut FaultRng,
        switch: &str,
        segment_ip: Ipv4Addr,
    ) -> PlannedHost {
        let mut index = 1;
        let name = loop {
            let candidate = format!("red-{index}");
            if !self.taken_names.contains(&candidate) {
                break candidate;
            }
            index += 1;
        };
        self.taken_names.insert(name.clone());

        let octets = segment_ip.octets();
        #[allow(clippy::cast_possible_truncation)] // below(40) < 256
        let mut last = 200u8 + rng.below(40) as u8;
        let ip = loop {
            let candidate = Ipv4Addr::new(octets[0], octets[1], octets[2], last);
            if !self.taken_ips.contains(&candidate) {
                break candidate;
            }
            last = last.wrapping_add(1).max(2);
        };
        self.taken_ips.insert(ip);
        PlannedHost {
            name,
            ip,
            switch: switch.to_string(),
        }
    }
}

/// scan → (recon MitM) → forged-CSWI FCI against an IED controlling the
/// target breaker.
fn breaker_campaign(
    ctx: &mut Ctx<'_>,
    rng: &mut FaultRng,
    goal: &Goal,
    switch: &str,
    close: bool,
    t0: u64,
) -> Result<(Vec<PlannedHost>, Vec<PlannedStep>), PlanError> {
    let breaker_id = format!("breaker:{switch}");
    if ctx.graph.node(&breaker_id).is_none() {
        let known = ctx
            .graph
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Breaker { name } => Some(name.clone()),
                _ => None,
            })
            .collect();
        return Err(PlanError::UnknownTarget {
            goal: goal.to_string(),
            known,
        });
    }

    // Control paths: IEDs exposing a CSWI operate item over the breaker.
    let controls: Vec<&crate::graph::Edge> = ctx
        .graph
        .edges_of(EdgeKind::BreakerControl)
        .filter(|e| e.to == breaker_id)
        .collect();
    if controls.is_empty() {
        return Err(PlanError::Unreachable {
            goal: goal.to_string(),
            reason: format!("no IED exposes operate control over {switch}"),
        });
    }
    let chosen = controls[usize::try_from(rng.below(controls.len() as u64)).unwrap_or(0)];
    let victim = chosen.from.trim_start_matches("host:").to_string();
    let item = chosen.via.clone().unwrap_or_default();
    let (victim_ip, victim_switch) =
        ctx.host_info(&victim)
            .ok_or_else(|| PlanError::Unreachable {
                goal: goal.to_string(),
                reason: format!("controlling IED {victim} is not on the network plan"),
            })?;

    // A recon MitM peer: someone who already talks MMS/GOOSE to the victim.
    let peer = ctx
        .graph
        .edges
        .iter()
        .find(|e| {
            matches!(e.kind, EdgeKind::MmsRead | EdgeKind::MmsWrite)
                && e.to == format!("host:{victim}")
        })
        .map(|e| e.from.trim_start_matches("host:").to_string());

    let include_mitm = ctx.budget_check(goal, peer.is_some())?;

    let mut hosts = Vec::new();
    let mut steps = Vec::new();

    // Recon sweep of the victim's segment.
    let segment_ips = ctx.segment_ips(&victim_switch);
    let first = segment_ips.iter().copied().min().unwrap_or(victim_ip);
    let last = segment_ips.iter().copied().max().unwrap_or(victim_ip);
    let scan_host = ctx.alloc_host(rng, &victim_switch, victim_ip);
    steps.push(PlannedStep {
        id: "adv-scan".to_string(),
        start: PlannedStart::At(t0),
        action: PlannedAction::Scan {
            host: scan_host.name.clone(),
            first,
            last,
            ports: vec![102, 502],
        },
    });
    hosts.push(scan_host);
    let mut prev = "adv-scan".to_string();

    if include_mitm {
        // Eavesdrop the victim's existing control traffic before striking.
        if let Some(peer) = peer {
            let mitm_host = ctx.alloc_host(rng, &victim_switch, victim_ip);
            let delay = 300 + rng.below(3) * 100;
            steps.push(PlannedStep {
                id: "adv-mitm".to_string(),
                start: PlannedStart::After {
                    step: prev,
                    delay_ms: delay,
                },
                action: PlannedAction::Mitm {
                    host: mitm_host.name.clone(),
                    victim_a: victim.clone(),
                    victim_b: peer,
                    duration_ms: RECON_MITM_MS,
                    transform: PlannedTransform::PassThrough,
                },
            });
            hosts.push(mitm_host);
            prev = "adv-mitm".to_string();
        }
    }

    let fci_host = ctx.alloc_host(rng, &victim_switch, victim_ip);
    let delay = 300 + rng.below(3) * 100;
    steps.push(PlannedStep {
        id: "adv-strike".to_string(),
        start: PlannedStart::After {
            step: prev,
            delay_ms: delay,
        },
        action: PlannedAction::Fci {
            host: fci_host.name.clone(),
            victim,
            item,
            value: close,
        },
    });
    hosts.push(fci_host);
    Ok((hosts, steps))
}

/// scan → transforming MitM between SCADA and the point's source, chosen
/// to push the displayed value across the alarm limit.
fn alarm_campaign(
    ctx: &mut Ctx<'_>,
    rng: &mut FaultRng,
    goal: &Goal,
    point: &str,
    t0: u64,
) -> Result<(Vec<PlannedHost>, Vec<PlannedStep>), PlanError> {
    let Some(Node::ScadaPoint {
        source,
        address,
        alarm,
        ..
    }) = ctx.graph.node(&format!("point:{point}")).cloned()
    else {
        let known = ctx
            .graph
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::ScadaPoint { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        return Err(PlanError::UnknownTarget {
            goal: goal.to_string(),
            known,
        });
    };

    let direction = match alarm {
        None => {
            return Err(PlanError::Unreachable {
                goal: goal.to_string(),
                reason: format!("no alarm rule watches point {point}"),
            })
        }
        Some(AlarmDir::BecomesTrue | AlarmDir::BecomesFalse) => {
            return Err(PlanError::Unreachable {
                goal: goal.to_string(),
                reason: format!(
                    "the alarm on {point} is edge-triggered by a protection/breaker \
                     state bit; no traffic transform can force it"
                ),
            })
        }
        Some(AlarmDir::High(_)) => true,
        Some(AlarmDir::Low(_)) => false,
    };
    // Push displayed values far across the limit in the alarmed direction.
    let transform = match &address {
        PointAddr::Modbus { kind, .. } => {
            if *kind != "holding" && *kind != "input" {
                return Err(PlanError::Unreachable {
                    goal: goal.to_string(),
                    reason: format!(
                        "point {point} is a {kind} bit; register transforms cannot move it"
                    ),
                });
            }
            PlannedTransform::ScaleModbusRegisters(if direction { 1000.0 } else { 0.0 })
        }
        PointAddr::Mms { .. } => {
            PlannedTransform::ScaleMmsFloats(if direction { 1000.0 } else { 0.0 })
        }
    };

    let scada = ctx
        .graph
        .nodes
        .iter()
        .find_map(|n| match n {
            Node::Host {
                name,
                role: HostRole::Scada,
                ..
            } => Some(name.clone()),
            _ => None,
        })
        .ok_or_else(|| PlanError::Unreachable {
            goal: goal.to_string(),
            reason: "the model has no SCADA host to deceive".to_string(),
        })?;
    let (scada_ip, scada_switch) = ctx
        .host_info(&scada)
        .ok_or_else(|| PlanError::Unreachable {
            goal: goal.to_string(),
            reason: format!("SCADA host {scada} is not on the network plan"),
        })?;

    ctx.budget_check(goal, false)?;

    let mut hosts = Vec::new();
    let mut steps = Vec::new();

    // Recon sweep of the SCADA segment (where the MitM will sit).
    let segment_ips = ctx.segment_ips(&scada_switch);
    let first = segment_ips.iter().copied().min().unwrap_or(scada_ip);
    let last = segment_ips.iter().copied().max().unwrap_or(scada_ip);
    let scan_host = ctx.alloc_host(rng, &scada_switch, scada_ip);
    steps.push(PlannedStep {
        id: "adv-scan".to_string(),
        start: PlannedStart::At(t0),
        action: PlannedAction::Scan {
            host: scan_host.name.clone(),
            first,
            last,
            ports: vec![102, 502],
        },
    });
    hosts.push(scan_host);

    let mitm_host = ctx.alloc_host(rng, &scada_switch, scada_ip);
    let delay = 300 + rng.below(3) * 100;
    steps.push(PlannedStep {
        id: "adv-strike".to_string(),
        start: PlannedStart::After {
            step: "adv-scan".to_string(),
            delay_ms: delay,
        },
        action: PlannedAction::Mitm {
            host: mitm_host.name.clone(),
            victim_a: scada,
            victim_b: source,
            duration_ms: TRANSFORM_MITM_MS,
            transform,
        },
    });
    hosts.push(mitm_host);
    Ok((hosts, steps))
}

impl Ctx<'_> {
    /// Enforces the action budget; returns whether an optional recon MitM
    /// step fits (three-action campaigns when the budget allows).
    fn budget_check(&self, goal: &Goal, mitm_available: bool) -> Result<bool, PlanError> {
        // Budget accounting is resolved before any per-step RNG draws so
        // tightening the budget never shifts the surviving steps' choices.
        let budget = self.budget;
        if budget < MIN_ACTIONS {
            return Err(PlanError::BudgetTooSmall {
                goal: goal.to_string(),
                needed: MIN_ACTIONS,
                budget,
            });
        }
        Ok(mitm_available && budget >= 3)
    }
}
