//! Autonomous adversary plane for the smart grid cyber range.
//!
//! Two layers, mirroring the split argued for by "AI-based Attacker
//! Models for Enhancing Multi-Stage Cyberattack Simulations" over the
//! substrate of "Graph-based Model of Smart Grid Architectures":
//!
//! 1. **[`graph`]** — [`AttackGraph::derive`] walks a compiled SG-ML
//!    model (network plan, IED protection/GOOSE specs, PLC bindings,
//!    SCADA blueprint) into a typed graph of attacker-relevant nodes,
//!    every edge labeled with the attack primitive that traverses it
//!    (scan, ARP MitM, FCI, trip, observe). Node ordering is
//!    deterministic; JSON and DOT exporters feed the
//!    `sgml_processor attack-graph` CLI.
//! 2. **[`plan`](mod@plan)** — a seeded deterministic planner ([`plan::plan`])
//!    searches the graph for a multi-stage campaign (scan → ARP MitM →
//!    FCI) reaching a declared goal within an action budget. All
//!    randomness comes from the SplitMix64 [`sgcr_faults::FaultRng`], so
//!    the same seed replays the same campaign byte-for-byte.
//!
//! The planner emits neutral [`CampaignPlan`] data; `sgcr-scenario`
//! converts it into ordinary exercise stages so objectives, journal
//! events, spans, and after-action reports work unchanged.

pub mod graph;
pub mod plan;

pub use graph::{AlarmDir, AttackGraph, Edge, EdgeKind, HostRole, Node, PointAddr, Primitive};
pub use plan::{
    plan, CampaignPlan, Goal, PlanError, PlanRequest, PlannedAction, PlannedHost, PlannedStart,
    PlannedStep, PlannedTransform,
};

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use sgcr_core::{CompiledModel, SgmlBundle};

    fn epic_graph() -> AttackGraph {
        let bundle: SgmlBundle = sgcr_models::epic_bundle();
        let model = CompiledModel::compile(&bundle).expect("EPIC compiles");
        AttackGraph::derive(&model)
    }

    #[test]
    fn derives_protection_and_goose_edges_for_epic() {
        let graph = epic_graph();
        // GIED1's PTOC trips the generator breaker.
        assert!(
            graph.has_edge(
                "host:GIED1",
                "breaker:EPIC/CB_GEN",
                EdgeKind::ProtectionTrips
            ),
            "missing GIED1 -> EPIC/CB_GEN protection edge"
        );
        // CPLC subscribes to GIED1's GOOSE control block.
        assert!(
            graph.has_edge("host:GIED1", "host:CPLC", EdgeKind::GooseSubscription),
            "missing GIED1 -> CPLC GOOSE subscription edge"
        );
        // The generator breaker is operable over MMS from GIED1.
        assert!(
            graph.has_edge(
                "host:GIED1",
                "breaker:EPIC/CB_GEN",
                EdgeKind::BreakerControl
            ),
            "missing GIED1 -> EPIC/CB_GEN breaker-control edge"
        );
    }

    #[test]
    fn graph_exports_are_deterministic() {
        let a = epic_graph().to_json();
        let b = epic_graph().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"nodes\":["));
        let dot = epic_graph().to_dot();
        assert!(dot.starts_with("digraph attack_graph"));
        assert!(dot.contains("breaker:EPIC/CB_GEN"));
    }

    #[test]
    fn plans_breaker_campaign_and_replays_byte_identically() {
        let graph = epic_graph();
        let request = PlanRequest {
            goal: "breakerOpen:EPIC/CB_GEN",
            budget: 4,
            seed: 7,
            ..PlanRequest::default()
        };
        let first = plan(&graph, &request).expect("plannable goal");
        let second = plan(&graph, &request).expect("plannable goal");
        assert_eq!(first.to_json(), second.to_json());
        assert!(
            first.steps.len() >= 2,
            "campaign should be multi-stage, got {}",
            first.steps.len()
        );
        assert_eq!(first.steps[0].action.kind(), "scan");
        let strike = first.steps.last().expect("non-empty plan");
        assert_eq!(strike.action.kind(), "fci");
        match &strike.action {
            PlannedAction::Fci { item, value, .. } => {
                assert!(
                    item.contains("CSWI"),
                    "strike item {item:?} is not a CSWI operate"
                );
                assert!(!value, "breakerOpen must forge an open command");
            }
            other => panic!("unexpected strike {other:?}"),
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let graph = epic_graph();
        let base = PlanRequest {
            goal: "breakerOpen:EPIC/CB_GEN",
            budget: 4,
            seed: 7,
            ..PlanRequest::default()
        };
        let first = plan(&graph, &base).expect("plannable goal");
        let diverged = (1..64).any(|seed| {
            let other = plan(
                &graph,
                &PlanRequest {
                    seed,
                    ..base.clone()
                },
            )
            .expect("plannable goal");
            other.to_json() != first.to_json()
        });
        assert!(diverged, "64 seeds produced identical plans");
    }

    #[test]
    fn errors_are_specific() {
        let graph = epic_graph();
        let err = |goal: &str, budget: u32| {
            plan(
                &graph,
                &PlanRequest {
                    goal,
                    budget,
                    seed: 1,
                    ..PlanRequest::default()
                },
            )
            .expect_err("must fail")
        };
        assert!(matches!(err("open sesame", 4), PlanError::BadGoal { .. }));
        assert!(matches!(
            err("breakerOpen:EPIC/CB_NOPE", 4),
            PlanError::UnknownTarget { .. }
        ));
        assert!(matches!(
            err("breakerOpen:EPIC/CB_GEN", 1),
            PlanError::BudgetTooSmall {
                needed: 2,
                budget: 1,
                ..
            }
        ));
        // GenProt_trip is a state-bit alarm: edge-triggered, not forgeable
        // by traffic transforms.
        assert!(matches!(
            err("scadaAlarm:GenProt_trip", 4),
            PlanError::Unreachable { .. }
        ));
    }

    #[test]
    fn plans_scada_alarm_campaign() {
        let graph = epic_graph();
        let campaign = plan(
            &graph,
            &PlanRequest {
                goal: "scadaAlarm:GenFeeder_kW",
                budget: 3,
                seed: 11,
                ..PlanRequest::default()
            },
        )
        .expect("threshold alarm is reachable");
        let strike = campaign.steps.last().expect("non-empty plan");
        match &strike.action {
            PlannedAction::Mitm { transform, .. } => {
                assert!(matches!(
                    transform,
                    PlannedTransform::ScaleModbusRegisters(f) if *f > 1.0
                ));
            }
            other => panic!("unexpected strike {other:?}"),
        }
    }
}
