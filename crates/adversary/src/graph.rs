//! Attack-graph derivation: walking a [`CompiledModel`] into a typed graph
//! of attacker-relevant nodes and edges.
//!
//! The graph is the substrate the planner searches (and the `attack-graph`
//! CLI exports): hosts and switches from the network plan, protocol
//! endpoints the devices serve, IED↔breaker protection/control
//! dependencies, PLC MMS polling/command bindings, GOOSE subscriptions,
//! and SCADA polling with the HMI points each source feeds. Every edge is
//! labeled with the `sgcr-attack` primitive that traverses it, so a path
//! through the graph *is* a campaign sketch.
//!
//! Derivation is a pure function of the model: node and edge order follow
//! the model's own declaration order, so two derivations of the same model
//! are byte-identical in every export format.

use sgcr_core::CompiledModel;
use sgcr_ied::ProtectionSpec;
use sgcr_net::Ipv4Addr;
use sgcr_obs::json::{number, quote};
use sgcr_scada::{AlarmKind, PointAddress};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// What a host *is*, as far as an attacker cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostRole {
    /// An IEC 61850 IED (MMS server, GOOSE publisher).
    Ied,
    /// A PLC (MMS client towards IEDs, Modbus server towards SCADA).
    Plc,
    /// The SCADA/HMI workstation (polls everything).
    Scada,
    /// Anything else on the network plan.
    Other,
}

impl HostRole {
    /// Lower-camel name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            HostRole::Ied => "ied",
            HostRole::Plc => "plc",
            HostRole::Scada => "scada",
            HostRole::Other => "host",
        }
    }
}

/// An application protocol an endpoint speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// IEC 61850 MMS over TCP 102.
    Mms,
    /// Modbus TCP over 502.
    Modbus,
    /// IEC 61850 GOOSE (layer-2 multicast, no TCP port).
    Goose,
}

impl Protocol {
    /// Lower-case name used in exports and node ids.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Mms => "mms",
            Protocol::Modbus => "modbus",
            Protocol::Goose => "goose",
        }
    }

    /// The TCP port, when the protocol has one.
    pub fn port(self) -> Option<u16> {
        match self {
            Protocol::Mms => Some(102),
            Protocol::Modbus => Some(502),
            Protocol::Goose => None,
        }
    }
}

/// Direction of a SCADA alarm rule, as attacker-relevant reachability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlarmDir {
    /// Raised when the displayed value exceeds the limit.
    High(f64),
    /// Raised when the displayed value drops below the limit.
    Low(f64),
    /// Raised when a boolean point becomes true.
    BecomesTrue,
    /// Raised when a boolean point becomes false.
    BecomesFalse,
}

impl AlarmDir {
    /// Export rendering (`high:40`, `true`, …).
    pub fn render(self) -> String {
        match self {
            AlarmDir::High(limit) => format!("high:{}", number(limit)),
            AlarmDir::Low(limit) => format!("low:{}", number(limit)),
            AlarmDir::BecomesTrue => "true".to_string(),
            AlarmDir::BecomesFalse => "false".to_string(),
        }
    }
}

/// How a SCADA point is addressed on its source, as the attacker sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum PointAddr {
    /// A Modbus table entry (`holding:0`, `coil:2`, …).
    Modbus {
        /// Table kind name (`coil`/`discrete`/`holding`/`input`).
        kind: &'static str,
        /// Register/bit index.
        address: u16,
    },
    /// An MMS item id on the source device.
    Mms {
        /// Full item reference.
        item: String,
    },
}

impl PointAddr {
    /// Export rendering (`holding:0`, `mms:TIED1LD0/…`).
    pub fn render(&self) -> String {
        match self {
            PointAddr::Modbus { kind, address } => format!("{kind}:{address}"),
            PointAddr::Mms { item } => format!("mms:{item}"),
        }
    }
}

/// One node of the attack graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A network segment switch.
    Switch {
        /// Switch (subnetwork) name.
        name: String,
        /// Whether this is the WAN backbone switch.
        wan: bool,
    },
    /// A host on the network plan.
    Host {
        /// Host name.
        name: String,
        /// Planned IPv4 address.
        ip: Ipv4Addr,
        /// Switch the host attaches to.
        switch: String,
        /// What the host is.
        role: HostRole,
    },
    /// A protocol endpoint a host serves.
    Endpoint {
        /// Serving host name.
        host: String,
        /// Protocol spoken.
        protocol: Protocol,
    },
    /// A physical breaker reachable through some IED.
    Breaker {
        /// Scoped power-model switch name (`EPIC/CB_GEN`).
        name: String,
    },
    /// An HMI data point (tag).
    ScadaPoint {
        /// Tag name, unique across the HMI.
        name: String,
        /// Host name of the data source feeding the tag.
        source: String,
        /// How the tag is addressed on the source.
        address: PointAddr,
        /// The alarm rule watching the tag, when one exists.
        alarm: Option<AlarmDir>,
    },
}

impl Node {
    /// The node's stable string id (`host:GIED1`, `breaker:EPIC/CB_GEN`).
    pub fn id(&self) -> String {
        match self {
            Node::Switch { name, .. } => format!("switch:{name}"),
            Node::Host { name, .. } => format!("host:{name}"),
            Node::Endpoint { host, protocol } => {
                format!("endpoint:{host}:{}", protocol.name())
            }
            Node::Breaker { name } => format!("breaker:{name}"),
            Node::ScadaPoint { name, .. } => format!("point:{name}"),
        }
    }

    /// The node kind name used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Node::Switch { .. } => "switch",
            Node::Host { .. } => "host",
            Node::Endpoint { .. } => "endpoint",
            Node::Breaker { .. } => "breaker",
            Node::ScadaPoint { .. } => "scadaPoint",
        }
    }
}

/// The attacker-relevant relation an edge encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Host is attached to a switch (segment membership).
    Attached,
    /// Host serves a protocol endpoint.
    Serves,
    /// A PLC periodically reads an MMS item from an IED.
    MmsRead,
    /// A PLC writes an MMS control item on an IED.
    MmsWrite,
    /// An IED's GOOSE publication is consumed by the target host.
    GooseSubscription,
    /// An IED's protection function trips a breaker.
    ProtectionTrips,
    /// An IED exposes operate control over a breaker (CSWI → XCBR).
    BreakerControl,
    /// The SCADA host polls a data source.
    ScadaPoll,
    /// A data source feeds an HMI point.
    Feeds,
}

impl EdgeKind {
    /// Lower-camel name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Attached => "attached",
            EdgeKind::Serves => "serves",
            EdgeKind::MmsRead => "mmsRead",
            EdgeKind::MmsWrite => "mmsWrite",
            EdgeKind::GooseSubscription => "gooseSubscription",
            EdgeKind::ProtectionTrips => "protectionTrips",
            EdgeKind::BreakerControl => "breakerControl",
            EdgeKind::ScadaPoll => "scadaPoll",
            EdgeKind::Feeds => "feeds",
        }
    }
}

/// The `sgcr-attack` primitive that traverses (or exploits) an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// ARP sweep + TCP port scan discovers the far node.
    Scan,
    /// ARP-spoofing man-in-the-middle intercepts the relation's traffic.
    ArpMitm,
    /// False command injection rides the relation to actuate.
    Fci,
    /// The relation fires autonomously once its input condition holds.
    Trip,
    /// Passive observation (eavesdropping) of the relation's traffic.
    Observe,
}

impl Primitive {
    /// Lower-camel name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Primitive::Scan => "scan",
            Primitive::ArpMitm => "arpMitm",
            Primitive::Fci => "fci",
            Primitive::Trip => "trip",
            Primitive::Observe => "observe",
        }
    }
}

/// One directed edge of the attack graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source node id.
    pub from: String,
    /// Target node id.
    pub to: String,
    /// The relation this edge encodes.
    pub kind: EdgeKind,
    /// The attack primitive that traverses it.
    pub primitive: Primitive,
    /// The concrete item/reference the relation rides on (MMS item,
    /// gocbRef, source name), when one exists.
    pub via: Option<String>,
}

/// The derived attack graph of one compiled model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttackGraph {
    /// Nodes in deterministic model-declaration order.
    pub nodes: Vec<Node>,
    /// Edges in deterministic derivation order (deduplicated).
    pub edges: Vec<Edge>,
}

impl AttackGraph {
    /// Derives the attack graph from a compiled model. Pure: identical
    /// models produce identical graphs, byte-for-byte in every export.
    pub fn derive(model: &CompiledModel) -> AttackGraph {
        let mut graph = AttackGraph::default();
        let mut edge_keys: BTreeSet<String> = BTreeSet::new();
        let mut push_edge = |edges: &mut Vec<Edge>, edge: Edge| {
            let key = format!(
                "{}\u{1}{}\u{1}{}\u{1}{}",
                edge.from,
                edge.to,
                edge.kind.name(),
                edge.via.as_deref().unwrap_or("")
            );
            if edge_keys.insert(key) {
                edges.push(edge);
            }
        };

        let role_of = |name: &str| {
            if model.ieds.iter().any(|i| i.name == name) {
                HostRole::Ied
            } else if model.plcs.iter().any(|p| p.name == name) {
                HostRole::Plc
            } else if model.scada.as_ref().is_some_and(|s| s.host == name) {
                HostRole::Scada
            } else {
                HostRole::Other
            }
        };
        let host_by_ip = |ip: Ipv4Addr| {
            model
                .plan
                .hosts
                .iter()
                .find(|h| h.ip == ip)
                .map(|h| h.name.clone())
        };

        // --- Topology: switches, hosts, segment membership ----------------
        for sw in &model.plan.switches {
            graph.nodes.push(Node::Switch {
                name: sw.name.clone(),
                wan: sw.is_wan,
            });
        }
        for host in &model.plan.hosts {
            graph.nodes.push(Node::Host {
                name: host.name.clone(),
                ip: host.ip,
                switch: host.switch.clone(),
                role: role_of(&host.name),
            });
            push_edge(
                &mut graph.edges,
                Edge {
                    from: format!("host:{}", host.name),
                    to: format!("switch:{}", host.switch),
                    kind: EdgeKind::Attached,
                    primitive: Primitive::Scan,
                    via: None,
                },
            );
        }

        // --- Protocol endpoints -------------------------------------------
        for host in &model.plan.hosts {
            let endpoints: Vec<(Protocol, Primitive)> = match role_of(&host.name) {
                HostRole::Ied => {
                    let mut eps = vec![(Protocol::Mms, Primitive::Scan)];
                    if model
                        .ieds
                        .iter()
                        .any(|i| i.name == host.name && i.goose.is_some())
                    {
                        eps.push((Protocol::Goose, Primitive::Observe));
                    }
                    eps
                }
                HostRole::Plc => vec![(Protocol::Modbus, Primitive::Scan)],
                HostRole::Scada | HostRole::Other => Vec::new(),
            };
            for (protocol, primitive) in endpoints {
                let node = Node::Endpoint {
                    host: host.name.clone(),
                    protocol,
                };
                let id = node.id();
                graph.nodes.push(node);
                push_edge(
                    &mut graph.edges,
                    Edge {
                        from: format!("host:{}", host.name),
                        to: id,
                        kind: EdgeKind::Serves,
                        primitive,
                        via: None,
                    },
                );
            }
        }

        // --- Breakers: protection dependencies and control paths ----------
        let mut breakers_seen: BTreeSet<String> = BTreeSet::new();
        for ied in &model.ieds {
            for breaker in &ied.breakers {
                let scoped = format!("{}/{}", ied.substation, breaker.name);
                if breakers_seen.insert(scoped.clone()) {
                    graph.nodes.push(Node::Breaker {
                        name: scoped.clone(),
                    });
                }
                push_edge(
                    &mut graph.edges,
                    Edge {
                        from: format!("host:{}", ied.name),
                        to: format!("breaker:{scoped}"),
                        kind: EdgeKind::BreakerControl,
                        primitive: Primitive::Fci,
                        via: Some(format!("{}/{}$CO$Pos$Oper$ctlVal", ied.ld, breaker.cswi)),
                    },
                );
            }
            for protection in &ied.protections {
                let tripped = match protection {
                    ProtectionSpec::Ptoc { breaker, .. }
                    | ProtectionSpec::Ptov { breaker, .. }
                    | ProtectionSpec::Ptuv { breaker, .. }
                    | ProtectionSpec::Pdif { breaker, .. } => Some(breaker),
                    // CILO gates close commands; it never trips.
                    ProtectionSpec::Cilo { .. } => None,
                };
                if let Some(breaker) = tripped {
                    let scoped = format!("{}/{breaker}", ied.substation);
                    if breakers_seen.insert(scoped.clone()) {
                        graph.nodes.push(Node::Breaker {
                            name: scoped.clone(),
                        });
                    }
                    push_edge(
                        &mut graph.edges,
                        Edge {
                            from: format!("host:{}", ied.name),
                            to: format!("breaker:{scoped}"),
                            kind: EdgeKind::ProtectionTrips,
                            primitive: Primitive::Trip,
                            via: Some(protection.ln().to_string()),
                        },
                    );
                }
            }
        }

        // --- PLC bindings: polls, commands, GOOSE subscriptions -----------
        let goose_publisher = |gocb_ref: &str| {
            model
                .ieds
                .iter()
                .find(|i| i.goose.as_ref().is_some_and(|g| g.gocb_ref == gocb_ref))
                .map(|i| i.name.clone())
        };
        for plc in &model.plcs {
            for read in &plc.reads {
                if let Some(server) = host_by_ip(read.server) {
                    push_edge(
                        &mut graph.edges,
                        Edge {
                            from: format!("host:{}", plc.name),
                            to: format!("host:{server}"),
                            kind: EdgeKind::MmsRead,
                            primitive: Primitive::ArpMitm,
                            via: Some(read.item.clone()),
                        },
                    );
                }
            }
            for write in &plc.writes {
                if let Some(server) = host_by_ip(write.server) {
                    push_edge(
                        &mut graph.edges,
                        Edge {
                            from: format!("host:{}", plc.name),
                            to: format!("host:{server}"),
                            kind: EdgeKind::MmsWrite,
                            primitive: Primitive::Fci,
                            via: Some(write.item.clone()),
                        },
                    );
                }
            }
            for goose in &plc.gooses {
                if let Some(publisher) = goose_publisher(&goose.gocb_ref) {
                    push_edge(
                        &mut graph.edges,
                        Edge {
                            from: format!("host:{publisher}"),
                            to: format!("host:{}", plc.name),
                            kind: EdgeKind::GooseSubscription,
                            primitive: Primitive::Observe,
                            via: Some(goose.gocb_ref.clone()),
                        },
                    );
                }
            }
        }
        // CILO interlocks subscribe to remote breaker state over GOOSE.
        for ied in &model.ieds {
            for protection in &ied.protections {
                if let ProtectionSpec::Cilo { monitored, .. } = protection {
                    for remote in monitored {
                        if let Some(publisher) = goose_publisher(&remote.gocb_ref) {
                            push_edge(
                                &mut graph.edges,
                                Edge {
                                    from: format!("host:{publisher}"),
                                    to: format!("host:{}", ied.name),
                                    kind: EdgeKind::GooseSubscription,
                                    primitive: Primitive::Observe,
                                    via: Some(remote.gocb_ref.clone()),
                                },
                            );
                        }
                    }
                }
            }
        }

        // --- SCADA: polling relations and the points they feed ------------
        if let Some(scada) = &model.scada {
            for source in &scada.config.sources {
                let Some(server) = source.ip.parse::<Ipv4Addr>().ok().and_then(host_by_ip) else {
                    continue;
                };
                push_edge(
                    &mut graph.edges,
                    Edge {
                        from: format!("host:{}", scada.host),
                        to: format!("host:{server}"),
                        kind: EdgeKind::ScadaPoll,
                        primitive: Primitive::ArpMitm,
                        via: Some(source.name.clone()),
                    },
                );
                for point in &source.points {
                    let address = match &point.address {
                        PointAddress::Modbus { kind, address } => PointAddr::Modbus {
                            kind: kind.name(),
                            address: *address,
                        },
                        PointAddress::Mms { item } => PointAddr::Mms { item: item.clone() },
                    };
                    let alarm = scada
                        .config
                        .alarms
                        .iter()
                        .find(|a| a.point == point.name)
                        .map(|a| match a.kind {
                            AlarmKind::High(limit) => AlarmDir::High(limit),
                            AlarmKind::Low(limit) => AlarmDir::Low(limit),
                            AlarmKind::StateTrue => AlarmDir::BecomesTrue,
                            AlarmKind::StateFalse => AlarmDir::BecomesFalse,
                        });
                    let node = Node::ScadaPoint {
                        name: point.name.clone(),
                        source: server.clone(),
                        address: address.clone(),
                        alarm,
                    };
                    let id = node.id();
                    graph.nodes.push(node);
                    push_edge(
                        &mut graph.edges,
                        Edge {
                            from: format!("host:{server}"),
                            to: id,
                            kind: EdgeKind::Feeds,
                            primitive: Primitive::Observe,
                            via: Some(address.render()),
                        },
                    );
                }
            }
        }

        graph
    }

    /// Finds a node by its stable id.
    pub fn node(&self, id: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id() == *id)
    }

    /// The host node for a host name, if planned.
    pub fn host(&self, name: &str) -> Option<&Node> {
        self.node(&format!("host:{name}"))
    }

    /// Edges of a given kind, in derivation order.
    pub fn edges_of(&self, kind: EdgeKind) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// True when an edge `from → to` of `kind` exists.
    pub fn has_edge(&self, from: &str, to: &str, kind: EdgeKind) -> bool {
        self.edges
            .iter()
            .any(|e| e.kind == kind && e.from == from && e.to == to)
    }

    /// Serializes the graph as deterministic JSON (stable key and element
    /// order), the machine-readable form of `attack-graph --format json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"nodes\":[");
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"kind\":{}",
                quote(&node.id()),
                quote(node.kind())
            );
            match node {
                Node::Switch { name, wan } => {
                    let _ = write!(out, ",\"name\":{},\"wan\":{wan}", quote(name));
                }
                Node::Host {
                    name,
                    ip,
                    switch,
                    role,
                } => {
                    let _ = write!(
                        out,
                        ",\"name\":{},\"ip\":{},\"switch\":{},\"role\":{}",
                        quote(name),
                        quote(&ip.to_string()),
                        quote(switch),
                        quote(role.name())
                    );
                }
                Node::Endpoint { host, protocol } => {
                    let _ = write!(
                        out,
                        ",\"host\":{},\"protocol\":{}",
                        quote(host),
                        quote(protocol.name())
                    );
                    if let Some(port) = protocol.port() {
                        let _ = write!(out, ",\"port\":{port}");
                    }
                }
                Node::Breaker { name } => {
                    let _ = write!(out, ",\"name\":{}", quote(name));
                }
                Node::ScadaPoint {
                    name,
                    source,
                    address,
                    alarm,
                } => {
                    let _ = write!(
                        out,
                        ",\"name\":{},\"source\":{},\"address\":{}",
                        quote(name),
                        quote(source),
                        quote(&address.render())
                    );
                    if let Some(alarm) = alarm {
                        let _ = write!(out, ",\"alarm\":{}", quote(&alarm.render()));
                    }
                }
            }
            out.push('}');
        }
        out.push_str("],\"edges\":[");
        for (i, edge) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from\":{},\"to\":{},\"kind\":{},\"primitive\":{}",
                quote(&edge.from),
                quote(&edge.to),
                quote(edge.kind.name()),
                quote(edge.primitive.name())
            );
            if let Some(via) = &edge.via {
                let _ = write!(out, ",\"via\":{}", quote(via));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the graph in Graphviz dot format (the sibling of
    /// [`NetworkPlan::to_dot`](sgcr_core::NetworkPlan) for the adversary
    /// plane): node shapes by kind, edges labeled `kind·primitive`.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph attack_graph {\n  rankdir=LR;\n");
        for node in &self.nodes {
            let (shape, label) = match node {
                Node::Switch { name, wan } => (
                    "diamond",
                    if *wan {
                        format!("{name}\\n(wan)")
                    } else {
                        name.clone()
                    },
                ),
                Node::Host { name, ip, role, .. } => {
                    ("box", format!("{name}\\n{ip} ({})", role.name()))
                }
                Node::Endpoint { host, protocol } => (
                    "ellipse",
                    match protocol.port() {
                        Some(port) => format!("{host}:{port}\\n{}", protocol.name()),
                        None => format!("{host}\\n{}", protocol.name()),
                    },
                ),
                Node::Breaker { name } => ("octagon", name.clone()),
                Node::ScadaPoint { name, alarm, .. } => (
                    "note",
                    match alarm {
                        Some(alarm) => format!("{name}\\nalarm {}", alarm.render()),
                        None => name.clone(),
                    },
                ),
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{label}\"];",
                node.id()
            );
        }
        for edge in &self.edges {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\\n{}\"];",
                edge.from,
                edge.to,
                edge.kind.name(),
                edge.primitive.name()
            );
        }
        out.push_str("}\n");
        out
    }
}
