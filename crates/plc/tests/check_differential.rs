//! Differential tests between the semantic checker and the interpreter:
//! the checker's contract is that every Error-severity finding corresponds
//! to a possible `RuntimeError`, and — the direction these tests pin — a
//! program the checker accepts (no Error findings) never faults when the
//! interpreter actually runs it.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic

use sgcr_plc::{check_program, parse_program, CheckSeverity, Interpreter};
use std::collections::BTreeSet;

/// Programs the checker must accept — and which must then survive scans.
const ACCEPTED: &[(&str, &str)] = &[
    (
        "arithmetic and feedback across scans",
        "PROGRAM p
         VAR n : INT; total : REAL; avg : REAL; END_VAR
         n := n + 1;
         total := total + 0.5;
         avg := total / 2.0;
         END_PROGRAM",
    ),
    (
        "timers, triggers, and counters",
        "PROGRAM p
         VAR t1 : TON; e : R_TRIG; c : CTU; run : BOOL := TRUE;
             fired : BOOL; edge : BOOL; hits : INT; done : BOOL; END_VAR
         t1(IN := run, PT := T#10ms, Q => fired);
         e(CLK := fired, Q => edge);
         c(CU := edge, R := FALSE, PV := 3, Q => done, CV => hits);
         END_PROGRAM",
    ),
    (
        "bounded loops, CASE, and EXIT",
        "PROGRAM p
         VAR i : INT; acc : INT; sel : INT := 2; label : STRING; END_VAR
         FOR i := 1 TO 10 BY 2 DO
             acc := acc + i;
             IF acc > 12 THEN EXIT; END_IF;
         END_FOR;
         CASE sel OF
             1: label := 'one';
             2: label := 'two';
         ELSE label := 'many';
         END_CASE;
         WHILE acc > 0 DO acc := acc - 1; END_WHILE;
         END_PROGRAM",
    ),
    (
        "builtins over mixed numerics",
        "PROGRAM p
         VAR x : REAL := 9.0; y : REAL; k : INT; END_VAR
         y := LIMIT(0.0, SQRT(ABS(x)), 10.0);
         k := TO_INT(MIN(y, 2.5)) + MAX(1, 2, 3);
         END_PROGRAM",
    ),
];

/// Programs the checker must reject with an Error — each one faults (or
/// would exhaust the loop budget) when run as written.
const REJECTED: &[(&str, &str)] = &[
    (
        "division by a literal zero",
        "PROGRAM p VAR x : INT := 1; y : INT; END_VAR y := x / 0; END_PROGRAM",
    ),
    (
        "read of an undeclared, unassigned variable",
        "PROGRAM p VAR y : INT; END_VAR y := ghost; END_PROGRAM",
    ),
    (
        "logic operator over non-boolean operands",
        "PROGRAM p VAR s : STRING := 'a'; b : BOOL; END_VAR b := s AND TRUE; END_PROGRAM",
    ),
    (
        "string compared against an integer",
        "PROGRAM p VAR s : STRING := 'a'; b : BOOL; END_VAR b := s > 1; END_PROGRAM",
    ),
    (
        "endless loop exhausts the scan budget",
        "PROGRAM p VAR n : INT; END_VAR WHILE TRUE DO n := n + 1; END_WHILE; END_PROGRAM",
    ),
    (
        "unknown function-block output capture",
        "PROGRAM p VAR t : TON; b : BOOL := TRUE; o : BOOL; END_VAR
         t(IN := b, PT := T#1ms, NOPE => o); END_PROGRAM",
    ),
];

fn errors(source: &str) -> Vec<String> {
    let program = parse_program(source).expect("corpus programs parse");
    check_program(&program, &BTreeSet::new())
        .into_iter()
        .filter(|f| f.severity == CheckSeverity::Error)
        .map(|f| format!("{:?} {}", f.code, f.message))
        .collect()
}

#[test]
fn accepted_programs_never_fault_at_runtime() {
    for (name, source) in ACCEPTED {
        let errs = errors(source);
        assert!(errs.is_empty(), "{name}: checker rejected it: {errs:?}");
        let program = parse_program(source).unwrap();
        let mut interp = Interpreter::new(program)
            .unwrap_or_else(|e| panic!("{name}: init faulted: {}", e.message));
        for scan in 0..50u64 {
            interp
                .scan(scan * 10_000_000)
                .unwrap_or_else(|e| panic!("{name}: scan {scan} faulted: {}", e.message));
        }
    }
}

#[test]
fn faulting_programs_are_rejected_by_the_checker() {
    for (name, source) in REJECTED {
        let errs = errors(source);
        assert!(
            !errs.is_empty(),
            "{name}: checker accepted a program that faults at runtime"
        );
        // And each really does fault: either at init, or within the budget.
        let program = parse_program(source).unwrap();
        let faulted = match Interpreter::new(program) {
            Err(_) => true,
            Ok(mut interp) => (0..50u64).any(|scan| interp.scan(scan * 10_000_000).is_err()),
        };
        assert!(faulted, "{name}: expected a RuntimeError, none occurred");
    }
}
