//! Property tests on the Structured Text engine: randomly generated integer
//! expressions must evaluate identically to a Rust reference evaluator, and
//! the lexer/parser must never panic on arbitrary input.

use proptest::prelude::*;
use sgcr_plc::{parse_program, parse_statements, Interpreter, StValue};

/// An integer expression tree we can render as ST and evaluate in Rust.
#[derive(Debug, Clone)]
enum IntExpr {
    Lit(i32),
    Var(usize),
    Add(Box<IntExpr>, Box<IntExpr>),
    Sub(Box<IntExpr>, Box<IntExpr>),
    Mul(Box<IntExpr>, Box<IntExpr>),
    Neg(Box<IntExpr>),
    Max(Box<IntExpr>, Box<IntExpr>),
    Abs(Box<IntExpr>),
}

fn expr_strategy() -> impl Strategy<Value = IntExpr> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(IntExpr::Lit),
        (0usize..4).prop_map(IntExpr::Var),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IntExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IntExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IntExpr::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| IntExpr::Neg(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IntExpr::Max(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| IntExpr::Abs(Box::new(a))),
        ]
    })
}

fn to_st(e: &IntExpr) -> String {
    match e {
        IntExpr::Lit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        IntExpr::Var(i) => format!("v{i}"),
        IntExpr::Add(a, b) => format!("({} + {})", to_st(a), to_st(b)),
        IntExpr::Sub(a, b) => format!("({} - {})", to_st(a), to_st(b)),
        IntExpr::Mul(a, b) => format!("({} * {})", to_st(a), to_st(b)),
        IntExpr::Neg(a) => format!("(-{})", to_st(a)),
        IntExpr::Max(a, b) => format!("TO_INT(MAX({}, {}))", to_st(a), to_st(b)),
        IntExpr::Abs(a) => format!("ABS({})", to_st(a)),
    }
}

fn reference_eval(e: &IntExpr, vars: &[i64; 4]) -> i64 {
    match e {
        IntExpr::Lit(v) => i64::from(*v),
        IntExpr::Var(i) => vars[*i],
        IntExpr::Add(a, b) => reference_eval(a, vars).wrapping_add(reference_eval(b, vars)),
        IntExpr::Sub(a, b) => reference_eval(a, vars).wrapping_sub(reference_eval(b, vars)),
        IntExpr::Mul(a, b) => reference_eval(a, vars).wrapping_mul(reference_eval(b, vars)),
        IntExpr::Neg(a) => -reference_eval(a, vars),
        // MAX promotes through f64 in the interpreter; mirror that.
        IntExpr::Max(a, b) => {
            let (x, y) = (
                reference_eval(a, vars) as f64,
                reference_eval(b, vars) as f64,
            );
            x.max(y) as i64
        }
        IntExpr::Abs(a) => reference_eval(a, vars).abs(),
    }
}

/// Expressions whose float detours stay exactly representable.
fn small_enough(e: &IntExpr, vars: &[i64; 4]) -> bool {
    fn walk(e: &IntExpr, vars: &[i64; 4]) -> Option<i64> {
        let v = match e {
            IntExpr::Lit(v) => i64::from(*v),
            IntExpr::Var(i) => vars[*i],
            IntExpr::Add(a, b) => walk(a, vars)?.checked_add(walk(b, vars)?)?,
            IntExpr::Sub(a, b) => walk(a, vars)?.checked_sub(walk(b, vars)?)?,
            IntExpr::Mul(a, b) => walk(a, vars)?.checked_mul(walk(b, vars)?)?,
            IntExpr::Neg(a) => walk(a, vars)?.checked_neg()?,
            IntExpr::Max(a, b) => walk(a, vars)?.max(walk(b, vars)?),
            IntExpr::Abs(a) => walk(a, vars)?.checked_abs()?,
        };
        (v.abs() < (1i64 << 50)).then_some(v)
    }
    walk(e, vars).is_some()
}

proptest! {
    #[test]
    fn interpreter_matches_reference(
        e in expr_strategy(),
        vars in any::<[i16; 4]>(),
    ) {
        let vars64 = [i64::from(vars[0]), i64::from(vars[1]), i64::from(vars[2]), i64::from(vars[3])];
        prop_assume!(small_enough(&e, &vars64));
        let src = format!(
            "PROGRAM p VAR v0 : DINT; v1 : DINT; v2 : DINT; v3 : DINT; out : DINT; END_VAR \
             out := {}; END_PROGRAM",
            to_st(&e)
        );
        let program = parse_program(&src).expect("generated ST parses");
        let mut interp = Interpreter::new(program).expect("instantiates");
        for (i, v) in vars64.iter().enumerate() {
            interp.set(&format!("v{i}"), StValue::Int(*v));
        }
        interp.scan(0).expect("scans");
        let got = interp.get("out").and_then(StValue::as_i64).expect("out set");
        prop_assert_eq!(got, reference_eval(&e, &vars64), "expr: {}", to_st(&e));
    }

    #[test]
    fn comparison_chain_matches(
        a in -100i64..100,
        b in -100i64..100,
    ) {
        let src = format!(
            "PROGRAM p VAR r1 : BOOL; r2 : BOOL; r3 : BOOL; END_VAR \
             r1 := {a} < {b}; r2 := {a} >= {b}; r3 := {a} = {b}; END_PROGRAM"
        );
        let program = parse_program(&src).expect("parses");
        let mut interp = Interpreter::new(program).expect("instantiates");
        interp.scan(0).expect("scans");
        prop_assert_eq!(interp.get("r1").and_then(StValue::as_bool), Some(a < b));
        prop_assert_eq!(interp.get("r2").and_then(StValue::as_bool), Some(a >= b));
        prop_assert_eq!(interp.get("r3").and_then(StValue::as_bool), Some(a == b));
    }

    #[test]
    fn for_loop_sum_matches(
        from in -20i64..20,
        to in -20i64..20,
        by in prop_oneof![Just(1i64), Just(2), Just(-1), Just(3)],
    ) {
        let src = format!(
            "PROGRAM p VAR s : DINT; i : DINT; END_VAR \
             FOR i := {from} TO {to} BY {by} DO s := s + i; END_FOR; END_PROGRAM"
        );
        let program = parse_program(&src).expect("parses");
        let mut interp = Interpreter::new(program).expect("instantiates");
        interp.scan(0).expect("scans");
        let mut expected = 0i64;
        let mut i = from;
        loop {
            if (by > 0 && i > to) || (by < 0 && i < to) {
                break;
            }
            expected += i;
            i += by;
        }
        prop_assert_eq!(interp.get("s").and_then(StValue::as_i64), Some(expected));
    }

    #[test]
    fn parser_never_panics(src in "[a-zA-Z0-9 :=;()<>+*/._$#'%-]{0,200}") {
        let _ = parse_statements(&src);
        let _ = parse_program(&src);
    }
}
