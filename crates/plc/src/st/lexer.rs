//! Lexer for IEC 61131-3 Structured Text.

use super::ast::Pos;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords matched case-insensitively upstream).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Time literal in nanoseconds (`T#5s`, `TIME#100ms`).
    Time(u64),
    /// String literal (single quotes in ST).
    Str(String),
    /// `:=`
    Assign,
    /// `=>` (output connection in FB calls)
    Arrow,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..` (CASE ranges)
    DotDot,
    /// `%QX0.0`-style direct address.
    DirectAddress(String),
    /// `#` (unused alone, kept for diagnostics)
    Hash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Real(v) => write!(f, "{v}"),
            Token::Time(ns) => write!(f, "T#{}ms", ns / 1_000_000),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::DirectAddress(a) => write!(f, "%{a}"),
            other => {
                let s = match other {
                    Token::Assign => ":=",
                    Token::Arrow => "=>",
                    Token::Eq => "=",
                    Token::Neq => "<>",
                    Token::Le => "<=",
                    Token::Ge => ">=",
                    Token::Lt => "<",
                    Token::Gt => ">",
                    Token::Plus => "+",
                    Token::Minus => "-",
                    Token::Star => "*",
                    Token::Slash => "/",
                    Token::LParen => "(",
                    Token::RParen => ")",
                    Token::Semicolon => ";",
                    Token::Colon => ":",
                    Token::Comma => ",",
                    Token::Dot => ".",
                    Token::DotDot => "..",
                    Token::Hash => "#",
                    _ => unreachable!(),
                };
                write!(f, "{s}")
            }
        }
    }
}

/// A lexing error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (0 if unknown).
    pub column: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(f, "{} at {}:{}", self.message, self.line, self.column)
        } else {
            write!(f, "{} at line {}", self.message, self.line)
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes ST source. Comments `(* … *)` and `// …` are skipped.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    Ok(tokenize_spanned(source)?
        .into_iter()
        .map(|(t, _)| t)
        .collect())
}

/// Tokenizes ST source, pairing every token with the 1-based line/column of
/// its first character. Comments `(* … *)` and `// …` are skipped.
pub fn tokenize_spanned(source: &str) -> Result<Vec<(Token, Pos)>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    // Index of the first character of the current line (for columns).
    let mut line_start = 0usize;
    let err = |message: &str, pos: Pos| LexError {
        message: message.to_string(),
        line: pos.line,
        column: pos.column,
    };

    while i < chars.len() {
        let c = chars[i];
        // Position of the token (or error) that starts at `i`.
        let pos = Pos::new(line, (i.saturating_sub(line_start) + 1) as u32);
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_whitespace() => i += 1,
            '(' if chars.get(i + 1) == Some(&'*') => {
                // Block comment.
                i += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(err("unterminated comment", pos));
                    }
                    if chars[i] == '\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    if chars[i] == '*' && chars[i + 1] == ')' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some('$') => {
                            // ST escape: $' $$ $L $N $R $T
                            i += 1;
                            match chars.get(i) {
                                Some('\'') => s.push('\''),
                                Some('$') => s.push('$'),
                                Some('N') | Some('n') | Some('L') | Some('l') => s.push('\n'),
                                Some('T') | Some('t') => s.push('\t'),
                                Some('R') | Some('r') => s.push('\r'),
                                other => {
                                    s.push('$');
                                    if let Some(&ch) = other {
                                        s.push(ch);
                                    }
                                }
                            }
                            i += 1;
                        }
                        Some(&ch) => {
                            if ch == '\n' {
                                line += 1;
                                line_start = i + 1;
                            }
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(err("unterminated string literal", pos)),
                    }
                }
                tokens.push((Token::Str(s), pos));
            }
            '%' => {
                // Direct address: %QX0.0, %IW3, %MD2 …
                i += 1;
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '.') {
                    i += 1;
                }
                if start == i {
                    return Err(err("empty direct address after '%'", pos));
                }
                tokens.push((
                    Token::DirectAddress(chars[start..i].iter().collect::<String>().to_uppercase()),
                    pos,
                ));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Radix literal: base '#' digits (16#FF, 2#1010, 8#17).
                if i < chars.len() && chars[i] == '#' {
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Real part: digits '.' digits (but not '..').
                let mut text: String = chars[start..i].iter().collect();
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    i += 1;
                    let fraction_start = i;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    text.push('.');
                    text.extend(&chars[fraction_start..i]);
                    let value: f64 = text
                        .replace('_', "")
                        .parse()
                        .map_err(|_| err("invalid real literal", pos))?;
                    tokens.push((Token::Real(value), pos));
                } else {
                    let cleaned = text.replace('_', "");
                    // Typed literals like 16#FF.
                    if let Some(rest) = cleaned.strip_prefix("16#") {
                        let value = i64::from_str_radix(rest, 16)
                            .map_err(|_| err("invalid hex literal", pos))?;
                        tokens.push((Token::Int(value), pos));
                    } else if let Some(rest) = cleaned.strip_prefix("2#") {
                        let value = i64::from_str_radix(rest, 2)
                            .map_err(|_| err("invalid binary literal", pos))?;
                        tokens.push((Token::Int(value), pos));
                    } else {
                        let value: i64 = cleaned
                            .parse()
                            .map_err(|_| err("invalid integer literal", pos))?;
                        tokens.push((Token::Int(value), pos));
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let upper = word.to_uppercase();
                // Time literal: T#…, TIME#…
                if (upper == "T" || upper == "TIME") && chars.get(i) == Some(&'#') {
                    i += 1;
                    let lit_start = i;
                    while i < chars.len()
                        && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                    {
                        i += 1;
                    }
                    let lit: String = chars[lit_start..i].iter().collect();
                    let ns = parse_time_literal(&lit)
                        .ok_or_else(|| err(&format!("invalid time literal T#{lit}"), pos))?;
                    tokens.push((Token::Time(ns), pos));
                } else {
                    tokens.push((Token::Ident(word), pos));
                }
            }
            ':' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push((Token::Assign, pos));
                    i += 2;
                } else {
                    tokens.push((Token::Colon, pos));
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push((Token::Arrow, pos));
                    i += 2;
                } else {
                    tokens.push((Token::Eq, pos));
                    i += 1;
                }
            }
            '<' => match chars.get(i + 1) {
                Some('>') => {
                    tokens.push((Token::Neq, pos));
                    i += 2;
                }
                Some('=') => {
                    tokens.push((Token::Le, pos));
                    i += 2;
                }
                _ => {
                    tokens.push((Token::Lt, pos));
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push((Token::Ge, pos));
                    i += 2;
                } else {
                    tokens.push((Token::Gt, pos));
                    i += 1;
                }
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    tokens.push((Token::DotDot, pos));
                    i += 2;
                } else {
                    tokens.push((Token::Dot, pos));
                    i += 1;
                }
            }
            '+' => {
                tokens.push((Token::Plus, pos));
                i += 1;
            }
            '-' => {
                tokens.push((Token::Minus, pos));
                i += 1;
            }
            '*' => {
                tokens.push((Token::Star, pos));
                i += 1;
            }
            '/' => {
                tokens.push((Token::Slash, pos));
                i += 1;
            }
            '(' => {
                tokens.push((Token::LParen, pos));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, pos));
                i += 1;
            }
            ';' => {
                tokens.push((Token::Semicolon, pos));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, pos));
                i += 1;
            }
            '#' => {
                tokens.push((Token::Hash, pos));
                i += 1;
            }
            other => {
                return Err(err(&format!("unexpected character {other:?}"), pos));
            }
        }
    }
    Ok(tokens)
}

/// Parses `5s`, `100ms`, `1m30s`, `0.5s`, `2h` into nanoseconds.
fn parse_time_literal(lit: &str) -> Option<u64> {
    let lit = lit.replace('_', "").to_lowercase();
    let mut total_ns: f64 = 0.0;
    let mut number = String::new();
    let mut unit = String::new();
    let mut parts: Vec<(f64, String)> = Vec::new();
    for c in lit.chars() {
        if c.is_ascii_digit() || c == '.' {
            if !unit.is_empty() {
                parts.push((number.parse().ok()?, unit.clone()));
                number.clear();
                unit.clear();
            }
            number.push(c);
        } else {
            unit.push(c);
        }
    }
    if number.is_empty() {
        return None;
    }
    parts.push((number.parse().ok()?, unit));
    for (value, unit) in parts {
        let factor: f64 = match unit.as_str() {
            "d" => 86_400e9,
            "h" => 3_600e9,
            "m" => 60e9,
            "s" => 1e9,
            "ms" => 1e6,
            "us" => 1e3,
            "ns" => 1.0,
            _ => return None,
        };
        total_ns += value * factor;
    }
    Some(total_ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let tokens = tokenize("x := (a + 2) * 3.5; // done").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::LParen,
                Token::Ident("a".into()),
                Token::Plus,
                Token::Int(2),
                Token::RParen,
                Token::Star,
                Token::Real(3.5),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let tokens = tokenize("a <> b <= c >= d < e > f = g").unwrap();
        let ops: Vec<&Token> = tokens
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Neq,
                &Token::Le,
                &Token::Ge,
                &Token::Lt,
                &Token::Gt,
                &Token::Eq
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let tokens = tokenize("(* multi\nline *) x // trailing\n := 1;").unwrap();
        assert_eq!(tokens.len(), 4);
    }

    #[test]
    fn time_literals() {
        assert_eq!(tokenize("T#5s").unwrap(), vec![Token::Time(5_000_000_000)]);
        assert_eq!(tokenize("T#100ms").unwrap(), vec![Token::Time(100_000_000)]);
        assert_eq!(
            tokenize("TIME#1m30s").unwrap(),
            vec![Token::Time(90_000_000_000)]
        );
        assert_eq!(tokenize("t#0.5s").unwrap(), vec![Token::Time(500_000_000)]);
        assert!(tokenize("T#5parsecs").is_err());
    }

    #[test]
    fn direct_addresses() {
        assert_eq!(
            tokenize("%QX0.0 %IW3").unwrap(),
            vec![
                Token::DirectAddress("QX0.0".into()),
                Token::DirectAddress("IW3".into())
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            tokenize("'it$'s$$ok'").unwrap(),
            vec![Token::Str("it's$ok".into())]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn hex_and_binary() {
        assert_eq!(tokenize("16#FF").unwrap(), vec![Token::Int(255)]);
        assert_eq!(tokenize("2#1010").unwrap(), vec![Token::Int(10)]);
    }

    #[test]
    fn dotdot_for_ranges() {
        assert_eq!(
            tokenize("1..5").unwrap(),
            vec![Token::Int(1), Token::DotDot, Token::Int(5)]
        );
    }

    #[test]
    fn error_positions() {
        let err = tokenize("x := 1;\n?").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 1);
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let spanned = tokenize_spanned("x := 1;\n  y := x + 2;").unwrap();
        let find = |needle: &Token| {
            spanned
                .iter()
                .find(|(t, _)| t == needle)
                .map(|(_, p)| (p.line, p.column))
                .unwrap()
        };
        assert_eq!(find(&Token::Ident("x".into())), (1, 1));
        assert_eq!(find(&Token::Int(1)), (1, 6));
        assert_eq!(find(&Token::Ident("y".into())), (2, 3));
        assert_eq!(find(&Token::Plus), (2, 10));
        // Comments and multi-line constructs keep columns honest.
        let spanned = tokenize_spanned("(* c\nomment *) a").unwrap();
        assert_eq!(spanned[0].1, Pos::new(2, 11));
    }
}
