//! Tree-walking interpreter for Structured Text, with the IEC standard
//! function blocks (TON/TOF/TP, CTU/CTD, R_TRIG/F_TRIG, SR/RS).

use super::ast::*;
use std::collections::HashMap;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum StValue {
    /// BOOL
    Bool(bool),
    /// Integer family
    Int(i64),
    /// REAL
    Real(f64),
    /// TIME in nanoseconds
    Time(u64),
    /// STRING
    Str(String),
}

impl StValue {
    /// The default value of a type.
    pub fn default_of(ty: DataType) -> StValue {
        match ty {
            DataType::Bool => StValue::Bool(false),
            DataType::Int | DataType::Dint | DataType::Uint => StValue::Int(0),
            DataType::Real => StValue::Real(0.0),
            DataType::Time => StValue::Time(0),
            DataType::Str => StValue::Str(String::new()),
        }
    }

    /// Truthiness for conditions.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            StValue::Bool(b) => Some(*b),
            StValue::Int(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            StValue::Int(i) => Some(*i as f64),
            StValue::Real(r) => Some(*r),
            StValue::Bool(b) => Some(f64::from(u8::from(*b))),
            StValue::Time(t) => Some(*t as f64 / 1e9),
            StValue::Str(_) => None,
        }
    }

    /// Integer view (truncating reals).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            StValue::Int(i) => Some(*i),
            StValue::Real(r) => Some(*r as i64),
            StValue::Bool(b) => Some(i64::from(*b)),
            StValue::Time(t) => Some(*t as i64),
            StValue::Str(_) => None,
        }
    }
}

impl fmt::Display for StValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StValue::Bool(b) => write!(f, "{b}"),
            StValue::Int(i) => write!(f, "{i}"),
            StValue::Real(r) => write!(f, "{r}"),
            StValue::Time(t) => write!(f, "T#{}ms", t / 1_000_000),
            StValue::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A runtime error (the PLC faults on these).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

fn rt(message: impl Into<String>) -> RuntimeError {
    RuntimeError {
        message: message.into(),
    }
}

/// A standard function-block instance.
#[derive(Debug, Clone)]
pub enum FbInstance {
    /// On-delay timer.
    Ton {
        /// Output.
        q: bool,
        /// Elapsed time (ns).
        et: u64,
        /// Preset (ns).
        pt: u64,
        /// Rising-edge start time.
        start: Option<u64>,
    },
    /// Off-delay timer.
    Tof {
        /// Output.
        q: bool,
        /// Elapsed time (ns).
        et: u64,
        /// Preset (ns).
        pt: u64,
        /// Falling-edge start time.
        start: Option<u64>,
    },
    /// Pulse timer.
    Tp {
        /// Output.
        q: bool,
        /// Elapsed time (ns).
        et: u64,
        /// Preset (ns).
        pt: u64,
        /// Pulse start time.
        start: Option<u64>,
        /// Previous IN.
        prev_in: bool,
    },
    /// Up counter.
    Ctu {
        /// Count value.
        cv: i64,
        /// Output (cv >= pv).
        q: bool,
        /// Previous CU.
        prev: bool,
    },
    /// Down counter.
    Ctd {
        /// Count value.
        cv: i64,
        /// Output (cv <= 0).
        q: bool,
        /// Previous CD.
        prev: bool,
    },
    /// Rising-edge detector.
    RTrig {
        /// Output.
        q: bool,
        /// Previous CLK.
        prev: bool,
    },
    /// Falling-edge detector.
    FTrig {
        /// Output.
        q: bool,
        /// Previous CLK.
        prev: bool,
    },
    /// Set-dominant bistable.
    Sr {
        /// Output.
        q: bool,
    },
    /// Reset-dominant bistable.
    Rs {
        /// Output.
        q: bool,
    },
}

impl FbInstance {
    fn new(fb_type: FbType) -> FbInstance {
        match fb_type {
            FbType::Ton => FbInstance::Ton {
                q: false,
                et: 0,
                pt: 0,
                start: None,
            },
            FbType::Tof => FbInstance::Tof {
                q: false,
                et: 0,
                pt: 0,
                start: None,
            },
            FbType::Tp => FbInstance::Tp {
                q: false,
                et: 0,
                pt: 0,
                start: None,
                prev_in: false,
            },
            FbType::Ctu => FbInstance::Ctu {
                cv: 0,
                q: false,
                prev: false,
            },
            FbType::Ctd => FbInstance::Ctd {
                cv: 0,
                q: false,
                prev: false,
            },
            FbType::RTrig => FbInstance::RTrig {
                q: false,
                prev: false,
            },
            FbType::FTrig => FbInstance::FTrig {
                q: false,
                prev: false,
            },
            FbType::Sr => FbInstance::Sr { q: false },
            FbType::Rs => FbInstance::Rs { q: false },
        }
    }

    /// Invokes the block with named inputs at simulation time `now_ns`.
    fn call(&mut self, now_ns: u64, inputs: &HashMap<String, StValue>) -> Result<(), RuntimeError> {
        let get_bool =
            |name: &str| -> bool { inputs.get(name).and_then(StValue::as_bool).unwrap_or(false) };
        let get_time = |name: &str| -> Option<u64> {
            match inputs.get(name) {
                Some(StValue::Time(t)) => Some(*t),
                Some(StValue::Int(i)) if *i >= 0 => Some(*i as u64 * 1_000_000),
                _ => None,
            }
        };
        let get_int = |name: &str| -> Option<i64> { inputs.get(name).and_then(StValue::as_i64) };

        match self {
            FbInstance::Ton { q, et, pt, start } => {
                if let Some(t) = get_time("PT") {
                    *pt = t;
                }
                let input = get_bool("IN");
                if input {
                    let s = *start.get_or_insert(now_ns);
                    *et = (now_ns - s).min(*pt);
                    *q = now_ns - s >= *pt;
                } else {
                    *start = None;
                    *et = 0;
                    *q = false;
                }
            }
            FbInstance::Tof { q, et, pt, start } => {
                if let Some(t) = get_time("PT") {
                    *pt = t;
                }
                let input = get_bool("IN");
                if input {
                    *q = true;
                    *start = None;
                    *et = 0;
                } else if *q {
                    let s = *start.get_or_insert(now_ns);
                    *et = (now_ns - s).min(*pt);
                    if now_ns - s >= *pt {
                        *q = false;
                    }
                }
            }
            FbInstance::Tp {
                q,
                et,
                pt,
                start,
                prev_in,
            } => {
                if let Some(t) = get_time("PT") {
                    *pt = t;
                }
                let input = get_bool("IN");
                if input && !*prev_in && start.is_none() {
                    *start = Some(now_ns);
                }
                *prev_in = input;
                if let Some(s) = *start {
                    *et = (now_ns - s).min(*pt);
                    if now_ns - s >= *pt {
                        *q = false;
                        if !input {
                            *start = None;
                            *et = 0;
                        }
                    } else {
                        *q = true;
                    }
                } else {
                    *q = false;
                    *et = 0;
                }
            }
            FbInstance::Ctu { cv, q, prev } => {
                let cu = get_bool("CU");
                let reset = get_bool("R");
                let pv = get_int("PV").unwrap_or(0);
                if reset {
                    *cv = 0;
                } else if cu && !*prev {
                    *cv += 1;
                }
                *prev = cu;
                *q = *cv >= pv;
            }
            FbInstance::Ctd { cv, q, prev } => {
                let cd = get_bool("CD");
                let load = get_bool("LD");
                let pv = get_int("PV").unwrap_or(0);
                if load {
                    *cv = pv;
                } else if cd && !*prev && *cv > 0 {
                    *cv -= 1;
                }
                *prev = cd;
                *q = *cv <= 0;
            }
            FbInstance::RTrig { q, prev } => {
                let clk = get_bool("CLK");
                *q = clk && !*prev;
                *prev = clk;
            }
            FbInstance::FTrig { q, prev } => {
                let clk = get_bool("CLK");
                *q = !clk && *prev;
                *prev = clk;
            }
            FbInstance::Sr { q } => {
                let s1 = get_bool("S1") || get_bool("S");
                let r = get_bool("R") || get_bool("R1");
                *q = s1 || (*q && !r);
            }
            FbInstance::Rs { q } => {
                let s = get_bool("S") || get_bool("S1");
                let r1 = get_bool("R1") || get_bool("R");
                *q = !r1 && (s || *q);
            }
        }
        Ok(())
    }

    /// Reads an output member (`Q`, `ET`, `CV`).
    fn output(&self, name: &str) -> Option<StValue> {
        let upper = name.to_uppercase();
        match self {
            FbInstance::Ton { q, et, .. }
            | FbInstance::Tof { q, et, .. }
            | FbInstance::Tp { q, et, .. } => match upper.as_str() {
                "Q" => Some(StValue::Bool(*q)),
                "ET" => Some(StValue::Time(*et)),
                _ => None,
            },
            FbInstance::Ctu { cv, q, .. } | FbInstance::Ctd { cv, q, .. } => match upper.as_str() {
                "Q" => Some(StValue::Bool(*q)),
                "CV" => Some(StValue::Int(*cv)),
                _ => None,
            },
            FbInstance::RTrig { q, .. }
            | FbInstance::FTrig { q, .. }
            | FbInstance::Sr { q }
            | FbInstance::Rs { q } => match upper.as_str() {
                "Q" | "Q1" => Some(StValue::Bool(*q)),
                _ => None,
            },
        }
    }
}

enum Flow {
    Normal,
    Exit,
    Return,
}

/// The interpreter: program + variable/FB state, stepped one scan at a time.
pub struct Interpreter {
    program: Program,
    /// Variable values by name.
    pub vars: HashMap<String, StValue>,
    /// FB instances by name.
    pub fbs: HashMap<String, FbInstance>,
    loop_budget: u64,
}

impl Interpreter {
    /// Instantiates a program: declares variables (with initializers) and
    /// function blocks.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if an initializer fails to evaluate.
    pub fn new(program: Program) -> Result<Interpreter, RuntimeError> {
        let mut interp = Interpreter {
            program: Program::default(),
            vars: HashMap::new(),
            fbs: HashMap::new(),
            loop_budget: 1_000_000,
        };
        for decl in &program.vars {
            let value = match &decl.initial {
                Some(expr) => interp.eval(expr, 0)?,
                None => StValue::default_of(decl.ty),
            };
            interp.vars.insert(decl.name.clone(), value);
        }
        for fb in &program.fbs {
            interp
                .fbs
                .insert(fb.name.clone(), FbInstance::new(fb.fb_type));
        }
        interp.program = program;
        Ok(interp)
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Reads a variable.
    pub fn get(&self, name: &str) -> Option<&StValue> {
        self.vars.get(name)
    }

    /// Writes a variable (creating it if needed — used by the I/O binding).
    pub fn set(&mut self, name: &str, value: StValue) {
        self.vars.insert(name.to_string(), value);
    }

    /// Executes one scan of the program body at simulation time `now_ns`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on type errors, unknown identifiers,
    /// division by zero, or a runaway loop.
    pub fn scan(&mut self, now_ns: u64) -> Result<(), RuntimeError> {
        let body = self.program.body.clone();
        let mut budget = self.loop_budget;
        self.exec_block(&body, now_ns, &mut budget)?;
        Ok(())
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        now_ns: u64,
        budget: &mut u64,
    ) -> Result<Flow, RuntimeError> {
        for stmt in stmts {
            match self.exec_stmt(stmt, now_ns, budget)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        now_ns: u64,
        budget: &mut u64,
    ) -> Result<Flow, RuntimeError> {
        if *budget == 0 {
            return Err(rt("scan exceeded execution budget (runaway loop?)"));
        }
        *budget -= 1;
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let v = self.eval(value, now_ns)?;
                match target {
                    LValue::Var(name) => {
                        self.vars.insert(name.clone(), v);
                    }
                    LValue::Member(instance, _member) => {
                        // Assigning FB inputs outside a call has no effect in
                        // this implementation; flag it instead of silently
                        // dropping.
                        return Err(rt(format!(
                            "direct assignment to FB member {instance:?} is not supported; pass inputs in the call"
                        )));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                branches,
                else_body,
                ..
            } => {
                for (cond, body) in branches {
                    let c = self
                        .eval(cond, now_ns)?
                        .as_bool()
                        .ok_or_else(|| rt("IF condition is not BOOL"))?;
                    if c {
                        return self.exec_block(body, now_ns, budget);
                    }
                }
                self.exec_block(else_body, now_ns, budget)
            }
            Stmt::Case {
                selector,
                arms,
                else_body,
                ..
            } => {
                let sel = self
                    .eval(selector, now_ns)?
                    .as_i64()
                    .ok_or_else(|| rt("CASE selector is not an integer"))?;
                for (labels, body) in arms {
                    let matched = labels.iter().any(|l| match l {
                        CaseLabel::Value(v) => sel == *v,
                        CaseLabel::Range(a, b) => sel >= *a && sel <= *b,
                    });
                    if matched {
                        return self.exec_block(body, now_ns, budget);
                    }
                }
                self.exec_block(else_body, now_ns, budget)
            }
            Stmt::For {
                var,
                from,
                to,
                by,
                body,
                ..
            } => {
                let start = self
                    .eval(from, now_ns)?
                    .as_i64()
                    .ok_or_else(|| rt("FOR start is not an integer"))?;
                let end = self
                    .eval(to, now_ns)?
                    .as_i64()
                    .ok_or_else(|| rt("FOR end is not an integer"))?;
                let step = match by {
                    Some(e) => self
                        .eval(e, now_ns)?
                        .as_i64()
                        .ok_or_else(|| rt("FOR step is not an integer"))?,
                    None => 1,
                };
                if step == 0 {
                    return Err(rt("FOR step must not be zero"));
                }
                let mut i = start;
                loop {
                    if (step > 0 && i > end) || (step < 0 && i < end) {
                        break;
                    }
                    self.vars.insert(var.clone(), StValue::Int(i));
                    match self.exec_block(body, now_ns, budget)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal => {}
                    }
                    i += step;
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    if *budget == 0 {
                        return Err(rt("scan exceeded execution budget (runaway loop?)"));
                    }
                    *budget -= 1;
                    let c = self
                        .eval(cond, now_ns)?
                        .as_bool()
                        .ok_or_else(|| rt("WHILE condition is not BOOL"))?;
                    if !c {
                        break;
                    }
                    match self.exec_block(body, now_ns, budget)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Repeat { body, until, .. } => {
                loop {
                    if *budget == 0 {
                        return Err(rt("scan exceeded execution budget (runaway loop?)"));
                    }
                    *budget -= 1;
                    match self.exec_block(body, now_ns, budget)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal => {}
                    }
                    let done = self
                        .eval(until, now_ns)?
                        .as_bool()
                        .ok_or_else(|| rt("UNTIL condition is not BOOL"))?;
                    if done {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::FbCall {
                instance,
                inputs,
                outputs,
                ..
            } => {
                let mut evaluated = HashMap::new();
                for (name, expr) in inputs {
                    evaluated.insert(name.to_uppercase(), self.eval(expr, now_ns)?);
                }
                let fb = self
                    .fbs
                    .get_mut(instance)
                    .ok_or_else(|| rt(format!("unknown function block {instance:?}")))?;
                fb.call(now_ns, &evaluated)?;
                for (member, target) in outputs {
                    let value = self
                        .fbs
                        .get(instance)
                        .and_then(|fb| fb.output(member))
                        .ok_or_else(|| {
                            rt(format!(
                                "function block {instance:?} has no output {member:?}"
                            ))
                        })?;
                    self.vars.insert(target.clone(), value);
                }
                Ok(Flow::Normal)
            }
            Stmt::Exit { .. } => Ok(Flow::Exit),
            Stmt::Return { .. } => Ok(Flow::Return),
        }
    }

    #[allow(clippy::only_used_in_recursion)] // now_ns is part of the eval contract
    fn eval(&self, expr: &Expr, now_ns: u64) -> Result<StValue, RuntimeError> {
        match expr {
            Expr::Lit(l, _) => Ok(match l {
                Literal::Bool(b) => StValue::Bool(*b),
                Literal::Int(i) => StValue::Int(*i),
                Literal::Real(r) => StValue::Real(*r),
                Literal::Time(t) => StValue::Time(*t),
                Literal::Str(s) => StValue::Str(s.clone()),
            }),
            Expr::Var(name, _) => self
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| rt(format!("unknown variable {name:?}"))),
            Expr::Member(instance, member, _) => self
                .fbs
                .get(instance)
                .and_then(|fb| fb.output(member))
                .ok_or_else(|| rt(format!("unknown member {instance}.{member}"))),
            Expr::Unary(op, inner, _) => {
                let v = self.eval(inner, now_ns)?;
                match op {
                    UnOp::Not => match v {
                        StValue::Bool(b) => Ok(StValue::Bool(!b)),
                        StValue::Int(i) => Ok(StValue::Int(!i)),
                        other => Err(rt(format!("NOT applied to {other}"))),
                    },
                    UnOp::Neg => match v {
                        StValue::Int(i) => Ok(StValue::Int(-i)),
                        StValue::Real(r) => Ok(StValue::Real(-r)),
                        other => Err(rt(format!("negation applied to {other}"))),
                    },
                }
            }
            Expr::Binary(op, a, b, _) => {
                let va = self.eval(a, now_ns)?;
                let vb = self.eval(b, now_ns)?;
                eval_binary(*op, va, vb)
            }
            Expr::Call { name, args, .. } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, now_ns)?);
                }
                eval_builtin(name, &values)
            }
        }
    }
}

fn eval_binary(op: BinOp, a: StValue, b: StValue) -> Result<StValue, RuntimeError> {
    use BinOp::*;
    match op {
        Or | Xor | And => {
            if let (Some(x), Some(y)) = (a.as_bool(), b.as_bool()) {
                let r = match op {
                    Or => x || y,
                    Xor => x ^ y,
                    And => x && y,
                    _ => unreachable!(),
                };
                return Ok(StValue::Bool(r));
            }
            // Bitwise on integers.
            if let (StValue::Int(x), StValue::Int(y)) = (&a, &b) {
                let r = match op {
                    Or => x | y,
                    Xor => x ^ y,
                    And => x & y,
                    _ => unreachable!(),
                };
                return Ok(StValue::Int(r));
            }
            Err(rt(format!("logic operator applied to {a} and {b}")))
        }
        Eq | Neq | Lt | Gt | Le | Ge => {
            let ordering = match (&a, &b) {
                (StValue::Str(x), StValue::Str(y)) => x.partial_cmp(y),
                _ => {
                    let (x, y) = (
                        a.as_f64().ok_or_else(|| rt("comparison on non-numeric"))?,
                        b.as_f64().ok_or_else(|| rt("comparison on non-numeric"))?,
                    );
                    x.partial_cmp(&y)
                }
            }
            .ok_or_else(|| rt("incomparable values"))?;
            use std::cmp::Ordering::*;
            let r = match op {
                Eq => ordering == Equal,
                Neq => ordering != Equal,
                Lt => ordering == Less,
                Gt => ordering == Greater,
                Le => ordering != Greater,
                Ge => ordering != Less,
                _ => unreachable!(),
            };
            Ok(StValue::Bool(r))
        }
        Add | Sub | Mul | Div | Mod | Pow => {
            // TIME arithmetic keeps TIME type.
            if let (StValue::Time(x), StValue::Time(y)) = (&a, &b) {
                let r = match op {
                    Add => x.saturating_add(*y),
                    Sub => x.saturating_sub(*y),
                    _ => return Err(rt("unsupported TIME operation")),
                };
                return Ok(StValue::Time(r));
            }
            let int_math = matches!(a, StValue::Int(_)) && matches!(b, StValue::Int(_));
            if int_math {
                let (x, y) = (a.as_i64().expect("int"), b.as_i64().expect("int"));
                let r = match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return Err(rt("division by zero"));
                        }
                        x / y
                    }
                    Mod => {
                        if y == 0 {
                            return Err(rt("modulo by zero"));
                        }
                        x % y
                    }
                    Pow => (x as f64).powi(y as i32) as i64,
                    _ => unreachable!(),
                };
                return Ok(StValue::Int(r));
            }
            let (x, y) = (
                a.as_f64().ok_or_else(|| rt("arithmetic on non-numeric"))?,
                b.as_f64().ok_or_else(|| rt("arithmetic on non-numeric"))?,
            );
            let r = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    if y == 0.0 {
                        return Err(rt("division by zero"));
                    }
                    x / y
                }
                Mod => x % y,
                Pow => x.powf(y),
                _ => unreachable!(),
            };
            Ok(StValue::Real(r))
        }
    }
}

fn eval_builtin(name: &str, args: &[StValue]) -> Result<StValue, RuntimeError> {
    let num = |i: usize| -> Result<f64, RuntimeError> {
        args.get(i)
            .and_then(StValue::as_f64)
            .ok_or_else(|| rt(format!("{name}: argument {i} is not numeric")))
    };
    match name {
        "ABS" => {
            let v = num(0)?;
            Ok(match args[0] {
                StValue::Int(i) => StValue::Int(i.abs()),
                _ => StValue::Real(v.abs()),
            })
        }
        "SQRT" => Ok(StValue::Real(num(0)?.sqrt())),
        "EXPT" => Ok(StValue::Real(num(0)?.powf(num(1)?))),
        "MIN" => {
            let mut best = num(0)?;
            for i in 1..args.len() {
                best = best.min(num(i)?);
            }
            Ok(StValue::Real(best))
        }
        "MAX" => {
            let mut best = num(0)?;
            for i in 1..args.len() {
                best = best.max(num(i)?);
            }
            Ok(StValue::Real(best))
        }
        "LIMIT" => {
            // LIMIT(min, in, max)
            let (lo, x, hi) = (num(0)?, num(1)?, num(2)?);
            Ok(StValue::Real(x.clamp(lo, hi)))
        }
        "SEL" => {
            // SEL(G, IN0, IN1)
            let g = args
                .first()
                .and_then(StValue::as_bool)
                .ok_or_else(|| rt("SEL: selector must be BOOL"))?;
            let v = if g { args.get(2) } else { args.get(1) };
            v.cloned().ok_or_else(|| rt("SEL: missing arguments"))
        }
        "TO_INT" | "REAL_TO_INT" | "TRUNC" | "TO_DINT" => Ok(StValue::Int(
            args.first()
                .and_then(StValue::as_i64)
                .ok_or_else(|| rt(format!("{name}: not convertible")))?,
        )),
        "TO_REAL" | "INT_TO_REAL" | "TO_LREAL" => Ok(StValue::Real(num(0)?)),
        "BOOL_TO_INT" => Ok(StValue::Int(
            args.first()
                .and_then(StValue::as_bool)
                .map(i64::from)
                .ok_or_else(|| rt("BOOL_TO_INT: not BOOL"))?,
        )),
        "INT_TO_BOOL" | "TO_BOOL" => Ok(StValue::Bool(
            args.first()
                .and_then(StValue::as_i64)
                .map(|v| v != 0)
                .ok_or_else(|| rt("TO_BOOL: not numeric"))?,
        )),
        other => Err(rt(format!("unknown function {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::st::parser::parse_program;

    fn run(src: &str, scans: &[(u64, &[(&str, StValue)])]) -> Interpreter {
        let program = parse_program(src).expect("parse");
        let mut interp = Interpreter::new(program).expect("init");
        for (now_ms, inputs) in scans {
            for (name, value) in *inputs {
                interp.set(name, value.clone());
            }
            interp.scan(now_ms * 1_000_000).expect("scan");
        }
        interp
    }

    #[test]
    fn arithmetic_and_if() {
        let interp = run(
            "PROGRAM p VAR x : INT := 2; y : REAL; END_VAR \
             x := x * 10 + 1; \
             IF x > 20 THEN y := x / 2.0; ELSE y := 0.0; END_IF; \
             END_PROGRAM",
            &[(0, &[])],
        );
        assert_eq!(interp.get("x"), Some(&StValue::Int(21)));
        assert_eq!(interp.get("y"), Some(&StValue::Real(10.5)));
    }

    #[test]
    fn for_loop_with_exit() {
        let interp = run(
            "PROGRAM p VAR s : INT; i : INT; END_VAR \
             FOR i := 1 TO 100 DO s := s + i; IF i = 10 THEN EXIT; END_IF; END_FOR; \
             END_PROGRAM",
            &[(0, &[])],
        );
        assert_eq!(interp.get("s"), Some(&StValue::Int(55)));
    }

    #[test]
    fn while_and_repeat() {
        let interp = run(
            "PROGRAM p VAR a : INT := 10; b : INT; END_VAR \
             WHILE a > 0 DO a := a - 3; END_WHILE; \
             REPEAT b := b + 2; UNTIL b >= 5 END_REPEAT; \
             END_PROGRAM",
            &[(0, &[])],
        );
        assert_eq!(interp.get("a"), Some(&StValue::Int(-2)));
        assert_eq!(interp.get("b"), Some(&StValue::Int(6)));
    }

    #[test]
    fn case_statement() {
        let src = "PROGRAM p VAR sel : INT; out : INT; END_VAR \
                   CASE sel OF 1: out := 10; 2,3: out := 20; 4..6: out := 30; \
                   ELSE out := -1; END_CASE; END_PROGRAM";
        for (sel, expected) in [(1, 10), (2, 20), (3, 20), (5, 30), (9, -1)] {
            let interp = run(src, &[(0, &[("sel", StValue::Int(sel))])]);
            assert_eq!(
                interp.get("out"),
                Some(&StValue::Int(expected)),
                "sel={sel}"
            );
        }
    }

    #[test]
    fn ton_timer_elapses_in_simulated_time() {
        let src = "PROGRAM p VAR run : BOOL; done : BOOL; t1 : TON; END_VAR \
                   t1(IN := run, PT := T#500ms); done := t1.Q; END_PROGRAM";
        let program = parse_program(src).unwrap();
        let mut interp = Interpreter::new(program).unwrap();
        interp.set("run", StValue::Bool(true));
        interp.scan(0).unwrap();
        assert_eq!(interp.get("done"), Some(&StValue::Bool(false)));
        interp.scan(400_000_000).unwrap();
        assert_eq!(interp.get("done"), Some(&StValue::Bool(false)));
        interp.scan(600_000_000).unwrap();
        assert_eq!(interp.get("done"), Some(&StValue::Bool(true)));
        // Input drops: timer resets.
        interp.set("run", StValue::Bool(false));
        interp.scan(700_000_000).unwrap();
        assert_eq!(interp.get("done"), Some(&StValue::Bool(false)));
    }

    #[test]
    fn ctu_counts_rising_edges() {
        let src = "PROGRAM p VAR pulse : BOOL; full : BOOL; n : INT; c : CTU; END_VAR \
                   c(CU := pulse, PV := 3, Q => full, CV => n); END_PROGRAM";
        let program = parse_program(src).unwrap();
        let mut interp = Interpreter::new(program).unwrap();
        let mut t = 0u64;
        for _ in 0..3 {
            interp.set("pulse", StValue::Bool(true));
            interp.scan(t).unwrap();
            t += 1_000_000;
            interp.set("pulse", StValue::Bool(false));
            interp.scan(t).unwrap();
            t += 1_000_000;
        }
        assert_eq!(interp.get("n"), Some(&StValue::Int(3)));
        assert_eq!(interp.get("full"), Some(&StValue::Bool(true)));
    }

    #[test]
    fn r_trig_fires_once() {
        let src = "PROGRAM p VAR x : BOOL; hits : INT; e : R_TRIG; END_VAR \
                   e(CLK := x); IF e.Q THEN hits := hits + 1; END_IF; END_PROGRAM";
        let program = parse_program(src).unwrap();
        let mut interp = Interpreter::new(program).unwrap();
        for (t, x) in [(0, false), (1, true), (2, true), (3, false), (4, true)] {
            interp.set("x", StValue::Bool(x));
            interp.scan(t * 1_000_000).unwrap();
        }
        assert_eq!(interp.get("hits"), Some(&StValue::Int(2)));
    }

    #[test]
    fn sr_and_rs_bistables() {
        let src = "PROGRAM p VAR s : BOOL; r : BOOL; q1 : BOOL; q2 : BOOL; \
                   b1 : SR; b2 : RS; END_VAR \
                   b1(S1 := s, R := r, Q1 => q1); b2(S := s, R1 := r, Q1 => q2); END_PROGRAM";
        let program = parse_program(src).unwrap();
        let mut interp = Interpreter::new(program).unwrap();
        // Set both.
        interp.set("s", StValue::Bool(true));
        interp.set("r", StValue::Bool(false));
        interp.scan(0).unwrap();
        assert_eq!(interp.get("q1"), Some(&StValue::Bool(true)));
        assert_eq!(interp.get("q2"), Some(&StValue::Bool(true)));
        // Conflict: SR holds set, RS resets.
        interp.set("r", StValue::Bool(true));
        interp.scan(1_000_000).unwrap();
        assert_eq!(interp.get("q1"), Some(&StValue::Bool(true)));
        assert_eq!(interp.get("q2"), Some(&StValue::Bool(false)));
    }

    #[test]
    fn builtins() {
        let interp = run(
            "PROGRAM p VAR a : REAL; b : REAL; c : REAL; d : INT; END_VAR \
             a := MAX(1.0, 2.5); b := LIMIT(0.0, 7.7, 5.0); c := ABS(-3.25); d := TO_INT(9.9); \
             END_PROGRAM",
            &[(0, &[])],
        );
        assert_eq!(interp.get("a"), Some(&StValue::Real(2.5)));
        assert_eq!(interp.get("b"), Some(&StValue::Real(5.0)));
        assert_eq!(interp.get("c"), Some(&StValue::Real(3.25)));
        assert_eq!(interp.get("d"), Some(&StValue::Int(9)));
    }

    #[test]
    fn runtime_errors() {
        let program =
            parse_program("PROGRAM p VAR x : INT; END_VAR x := 1 / 0; END_PROGRAM").unwrap();
        let mut interp = Interpreter::new(program).unwrap();
        assert!(interp.scan(0).is_err());

        let program =
            parse_program("PROGRAM p VAR x : INT; END_VAR x := nope + 1; END_PROGRAM").unwrap();
        let mut interp = Interpreter::new(program).unwrap();
        assert!(interp.scan(0).is_err());

        // Runaway loop hits the budget instead of hanging.
        let program = parse_program(
            "PROGRAM p VAR x : INT; END_VAR WHILE TRUE DO x := x + 1; END_WHILE; END_PROGRAM",
        )
        .unwrap();
        let mut interp = Interpreter::new(program).unwrap();
        let err = interp.scan(0).unwrap_err();
        assert!(err.message.contains("budget"));
    }
}
