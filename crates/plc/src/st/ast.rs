//! Abstract syntax tree for IEC 61131-3 Structured Text.

/// Elementary IEC data types supported by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// BOOL
    Bool,
    /// INT (16-bit signed; stored as i64)
    Int,
    /// DINT (32-bit signed; stored as i64)
    Dint,
    /// UINT / UDINT (stored as i64, clamped non-negative)
    Uint,
    /// REAL / LREAL
    Real,
    /// TIME
    Time,
    /// STRING
    Str,
}

impl DataType {
    /// Parses an IEC type name (case-insensitive).
    pub fn parse(name: &str) -> Option<DataType> {
        Some(match name.to_uppercase().as_str() {
            "BOOL" => DataType::Bool,
            "INT" | "SINT" => DataType::Int,
            "DINT" | "LINT" => DataType::Dint,
            "UINT" | "USINT" | "UDINT" | "ULINT" | "WORD" | "DWORD" | "BYTE" => DataType::Uint,
            "REAL" | "LREAL" => DataType::Real,
            "TIME" => DataType::Time,
            "STRING" => DataType::Str,
            _ => return None,
        })
    }
}

/// Standard function-block types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FbType {
    /// On-delay timer.
    Ton,
    /// Off-delay timer.
    Tof,
    /// Pulse timer.
    Tp,
    /// Up counter.
    Ctu,
    /// Down counter.
    Ctd,
    /// Rising-edge detector.
    RTrig,
    /// Falling-edge detector.
    FTrig,
    /// Set-dominant bistable.
    Sr,
    /// Reset-dominant bistable.
    Rs,
}

impl FbType {
    /// Parses an FB type name (case-insensitive).
    pub fn parse(name: &str) -> Option<FbType> {
        Some(match name.to_uppercase().as_str() {
            "TON" => FbType::Ton,
            "TOF" => FbType::Tof,
            "TP" => FbType::Tp,
            "CTU" => FbType::Ctu,
            "CTD" => FbType::Ctd,
            "R_TRIG" => FbType::RTrig,
            "F_TRIG" => FbType::FTrig,
            "SR" => FbType::Sr,
            "RS" => FbType::Rs,
            _ => return None,
        })
    }
}

/// Variable storage class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// `VAR`
    Local,
    /// `VAR_INPUT`
    Input,
    /// `VAR_OUTPUT`
    Output,
    /// `VAR_IN_OUT`
    InOut,
    /// `VAR_GLOBAL`
    Global,
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Optional initializer.
    pub initial: Option<Expr>,
    /// Direct address (`AT %QX0.0`) for located variables.
    pub location: Option<String>,
    /// Storage class.
    pub class: VarClass,
}

/// A function-block instance declaration (`timer1 : TON;`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FbDecl {
    /// Instance name.
    pub name: String,
    /// FB type.
    pub fb_type: FbType,
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// BOOL
    Bool(bool),
    /// Integer
    Int(i64),
    /// Real
    Real(f64),
    /// TIME in nanoseconds
    Time(u64),
    /// STRING
    Str(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical/bitwise NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical/bitwise OR
    Or,
    /// Logical/bitwise XOR
    Xor,
    /// Logical/bitwise AND
    And,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `MOD`
    Mod,
    /// `**`-less power not supported; EXPT is a function.
    Pow,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Lit(Literal),
    /// A plain variable reference.
    Var(String),
    /// Member access (`timer1.Q`).
    Member(String, String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin function call (`MAX(a, b)`).
    Call {
        /// Function name, uppercased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A plain variable.
    Var(String),
    /// An FB input (`timer1.IN`) — rarely assigned directly, but legal.
    Member(String, String),
}

/// A CASE arm label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseLabel {
    /// A single value.
    Value(i64),
    /// An inclusive range.
    Range(i64, i64),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target := value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Value expression.
        value: Expr,
    },
    /// IF / ELSIF / ELSE.
    If {
        /// `(condition, body)` for IF and each ELSIF.
        branches: Vec<(Expr, Vec<Stmt>)>,
        /// ELSE body.
        else_body: Vec<Stmt>,
    },
    /// CASE … OF.
    Case {
        /// Selector expression.
        selector: Expr,
        /// `(labels, body)` per arm.
        arms: Vec<(Vec<CaseLabel>, Vec<Stmt>)>,
        /// ELSE body.
        else_body: Vec<Stmt>,
    },
    /// FOR loop.
    For {
        /// Loop variable.
        var: String,
        /// Start value.
        from: Expr,
        /// End value (inclusive).
        to: Expr,
        /// Step (default 1).
        by: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// WHILE loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// REPEAT … UNTIL.
    Repeat {
        /// Body.
        body: Vec<Stmt>,
        /// Exit condition.
        until: Expr,
    },
    /// Function-block invocation (`timer1(IN := x, PT := T#5s);`).
    FbCall {
        /// Instance name.
        instance: String,
        /// Input assignments.
        inputs: Vec<(String, Expr)>,
        /// Output captures (`Q => done`).
        outputs: Vec<(String, String)>,
    },
    /// EXIT (innermost loop).
    Exit,
    /// RETURN.
    Return,
}

/// A complete program (POU of type Program).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Variable declarations.
    pub vars: Vec<VarDecl>,
    /// FB instance declarations.
    pub fbs: Vec<FbDecl>,
    /// Statement body.
    pub body: Vec<Stmt>,
}
