//! Abstract syntax tree for IEC 61131-3 Structured Text.

/// A source position inside an ST program: 1-based line and column.
///
/// `Pos::default()` (line 0) means "unknown" — used for nodes synthesized
/// outside the text parser, e.g. by the PLCopen XML importer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line (0 = unknown).
    pub line: u32,
    /// 1-based column (0 = unknown).
    pub column: u32,
}

impl Pos {
    /// Builds a position.
    pub fn new(line: u32, column: u32) -> Pos {
        Pos { line, column }
    }

    /// Whether the position points at real source text.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Elementary IEC data types supported by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// BOOL
    Bool,
    /// INT (16-bit signed; stored as i64)
    Int,
    /// DINT (32-bit signed; stored as i64)
    Dint,
    /// UINT / UDINT (stored as i64, clamped non-negative)
    Uint,
    /// REAL / LREAL
    Real,
    /// TIME
    Time,
    /// STRING
    Str,
}

impl DataType {
    /// Parses an IEC type name (case-insensitive).
    pub fn parse(name: &str) -> Option<DataType> {
        Some(match name.to_uppercase().as_str() {
            "BOOL" => DataType::Bool,
            "INT" | "SINT" => DataType::Int,
            "DINT" | "LINT" => DataType::Dint,
            "UINT" | "USINT" | "UDINT" | "ULINT" | "WORD" | "DWORD" | "BYTE" => DataType::Uint,
            "REAL" | "LREAL" => DataType::Real,
            "TIME" => DataType::Time,
            "STRING" => DataType::Str,
            _ => return None,
        })
    }
}

/// Standard function-block types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FbType {
    /// On-delay timer.
    Ton,
    /// Off-delay timer.
    Tof,
    /// Pulse timer.
    Tp,
    /// Up counter.
    Ctu,
    /// Down counter.
    Ctd,
    /// Rising-edge detector.
    RTrig,
    /// Falling-edge detector.
    FTrig,
    /// Set-dominant bistable.
    Sr,
    /// Reset-dominant bistable.
    Rs,
}

impl FbType {
    /// Parses an FB type name (case-insensitive).
    pub fn parse(name: &str) -> Option<FbType> {
        Some(match name.to_uppercase().as_str() {
            "TON" => FbType::Ton,
            "TOF" => FbType::Tof,
            "TP" => FbType::Tp,
            "CTU" => FbType::Ctu,
            "CTD" => FbType::Ctd,
            "R_TRIG" => FbType::RTrig,
            "F_TRIG" => FbType::FTrig,
            "SR" => FbType::Sr,
            "RS" => FbType::Rs,
            _ => return None,
        })
    }
}

/// Variable storage class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// `VAR`
    Local,
    /// `VAR_INPUT`
    Input,
    /// `VAR_OUTPUT`
    Output,
    /// `VAR_IN_OUT`
    InOut,
    /// `VAR_GLOBAL`
    Global,
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Optional initializer.
    pub initial: Option<Expr>,
    /// Direct address (`AT %QX0.0`) for located variables.
    pub location: Option<String>,
    /// Storage class.
    pub class: VarClass,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A function-block instance declaration (`timer1 : TON;`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FbDecl {
    /// Instance name.
    pub name: String,
    /// FB type.
    pub fb_type: FbType,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// BOOL
    Bool(bool),
    /// Integer
    Int(i64),
    /// Real
    Real(f64),
    /// TIME in nanoseconds
    Time(u64),
    /// STRING
    Str(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical/bitwise NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical/bitwise OR
    Or,
    /// Logical/bitwise XOR
    Xor,
    /// Logical/bitwise AND
    And,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `MOD`
    Mod,
    /// `**`-less power not supported; EXPT is a function.
    Pow,
}

/// Expressions. Every variant carries the source position of its anchor
/// token (the literal, the identifier, or the operator).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Lit(Literal, Pos),
    /// A plain variable reference.
    Var(String, Pos),
    /// Member access (`timer1.Q`).
    Member(String, String, Pos),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Pos),
    /// Binary operation (position anchors the operator).
    Binary(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// Builtin function call (`MAX(a, b)`).
    Call {
        /// Function name, uppercased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position of the function name.
        pos: Pos,
    },
}

impl Expr {
    /// The anchor position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Lit(_, p)
            | Expr::Var(_, p)
            | Expr::Member(_, _, p)
            | Expr::Unary(_, _, p)
            | Expr::Binary(_, _, _, p)
            | Expr::Call { pos: p, .. } => *p,
        }
    }
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A plain variable.
    Var(String),
    /// An FB input (`timer1.IN`) — rarely assigned directly, but legal.
    Member(String, String),
}

/// A CASE arm label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseLabel {
    /// A single value.
    Value(i64),
    /// An inclusive range.
    Range(i64, i64),
}

/// Statements. Every variant carries the position of its first token.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target := value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Value expression.
        value: Expr,
        /// Position of the target.
        pos: Pos,
    },
    /// IF / ELSIF / ELSE.
    If {
        /// `(condition, body)` for IF and each ELSIF.
        branches: Vec<(Expr, Vec<Stmt>)>,
        /// ELSE body.
        else_body: Vec<Stmt>,
        /// Position of the IF keyword.
        pos: Pos,
    },
    /// CASE … OF.
    Case {
        /// Selector expression.
        selector: Expr,
        /// `(labels, body)` per arm.
        arms: Vec<(Vec<CaseLabel>, Vec<Stmt>)>,
        /// ELSE body.
        else_body: Vec<Stmt>,
        /// Position of the CASE keyword.
        pos: Pos,
    },
    /// FOR loop.
    For {
        /// Loop variable.
        var: String,
        /// Start value.
        from: Expr,
        /// End value (inclusive).
        to: Expr,
        /// Step (default 1).
        by: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
        /// Position of the FOR keyword.
        pos: Pos,
    },
    /// WHILE loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Position of the WHILE keyword.
        pos: Pos,
    },
    /// REPEAT … UNTIL.
    Repeat {
        /// Body.
        body: Vec<Stmt>,
        /// Exit condition.
        until: Expr,
        /// Position of the REPEAT keyword.
        pos: Pos,
    },
    /// Function-block invocation (`timer1(IN := x, PT := T#5s);`).
    FbCall {
        /// Instance name.
        instance: String,
        /// Input assignments.
        inputs: Vec<(String, Expr)>,
        /// Output captures (`Q => done`).
        outputs: Vec<(String, String)>,
        /// Position of the instance name.
        pos: Pos,
    },
    /// EXIT (innermost loop).
    Exit {
        /// Position of the EXIT keyword.
        pos: Pos,
    },
    /// RETURN.
    Return {
        /// Position of the RETURN keyword.
        pos: Pos,
    },
}

impl Stmt {
    /// The position of the statement's first token.
    pub fn pos(&self) -> Pos {
        match self {
            Stmt::Assign { pos, .. }
            | Stmt::If { pos, .. }
            | Stmt::Case { pos, .. }
            | Stmt::For { pos, .. }
            | Stmt::While { pos, .. }
            | Stmt::Repeat { pos, .. }
            | Stmt::FbCall { pos, .. }
            | Stmt::Exit { pos }
            | Stmt::Return { pos } => *pos,
        }
    }
}

/// A complete program (POU of type Program).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Variable declarations.
    pub vars: Vec<VarDecl>,
    /// FB instance declarations.
    pub fbs: Vec<FbDecl>,
    /// Statement body.
    pub body: Vec<Stmt>,
}
