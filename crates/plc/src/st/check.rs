//! Semantic analysis for Structured Text programs — the static front gate
//! in front of the interpreter.
//!
//! [`check_program`] runs a flow-sensitive type checker and a set of
//! dataflow analyses over the AST and returns [`CheckFinding`]s. The rules
//! deliberately mirror the interpreter's runtime behavior
//! ([`super::interp`]): every condition that *would* raise a
//! [`super::interp::RuntimeError`] on some scan is reported with
//! [`CheckSeverity::Error`], while IEC-hygiene issues the interpreter
//! tolerates (narrowing assignments, reads of default values, dead stores,
//! unreachable code) are [`CheckSeverity::Warning`]s. A program with no
//! error-level finding must not fault the interpreter — the lint layer and
//! the differential tests rely on that contract.
//!
//! The checker knows about *externally provided* variables (MMS read rules,
//! GOOSE subscriptions, and located I/O written by the runtime's input
//! image before every scan): those are typed `Any` and exempt from
//! read-before-write analysis.

use super::ast::*;
use std::collections::{BTreeMap, BTreeSet};

/// Severity of a semantic finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckSeverity {
    /// Suspicious but runs: the interpreter tolerates it.
    Warning,
    /// The interpreter would (or could) raise a `RuntimeError`.
    Error,
}

/// Stable category of a semantic finding. The lint layer maps these to
/// `SG6xxx` diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckCode {
    /// Operand/assignment type mismatch.
    TypeMismatch,
    /// A variable is read that nothing declares, provides, or assigns first.
    UnknownVariable,
    /// A function/FB call is malformed: unknown callee, wrong arity,
    /// unknown parameter, or FB-member misuse.
    BadFbCall,
    /// A declared non-input variable is read but never assigned anywhere,
    /// so it forever holds its type default.
    ReadBeforeWrite,
    /// A value is overwritten before anything reads it.
    DeadStore,
    /// A statement can never execute (constant condition, or it follows
    /// EXIT/RETURN or an infinite loop).
    Unreachable,
    /// Division or modulo by a literal zero.
    DivisionByZero,
}

/// One semantic finding, anchored at a program-relative position.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckFinding {
    /// Finding category.
    pub code: CheckCode,
    /// Severity (errors mirror interpreter faults).
    pub severity: CheckSeverity,
    /// Human-readable message.
    pub message: String,
    /// Position within the ST source (1-based; may be unknown for
    /// programs imported from PLCopen XML).
    pub pos: Pos,
}

/// The checker's type lattice: concrete IEC types plus `Any` for values
/// whose type is only known at runtime (external inputs, merged branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Bool,
    Int,
    Real,
    Time,
    Str,
    Any,
}

impl Ty {
    fn of(dt: DataType) -> Ty {
        match dt {
            DataType::Bool => Ty::Bool,
            DataType::Int | DataType::Dint | DataType::Uint => Ty::Int,
            DataType::Real => Ty::Real,
            DataType::Time => Ty::Time,
            DataType::Str => Ty::Str,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Ty::Bool => "BOOL",
            Ty::Int => "INT",
            Ty::Real => "REAL",
            Ty::Time => "TIME",
            Ty::Str => "STRING",
            Ty::Any => "a runtime-typed value",
        }
    }

    /// Mirrors `StValue::as_bool`: only BOOL and INT are truthy-capable.
    fn boolish(self) -> bool {
        matches!(self, Ty::Bool | Ty::Int | Ty::Any)
    }

    /// Mirrors `StValue::as_f64`/`as_i64`: everything but STRING converts.
    fn numericish(self) -> bool {
        !matches!(self, Ty::Str)
    }

    fn unify(self, other: Ty) -> Ty {
        if self == other {
            self
        } else {
            Ty::Any
        }
    }
}

/// Flow-sensitive state: what has been written so far (and with what
/// effective type), plus pending writes for dead-store detection.
#[derive(Debug, Clone, Default)]
struct FlowState {
    written: BTreeSet<String>,
    types: BTreeMap<String, Ty>,
    /// name -> position of a write nothing has read yet.
    pending: BTreeMap<String, Pos>,
}

impl FlowState {
    /// Join after a branch: a variable counts as written only if every
    /// path wrote it; effective types that disagree decay to `Any`.
    /// Dead-store candidates do not survive control-flow joins.
    fn join(mut states: Vec<FlowState>) -> FlowState {
        let Some(first) = states.pop() else {
            return FlowState::default();
        };
        let mut written = first.written;
        let mut types = first.types;
        for st in states {
            written.retain(|n| st.written.contains(n));
            for (name, ty) in st.types {
                types
                    .entry(name)
                    .and_modify(|t| *t = t.unify(ty))
                    .or_insert(ty);
            }
        }
        FlowState {
            written,
            types,
            pending: BTreeMap::new(),
        }
    }
}

struct Checker<'a> {
    declared: BTreeMap<&'a str, &'a VarDecl>,
    fbs: BTreeMap<String, FbType>,
    external: &'a BTreeSet<String>,
    /// Every name assigned anywhere in the program (any scan may write it).
    ever_written: BTreeSet<String>,
    findings: Vec<CheckFinding>,
    /// Names already reported unknown / read-before-write (one finding per
    /// variable, not per occurrence).
    flagged_unknown: BTreeSet<String>,
    flagged_rbw: BTreeSet<String>,
}

/// Checks a program. `external` names variables the runtime provides before
/// every scan: MMS read rules, GOOSE subscriptions, and located variables
/// (the input image restores those from the I/O tables).
///
/// Findings come back sorted by position, then category.
pub fn check_program(program: &Program, external: &BTreeSet<String>) -> Vec<CheckFinding> {
    let mut checker = Checker {
        declared: program.vars.iter().map(|v| (v.name.as_str(), v)).collect(),
        fbs: program
            .fbs
            .iter()
            .map(|f| (f.name.clone(), f.fb_type))
            .collect(),
        external,
        ever_written: collect_all_writes(program),
        findings: Vec::new(),
        flagged_unknown: BTreeSet::new(),
        flagged_rbw: BTreeSet::new(),
    };

    let mut state = FlowState::default();
    // Declarations, in order: initializers run at instantiation with only
    // the earlier declarations (and no FB instances) in scope.
    for decl in &program.vars {
        if let Some(init) = &decl.initial {
            checker.check_initializer(decl, init, &state);
            let ty = checker.infer(init, &mut state.clone());
            checker.check_assignable(Ty::of(decl.ty), ty, &decl.name, init.pos());
            state.types.insert(decl.name.clone(), ty);
            state.written.insert(decl.name.clone());
        } else {
            state.types.insert(decl.name.clone(), Ty::of(decl.ty));
        }
    }

    checker.check_block(&program.body, &mut state);

    checker.findings.sort_by_key(|f| {
        (
            f.pos.line,
            f.pos.column,
            match f.code {
                CheckCode::TypeMismatch => 0u8,
                CheckCode::UnknownVariable => 1,
                CheckCode::BadFbCall => 2,
                CheckCode::ReadBeforeWrite => 3,
                CheckCode::DeadStore => 4,
                CheckCode::Unreachable => 5,
                CheckCode::DivisionByZero => 6,
            },
        )
    });
    checker.findings
}

impl<'a> Checker<'a> {
    fn emit(&mut self, code: CheckCode, severity: CheckSeverity, pos: Pos, message: String) {
        self.findings.push(CheckFinding {
            code,
            severity,
            message,
            pos,
        });
    }

    fn error(&mut self, code: CheckCode, pos: Pos, message: String) {
        self.emit(code, CheckSeverity::Error, pos, message);
    }

    fn warn(&mut self, code: CheckCode, pos: Pos, message: String) {
        self.emit(code, CheckSeverity::Warning, pos, message);
    }

    /// Initializers run before the runtime binds anything: FB members and
    /// external inputs are not available yet, and only earlier declarations
    /// are in scope. `state` holds exactly those earlier declarations.
    fn check_initializer(&mut self, decl: &VarDecl, init: &Expr, state: &FlowState) {
        let mut names = Vec::new();
        collect_reads(init, &mut names);
        for (name, pos) in names {
            if !state.types.contains_key(name) {
                self.error(
                    CheckCode::UnknownVariable,
                    pos,
                    format!(
                        "initializer of {:?} reads {name:?}, which is not declared before it \
                         (initializers run before any input binding)",
                        decl.name
                    ),
                );
                self.flagged_unknown.insert(name.to_string());
            }
        }
        if member_access(init) {
            self.error(
                CheckCode::BadFbCall,
                init.pos(),
                format!(
                    "initializer of {:?} reads a function-block output; FB instances do not \
                     exist yet when initializers run",
                    decl.name
                ),
            );
        }
    }

    // --- statements --------------------------------------------------------

    fn check_block(&mut self, stmts: &[Stmt], state: &mut FlowState) {
        let mut terminated: Option<&'static str> = None;
        let mut reported = false;
        for stmt in stmts {
            if let Some(why) = terminated {
                if !reported {
                    self.warn(
                        CheckCode::Unreachable,
                        stmt.pos(),
                        format!("statement is unreachable ({why})"),
                    );
                    reported = true;
                }
            }
            self.check_stmt(stmt, state);
            match stmt {
                Stmt::Exit { .. } => terminated = terminated.or(Some("it follows EXIT")),
                Stmt::Return { .. } => terminated = terminated.or(Some("it follows RETURN")),
                _ => {
                    if self.is_endless_loop(stmt) {
                        terminated = terminated.or(Some("it follows a loop that never exits"));
                    }
                }
            }
        }
    }

    /// A `WHILE TRUE` / `REPEAT … UNTIL FALSE` with no reachable EXIT or
    /// RETURN never terminates — the scan faults on its execution budget.
    fn is_endless_loop(&self, stmt: &Stmt) -> bool {
        match stmt {
            Stmt::While { cond, body, .. } => {
                matches!(cond, Expr::Lit(Literal::Bool(true), _)) && !breaks_loop(body)
            }
            Stmt::Repeat { body, until, .. } => {
                matches!(until, Expr::Lit(Literal::Bool(false), _)) && !breaks_loop(body)
            }
            _ => false,
        }
    }

    fn check_stmt(&mut self, stmt: &Stmt, state: &mut FlowState) {
        match stmt {
            Stmt::Assign { target, value, pos } => {
                let ty = self.infer(value, state);
                match target {
                    LValue::Var(name) => self.mark_write(name, ty, *pos, state),
                    LValue::Member(instance, member) => {
                        // The interpreter faults on this unconditionally.
                        self.error(
                            CheckCode::BadFbCall,
                            *pos,
                            format!(
                                "direct assignment to FB member {instance}.{member} is not \
                                 supported; pass inputs in the call"
                            ),
                        );
                    }
                }
            }
            Stmt::If {
                branches,
                else_body,
                ..
            } => {
                let mut results = Vec::new();
                let mut prior_constant_true = false;
                for (i, (cond, body)) in branches.iter().enumerate() {
                    let cty = self.infer(cond, state);
                    self.require_boolish(cty, cond.pos(), "IF condition");
                    if prior_constant_true {
                        self.unreachable_branch(cond.pos(), body, "a preceding condition");
                    } else if let Expr::Lit(Literal::Bool(b), _) = cond {
                        if *b {
                            prior_constant_true = true;
                            // Everything after this branch is dead.
                            let rest_dead = branches.len() > i + 1 || !else_body.is_empty();
                            if rest_dead {
                                // Reported when we reach the dead branch/else.
                            }
                        } else {
                            self.unreachable_branch(cond.pos(), body, "this condition");
                        }
                    }
                    let mut st = state.clone();
                    st.pending.clear();
                    self.check_block(body, &mut st);
                    results.push(st);
                }
                if prior_constant_true && !else_body.is_empty() {
                    let pos = else_body[0].pos();
                    self.warn(
                        CheckCode::Unreachable,
                        pos,
                        "ELSE branch is unreachable (a preceding condition is constant TRUE)"
                            .to_string(),
                    );
                }
                let mut st = state.clone();
                st.pending.clear();
                self.check_block(else_body, &mut st);
                results.push(st);
                *state = FlowState::join(results);
            }
            Stmt::Case {
                selector,
                arms,
                else_body,
                ..
            } => {
                let sty = self.infer(selector, state);
                if sty == Ty::Str {
                    self.error(
                        CheckCode::TypeMismatch,
                        selector.pos(),
                        "CASE selector is STRING, not an integer".to_string(),
                    );
                } else if sty == Ty::Real {
                    self.warn(
                        CheckCode::TypeMismatch,
                        selector.pos(),
                        "CASE selector is REAL and will be truncated to an integer".to_string(),
                    );
                }
                let mut results = Vec::new();
                for (_, body) in arms {
                    let mut st = state.clone();
                    st.pending.clear();
                    self.check_block(body, &mut st);
                    results.push(st);
                }
                let mut st = state.clone();
                st.pending.clear();
                self.check_block(else_body, &mut st);
                results.push(st);
                *state = FlowState::join(results);
            }
            Stmt::For {
                var,
                from,
                to,
                by,
                body,
                pos,
            } => {
                for (expr, what) in [
                    (Some(from), "start"),
                    (Some(to), "end"),
                    (by.as_ref(), "step"),
                ] {
                    let Some(expr) = expr else { continue };
                    let ty = self.infer(expr, state);
                    if ty == Ty::Str {
                        self.error(
                            CheckCode::TypeMismatch,
                            expr.pos(),
                            format!("FOR {what} is STRING, not an integer"),
                        );
                    } else if ty == Ty::Real {
                        self.warn(
                            CheckCode::TypeMismatch,
                            expr.pos(),
                            format!("FOR {what} is REAL and will be truncated"),
                        );
                    }
                }
                if let Some(Expr::Lit(Literal::Int(0), p)) = by {
                    self.error(
                        CheckCode::TypeMismatch,
                        *p,
                        "FOR step must not be zero".to_string(),
                    );
                }
                state.pending.clear();
                self.mark_write(var, Ty::Int, *pos, state);
                let mut st = state.clone();
                self.check_block(body, &mut st);
                *state = FlowState::join(vec![st, state.clone()]);
            }
            Stmt::While { cond, body, .. } => {
                let cty = self.infer(cond, state);
                self.require_boolish(cty, cond.pos(), "WHILE condition");
                if matches!(cond, Expr::Lit(Literal::Bool(false), _)) {
                    self.unreachable_branch(cond.pos(), body, "the WHILE condition");
                }
                state.pending.clear();
                let mut st = state.clone();
                self.check_block(body, &mut st);
                if self.is_endless_loop(stmt) {
                    self.error(
                        CheckCode::Unreachable,
                        stmt.pos(),
                        "WHILE TRUE without EXIT or RETURN never terminates; the scan would \
                         exhaust its execution budget"
                            .to_string(),
                    );
                }
                *state = FlowState::join(vec![st, state.clone()]);
            }
            Stmt::Repeat { body, until, .. } => {
                state.pending.clear();
                // The body always runs at least once.
                self.check_block(body, state);
                let uty = self.infer(until, state);
                self.require_boolish(uty, until.pos(), "UNTIL condition");
                if self.is_endless_loop(stmt) {
                    self.error(
                        CheckCode::Unreachable,
                        stmt.pos(),
                        "REPEAT … UNTIL FALSE without EXIT or RETURN never terminates; the \
                         scan would exhaust its execution budget"
                            .to_string(),
                    );
                }
                state.pending.clear();
            }
            Stmt::FbCall {
                instance,
                inputs,
                outputs,
                pos,
            } => {
                self.check_fb_call(instance, inputs, outputs, *pos, state);
            }
            Stmt::Exit { .. } | Stmt::Return { .. } => {}
        }
    }

    fn unreachable_branch(&mut self, cond_pos: Pos, body: &[Stmt], what: &str) {
        let pos = body.first().map(Stmt::pos).unwrap_or(cond_pos);
        self.warn(
            CheckCode::Unreachable,
            pos,
            format!("branch is never taken ({what} is constant)"),
        );
    }

    fn require_boolish(&mut self, ty: Ty, pos: Pos, what: &str) {
        if !ty.boolish() {
            self.error(
                CheckCode::TypeMismatch,
                pos,
                format!("{what} is {}, not BOOL", ty.name()),
            );
        }
    }

    fn check_fb_call(
        &mut self,
        instance: &str,
        inputs: &[(String, Expr)],
        outputs: &[(String, String)],
        pos: Pos,
        state: &mut FlowState,
    ) {
        // Inputs are evaluated before the instance is resolved.
        let mut input_tys = Vec::new();
        for (name, expr) in inputs {
            input_tys.push((name.to_uppercase(), self.infer(expr, state), expr.pos()));
        }
        state.pending.clear();
        let Some(fb_type) = self.fbs.get(instance).copied() else {
            self.error(
                CheckCode::BadFbCall,
                pos,
                format!("unknown function block {instance:?} (declare it as TON, CTU, …)"),
            );
            for (_, target) in outputs {
                self.mark_write(target, Ty::Any, pos, state);
            }
            return;
        };
        let (kind, valid_in, valid_out) = fb_signature(fb_type);
        for (name, ty, epos) in &input_tys {
            if !valid_in.contains(&name.as_str()) {
                self.warn(
                    CheckCode::BadFbCall,
                    *epos,
                    format!("{kind} has no input {name:?}; the value is ignored"),
                );
                continue;
            }
            let ok = match name.as_str() {
                "PT" => matches!(ty, Ty::Time | Ty::Int | Ty::Any),
                "PV" => ty.numericish(),
                // IN/CU/CD/R/LD/CLK/S/S1/R1 are all edge/level booleans.
                _ => ty.boolish(),
            };
            if !ok {
                self.warn(
                    CheckCode::TypeMismatch,
                    *epos,
                    format!(
                        "{kind} input {name} given {}; it reads as its default instead",
                        ty.name()
                    ),
                );
            }
        }
        for (member, target) in outputs {
            let upper = member.to_uppercase();
            if !valid_out.contains(&upper.as_str()) {
                self.error(
                    CheckCode::BadFbCall,
                    pos,
                    format!("{kind} {instance:?} has no output {member:?}"),
                );
                self.mark_write(target, Ty::Any, pos, state);
                continue;
            }
            self.mark_write(target, output_ty(&upper), pos, state);
        }
    }

    // --- reads and writes --------------------------------------------------

    fn mark_write(&mut self, name: &str, ty: Ty, pos: Pos, state: &mut FlowState) {
        if let Some(old) = state.pending.insert(name.to_string(), pos) {
            self.warn(
                CheckCode::DeadStore,
                old,
                format!("value assigned to {name:?} is overwritten before anything reads it"),
            );
        }
        if let Some(decl) = self.declared.get(name) {
            self.check_assignable(Ty::of(decl.ty), ty, name, pos);
        }
        state.written.insert(name.to_string());
        state.types.insert(name.to_string(), ty);
    }

    fn check_assignable(&mut self, target: Ty, value: Ty, name: &str, pos: Pos) {
        let ok = match (target, value) {
            (Ty::Any, _) | (_, Ty::Any) => true,
            (a, b) if a == b => true,
            // Integer widens into REAL without surprises.
            (Ty::Real, Ty::Int) => true,
            _ => false,
        };
        if !ok {
            self.warn(
                CheckCode::TypeMismatch,
                pos,
                format!(
                    "{name:?} is declared {} but is assigned {}",
                    target.name(),
                    value.name()
                ),
            );
        }
    }

    fn mark_read(&mut self, name: &str, pos: Pos, state: &mut FlowState) -> Ty {
        state.pending.remove(name);
        if self.external.contains(name) {
            // Provided by the runtime before every scan; its value (and
            // type) is whatever the binding delivers.
            return state
                .types
                .get(name)
                .copied()
                .unwrap_or(Ty::Any)
                .unify(Ty::Any);
        }
        if state.written.contains(name) {
            return state.types.get(name).copied().unwrap_or(Ty::Any);
        }
        if let Some(decl) = self.declared.get(name) {
            // Declared but never assigned anywhere: every scan reads the
            // type default. Reading state *before* updating it later in the
            // scan is idiomatic (values persist across scans), so only a
            // variable with no write at all is flagged. Inputs are fed
            // externally by definition.
            let class = decl.class;
            let dty = Ty::of(decl.ty);
            if class != VarClass::Input
                && !self.ever_written.contains(name)
                && self.flagged_rbw.insert(name.to_string())
            {
                self.warn(
                    CheckCode::ReadBeforeWrite,
                    pos,
                    format!(
                        "{name:?} is read but never assigned and has no binding; it always \
                         holds the {} default",
                        dty.name()
                    ),
                );
            }
            return state.types.get(name).copied().unwrap_or(dty);
        }
        if self.fbs.contains_key(name) {
            if self.flagged_unknown.insert(name.to_string()) {
                self.error(
                    CheckCode::UnknownVariable,
                    pos,
                    format!(
                        "{name:?} is a function-block instance, not a variable; read an \
                         output like {name}.Q instead"
                    ),
                );
            }
            return Ty::Any;
        }
        if self.flagged_unknown.insert(name.to_string()) {
            self.error(
                CheckCode::UnknownVariable,
                pos,
                format!(
                    "unknown variable {name:?}: it is not declared, not provided by any \
                     binding, and nothing assigns it before this read"
                ),
            );
        }
        Ty::Any
    }

    // --- expressions --------------------------------------------------------

    fn infer(&mut self, expr: &Expr, state: &mut FlowState) -> Ty {
        match expr {
            Expr::Lit(lit, _) => match lit {
                Literal::Bool(_) => Ty::Bool,
                Literal::Int(_) => Ty::Int,
                Literal::Real(_) => Ty::Real,
                Literal::Time(_) => Ty::Time,
                Literal::Str(_) => Ty::Str,
            },
            Expr::Var(name, pos) => self.mark_read(name, *pos, state),
            Expr::Member(instance, member, pos) => {
                let Some(fb_type) = self.fbs.get(instance).copied() else {
                    self.error(
                        CheckCode::BadFbCall,
                        *pos,
                        format!("unknown member {instance}.{member}: no such FB instance"),
                    );
                    return Ty::Any;
                };
                let upper = member.to_uppercase();
                let (kind, _, valid_out) = fb_signature(fb_type);
                if !valid_out.contains(&upper.as_str()) {
                    self.error(
                        CheckCode::BadFbCall,
                        *pos,
                        format!("{kind} {instance:?} has no output {member:?}"),
                    );
                    return Ty::Any;
                }
                output_ty(&upper)
            }
            Expr::Unary(op, inner, pos) => {
                let ty = self.infer(inner, state);
                match op {
                    UnOp::Not => match ty {
                        Ty::Bool | Ty::Int | Ty::Any => ty,
                        other => {
                            self.error(
                                CheckCode::TypeMismatch,
                                *pos,
                                format!("NOT applied to {}", other.name()),
                            );
                            Ty::Any
                        }
                    },
                    UnOp::Neg => match ty {
                        Ty::Int | Ty::Real | Ty::Any => ty,
                        other => {
                            self.error(
                                CheckCode::TypeMismatch,
                                *pos,
                                format!("negation applied to {}", other.name()),
                            );
                            Ty::Any
                        }
                    },
                }
            }
            Expr::Binary(op, a, b, pos) => {
                let ta = self.infer(a, state);
                let tb = self.infer(b, state);
                self.infer_binary(*op, ta, tb, b, *pos)
            }
            Expr::Call { name, args, pos } => {
                let mut tys = Vec::with_capacity(args.len());
                for arg in args {
                    tys.push((self.infer(arg, state), arg.pos()));
                }
                self.infer_call(name, &tys, *pos)
            }
        }
    }

    fn infer_binary(&mut self, op: BinOp, ta: Ty, tb: Ty, rhs: &Expr, pos: Pos) -> Ty {
        use BinOp::*;
        match op {
            Or | Xor | And => {
                if !ta.boolish() || !tb.boolish() {
                    self.error(
                        CheckCode::TypeMismatch,
                        pos,
                        format!("logic operator applied to {} and {}", ta.name(), tb.name()),
                    );
                    return Ty::Bool;
                }
                match (ta, tb) {
                    (Ty::Int, Ty::Int) => Ty::Int,
                    (Ty::Bool, Ty::Bool) | (Ty::Bool, Ty::Int) | (Ty::Int, Ty::Bool) => Ty::Bool,
                    _ => Ty::Any,
                }
            }
            Eq | Neq | Lt | Gt | Le | Ge => {
                let str_mismatch = (ta == Ty::Str && !matches!(tb, Ty::Str | Ty::Any))
                    || (tb == Ty::Str && !matches!(ta, Ty::Str | Ty::Any));
                if str_mismatch {
                    self.error(
                        CheckCode::TypeMismatch,
                        pos,
                        format!("comparison between {} and {}", ta.name(), tb.name()),
                    );
                }
                Ty::Bool
            }
            Add | Sub | Mul | Div | Mod | Pow => {
                if matches!(op, Div | Mod) {
                    if let Expr::Lit(Literal::Int(0), zp) | Expr::Lit(Literal::Real(0.0), zp) = rhs
                    {
                        self.error(
                            CheckCode::DivisionByZero,
                            *zp,
                            format!(
                                "{} by a literal zero always faults",
                                if op == Div { "division" } else { "modulo" }
                            ),
                        );
                    }
                }
                if ta == Ty::Str || tb == Ty::Str {
                    self.error(
                        CheckCode::TypeMismatch,
                        pos,
                        format!("arithmetic on {} and {}", ta.name(), tb.name()),
                    );
                    return Ty::Any;
                }
                if ta == Ty::Time && tb == Ty::Time {
                    if matches!(op, Add | Sub) {
                        return Ty::Time;
                    }
                    self.error(
                        CheckCode::TypeMismatch,
                        pos,
                        "unsupported TIME operation (only + and - keep TIME)".to_string(),
                    );
                    return Ty::Any;
                }
                if (ta == Ty::Time) != (tb == Ty::Time) && ta != Ty::Any && tb != Ty::Any {
                    self.warn(
                        CheckCode::TypeMismatch,
                        pos,
                        format!(
                            "mixed arithmetic on {} and {} converts TIME to seconds",
                            ta.name(),
                            tb.name()
                        ),
                    );
                    return Ty::Real;
                }
                if ta == Ty::Bool || tb == Ty::Bool {
                    self.warn(
                        CheckCode::TypeMismatch,
                        pos,
                        format!("arithmetic on {} and {}", ta.name(), tb.name()),
                    );
                    return Ty::Real;
                }
                match (ta, tb) {
                    (Ty::Int, Ty::Int) => Ty::Int,
                    (Ty::Any, _) | (_, Ty::Any) => Ty::Any,
                    _ => Ty::Real,
                }
            }
        }
    }

    fn infer_call(&mut self, name: &str, args: &[(Ty, Pos)], pos: Pos) -> Ty {
        // (min, max) mirror eval_builtin: a missing argument faults, an
        // extra argument is silently ignored.
        let (min, max): (usize, usize) = match name {
            "ABS" | "SQRT" | "TO_INT" | "REAL_TO_INT" | "TRUNC" | "TO_DINT" | "TO_REAL"
            | "INT_TO_REAL" | "TO_LREAL" | "BOOL_TO_INT" | "INT_TO_BOOL" | "TO_BOOL" => (1, 1),
            "EXPT" => (2, 2),
            "LIMIT" | "SEL" => (3, 3),
            "MIN" | "MAX" => (1, usize::MAX),
            other => {
                self.error(
                    CheckCode::BadFbCall,
                    pos,
                    format!("unknown function {other:?}"),
                );
                return Ty::Any;
            }
        };
        if args.len() < min {
            self.error(
                CheckCode::BadFbCall,
                pos,
                format!(
                    "{name} expects {min} argument{}, got {}",
                    if min == 1 { "" } else { "s" },
                    args.len()
                ),
            );
            return Ty::Any;
        }
        if args.len() > max {
            self.warn(
                CheckCode::BadFbCall,
                pos,
                format!(
                    "{name} takes {max} argument{}; the extra {} ignored",
                    if max == 1 { "" } else { "s" },
                    if args.len() - max == 1 {
                        "one is"
                    } else {
                        "ones are"
                    }
                ),
            );
        }
        let numeric_args = |checker: &mut Checker<'a>, upto: usize| {
            for (i, (ty, apos)) in args.iter().take(upto).enumerate() {
                if !ty.numericish() {
                    checker.error(
                        CheckCode::TypeMismatch,
                        *apos,
                        format!("{name}: argument {i} is {}, not numeric", ty.name()),
                    );
                }
            }
        };
        match name {
            "ABS" => {
                numeric_args(self, 1);
                match args[0].0 {
                    Ty::Int => Ty::Int,
                    Ty::Any => Ty::Any,
                    _ => Ty::Real,
                }
            }
            "SQRT" | "TO_REAL" | "INT_TO_REAL" | "TO_LREAL" => {
                numeric_args(self, 1);
                Ty::Real
            }
            "EXPT" => {
                numeric_args(self, 2);
                Ty::Real
            }
            "MIN" | "MAX" => {
                numeric_args(self, args.len());
                Ty::Real
            }
            "LIMIT" => {
                numeric_args(self, 3);
                Ty::Real
            }
            "SEL" => {
                let (gty, gpos) = args[0];
                if !gty.boolish() {
                    self.error(
                        CheckCode::TypeMismatch,
                        gpos,
                        format!("SEL selector is {}, not BOOL", gty.name()),
                    );
                }
                match (args.get(1), args.get(2)) {
                    (Some((a, _)), Some((b, _))) => a.unify(*b),
                    _ => Ty::Any,
                }
            }
            "TO_INT" | "REAL_TO_INT" | "TRUNC" | "TO_DINT" | "INT_TO_BOOL" | "TO_BOOL" => {
                numeric_args(self, 1);
                if matches!(name, "INT_TO_BOOL" | "TO_BOOL") {
                    Ty::Bool
                } else {
                    Ty::Int
                }
            }
            "BOOL_TO_INT" => {
                if !args[0].0.boolish() {
                    self.error(
                        CheckCode::TypeMismatch,
                        args[0].1,
                        format!("BOOL_TO_INT: argument is {}, not BOOL", args[0].0.name()),
                    );
                }
                Ty::Int
            }
            _ => Ty::Any,
        }
    }
}

/// Valid inputs/outputs per standard FB type (uppercased names), plus the
/// IEC name for messages.
fn fb_signature(
    fb: FbType,
) -> (
    &'static str,
    &'static [&'static str],
    &'static [&'static str],
) {
    match fb {
        FbType::Ton => ("TON", &["IN", "PT"], &["Q", "ET"]),
        FbType::Tof => ("TOF", &["IN", "PT"], &["Q", "ET"]),
        FbType::Tp => ("TP", &["IN", "PT"], &["Q", "ET"]),
        FbType::Ctu => ("CTU", &["CU", "R", "PV"], &["Q", "CV"]),
        FbType::Ctd => ("CTD", &["CD", "LD", "PV"], &["Q", "CV"]),
        FbType::RTrig => ("R_TRIG", &["CLK"], &["Q", "Q1"]),
        FbType::FTrig => ("F_TRIG", &["CLK"], &["Q", "Q1"]),
        FbType::Sr => ("SR", &["S", "S1", "R", "R1"], &["Q", "Q1"]),
        FbType::Rs => ("RS", &["S", "S1", "R", "R1"], &["Q", "Q1"]),
    }
}

fn output_ty(member: &str) -> Ty {
    match member {
        "ET" => Ty::Time,
        "CV" => Ty::Int,
        _ => Ty::Bool,
    }
}

/// Does this statement list reach an EXIT or RETURN that would break the
/// *enclosing* loop? EXITs inside nested loops only break those.
fn breaks_loop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Exit { .. } | Stmt::Return { .. } => true,
        Stmt::If {
            branches,
            else_body,
            ..
        } => branches.iter().any(|(_, b)| breaks_loop(b)) || breaks_loop(else_body),
        Stmt::Case {
            arms, else_body, ..
        } => arms.iter().any(|(_, b)| breaks_loop(b)) || breaks_loop(else_body),
        // A RETURN nested in an inner loop still leaves the scan.
        Stmt::For { body, .. } | Stmt::While { body, .. } | Stmt::Repeat { body, .. } => {
            returns(body)
        }
        _ => false,
    })
}

fn returns(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Return { .. } => true,
        Stmt::If {
            branches,
            else_body,
            ..
        } => branches.iter().any(|(_, b)| returns(b)) || returns(else_body),
        Stmt::Case {
            arms, else_body, ..
        } => arms.iter().any(|(_, b)| returns(b)) || returns(else_body),
        Stmt::For { body, .. } | Stmt::While { body, .. } | Stmt::Repeat { body, .. } => {
            returns(body)
        }
        _ => false,
    })
}

/// Every variable name the program can assign: initialized declarations,
/// assignment targets, FOR loop variables, and FB output captures. The lint
/// layer uses this to validate cross-plane bindings (a `<Write>` rule or a
/// SCADA tag is dead unless the program drives its variable).
pub fn assigned_variables(program: &Program) -> BTreeSet<String> {
    collect_all_writes(program)
}

/// Every plain variable the program reads anywhere — in expressions,
/// conditions, initializers, and FB inputs (FB *output* member reads are
/// not variable reads). The lint layer uses this to spot `<Read>`/`<Goose>`
/// bindings that feed a variable nothing consumes.
pub fn read_variables(program: &Program) -> BTreeSet<String> {
    fn expr(e: &Expr, out: &mut BTreeSet<String>) {
        let mut names = Vec::new();
        collect_reads(e, &mut names);
        for (name, _) in names {
            out.insert(name.to_string());
        }
    }
    fn walk(stmts: &[Stmt], out: &mut BTreeSet<String>) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { value, .. } => expr(value, out),
                Stmt::If {
                    branches,
                    else_body,
                    ..
                } => {
                    for (cond, body) in branches {
                        expr(cond, out);
                        walk(body, out);
                    }
                    walk(else_body, out);
                }
                Stmt::Case {
                    selector,
                    arms,
                    else_body,
                    ..
                } => {
                    expr(selector, out);
                    for (_, body) in arms {
                        walk(body, out);
                    }
                    walk(else_body, out);
                }
                Stmt::For {
                    from, to, by, body, ..
                } => {
                    expr(from, out);
                    expr(to, out);
                    if let Some(by) = by {
                        expr(by, out);
                    }
                    walk(body, out);
                }
                Stmt::While { cond, body, .. } => {
                    expr(cond, out);
                    walk(body, out);
                }
                Stmt::Repeat { body, until, .. } => {
                    walk(body, out);
                    expr(until, out);
                }
                Stmt::FbCall { inputs, .. } => {
                    for (_, e) in inputs {
                        expr(e, out);
                    }
                }
                Stmt::Exit { .. } | Stmt::Return { .. } => {}
            }
        }
    }
    let mut out = BTreeSet::new();
    for decl in &program.vars {
        if let Some(init) = &decl.initial {
            expr(init, &mut out);
        }
    }
    walk(&program.body, &mut out);
    out
}

/// Every name the program can assign: initialized declarations, assignment
/// targets, FOR loop variables, and FB output captures.
fn collect_all_writes(program: &Program) -> BTreeSet<String> {
    fn walk(stmts: &[Stmt], out: &mut BTreeSet<String>) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, .. } => {
                    if let LValue::Var(name) = target {
                        out.insert(name.clone());
                    }
                }
                Stmt::If {
                    branches,
                    else_body,
                    ..
                } => {
                    for (_, body) in branches {
                        walk(body, out);
                    }
                    walk(else_body, out);
                }
                Stmt::Case {
                    arms, else_body, ..
                } => {
                    for (_, body) in arms {
                        walk(body, out);
                    }
                    walk(else_body, out);
                }
                Stmt::For { var, body, .. } => {
                    out.insert(var.clone());
                    walk(body, out);
                }
                Stmt::While { body, .. } => walk(body, out),
                Stmt::Repeat { body, .. } => walk(body, out),
                Stmt::FbCall { outputs, .. } => {
                    for (_, target) in outputs {
                        out.insert(target.clone());
                    }
                }
                Stmt::Exit { .. } | Stmt::Return { .. } => {}
            }
        }
    }
    let mut out = BTreeSet::new();
    for decl in &program.vars {
        if decl.initial.is_some() {
            out.insert(decl.name.clone());
        }
    }
    walk(&program.body, &mut out);
    out
}

/// Collects every plain-variable read in an expression.
fn collect_reads<'e>(expr: &'e Expr, out: &mut Vec<(&'e str, Pos)>) {
    match expr {
        Expr::Lit(..) => {}
        Expr::Var(name, pos) => out.push((name, *pos)),
        Expr::Member(..) => {}
        Expr::Unary(_, inner, _) => collect_reads(inner, out),
        Expr::Binary(_, a, b, _) => {
            collect_reads(a, out);
            collect_reads(b, out);
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_reads(a, out);
            }
        }
    }
}

fn member_access(expr: &Expr) -> bool {
    match expr {
        Expr::Member(..) => true,
        Expr::Lit(..) | Expr::Var(..) => false,
        Expr::Unary(_, inner, _) => member_access(inner),
        Expr::Binary(_, a, b, _) => member_access(a) || member_access(b),
        Expr::Call { args, .. } => args.iter().any(member_access),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::st::parser::parse_program;

    fn check(src: &str, external: &[&str]) -> Vec<CheckFinding> {
        let program = parse_program(src).expect("parse");
        let ext: BTreeSet<String> = external.iter().map(|s| s.to_string()).collect();
        check_program(&program, &ext)
    }

    fn codes(findings: &[CheckFinding]) -> Vec<CheckCode> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let findings = check(
            "PROGRAM p VAR x : INT := 1; y : REAL; b : BOOL; t1 : TON; END_VAR \
             y := x / 2.0; \
             t1(IN := b, PT := T#5s); \
             b := t1.Q AND y > 0.5; \
             END_PROGRAM",
            &[],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn external_variables_are_provided() {
        // `level` comes from an MMS read rule; `out` is located I/O.
        let findings = check(
            "PROGRAM p VAR level : REAL; out AT %QX0.0 : BOOL; END_VAR \
             out := level > 0.9; END_PROGRAM",
            &["level", "out"],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let findings = check(
            "PROGRAM p VAR x : INT; END_VAR x := nope + 1; END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::UnknownVariable]);
        assert_eq!(findings[0].severity, CheckSeverity::Error);
        // Reported once even when read twice.
        let findings = check(
            "PROGRAM p VAR x : INT; END_VAR x := nope + nope; END_PROGRAM",
            &[],
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn never_written_read_is_a_warning() {
        let findings = check(
            "PROGRAM p VAR x : INT; y : INT; END_VAR y := x + 1; END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::ReadBeforeWrite]);
        assert_eq!(findings[0].severity, CheckSeverity::Warning);
        // Reported once even when read repeatedly.
        let findings = check(
            "PROGRAM p VAR x : INT; y : INT; END_VAR y := x + x; END_PROGRAM",
            &[],
        );
        assert_eq!(findings.len(), 1);
        // Inputs and externally provided variables are exempt.
        let findings = check(
            "PROGRAM p VAR_INPUT x : INT; END_VAR VAR y : INT; END_VAR y := x; END_PROGRAM",
            &[],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scan_feedback_reads_are_idiomatic() {
        // Reading state written later in the scan (or only conditionally)
        // is fine: values persist across scans.
        let findings = check(
            "PROGRAM p VAR x : INT; y : INT; END_VAR y := x + 1; x := y; END_PROGRAM",
            &[],
        );
        assert!(findings.is_empty(), "{findings:?}");
        let findings = check(
            "PROGRAM p VAR c : BOOL; x : INT; y : INT; END_VAR \
             c := TRUE; IF c THEN x := 1; END_IF; y := x; END_PROGRAM",
            &[],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn dead_store_detected_in_straight_line_code() {
        let findings = check(
            "PROGRAM p VAR x : INT; END_VAR x := 1; x := 2; END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::DeadStore]);
        assert_eq!(findings[0].pos.line, 1);
        // A read in between keeps both stores alive.
        let findings = check(
            "PROGRAM p VAR x : INT; y : INT; END_VAR x := 1; y := x; x := 2; END_PROGRAM",
            &[],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unreachable_after_return_and_constant_if() {
        let findings = check(
            "PROGRAM p VAR x : INT; END_VAR RETURN; x := 1; END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::Unreachable]);
        let findings = check(
            "PROGRAM p VAR x : INT; END_VAR IF FALSE THEN x := 1; END_IF; END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::Unreachable]);
    }

    #[test]
    fn endless_loop_is_an_error() {
        let findings = check(
            "PROGRAM p VAR x : INT; END_VAR WHILE TRUE DO x := x + 1; END_WHILE; END_PROGRAM",
            &[],
        );
        assert!(findings
            .iter()
            .any(|f| f.code == CheckCode::Unreachable && f.severity == CheckSeverity::Error));
        // With an EXIT it terminates.
        let findings = check(
            "PROGRAM p VAR x : INT; END_VAR \
             WHILE TRUE DO x := x + 1; IF x > 3 THEN EXIT; END_IF; END_WHILE; END_PROGRAM",
            &[],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn division_by_literal_zero() {
        let findings = check(
            "PROGRAM p VAR x : INT; END_VAR x := 1 / 0; END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::DivisionByZero]);
        assert_eq!(findings[0].severity, CheckSeverity::Error);
    }

    #[test]
    fn type_mismatches() {
        // Logic on REAL faults at runtime: error.
        let findings = check(
            "PROGRAM p VAR r : REAL; b : BOOL; END_VAR r := 1.0; b := r AND b; END_PROGRAM",
            &[],
        );
        assert!(findings
            .iter()
            .any(|f| f.code == CheckCode::TypeMismatch && f.severity == CheckSeverity::Error));
        // REAL into INT is tolerated at runtime: warning.
        let findings = check("PROGRAM p VAR x : INT; END_VAR x := 1.5; END_PROGRAM", &[]);
        assert_eq!(codes(&findings), vec![CheckCode::TypeMismatch]);
        assert_eq!(findings[0].severity, CheckSeverity::Warning);
        // STRING comparison against a number faults.
        let findings = check(
            "PROGRAM p VAR s : STRING; b : BOOL; END_VAR s := 'x'; b := s > 1; END_PROGRAM",
            &[],
        );
        assert!(findings
            .iter()
            .any(|f| f.code == CheckCode::TypeMismatch && f.severity == CheckSeverity::Error));
    }

    #[test]
    fn effective_types_follow_assignments() {
        // x is declared INT but holds a REAL; logic on it would fault.
        let findings = check(
            "PROGRAM p VAR x : INT; b : BOOL; END_VAR x := 1.5; b := x AND b; END_PROGRAM",
            &[],
        );
        assert!(findings
            .iter()
            .any(|f| f.code == CheckCode::TypeMismatch && f.severity == CheckSeverity::Error));
    }

    #[test]
    fn fb_call_checks() {
        // Unknown instance.
        let findings = check(
            "PROGRAM p VAR b : BOOL := TRUE; END_VAR t1(IN := b); END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::BadFbCall]);
        // Unknown output is an error; unknown input only a warning.
        let findings = check(
            "PROGRAM p VAR b : BOOL := TRUE; t1 : TON; END_VAR \
             t1(IN := b, PT := T#1s, NOPE := b); END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::BadFbCall]);
        assert_eq!(findings[0].severity, CheckSeverity::Warning);
        let findings = check(
            "PROGRAM p VAR b : BOOL; t1 : TON; END_VAR t1(IN := b, CV => b); END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::BadFbCall]);
        assert_eq!(findings[0].severity, CheckSeverity::Error);
        // FB member assignment faults at runtime.
        let findings = check(
            "PROGRAM p VAR b : BOOL := TRUE; t1 : TON; END_VAR t1.IN := b; END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::BadFbCall]);
        assert_eq!(findings[0].severity, CheckSeverity::Error);
    }

    #[test]
    fn builtin_arity_and_unknown_function() {
        let findings = check(
            "PROGRAM p VAR x : REAL; END_VAR x := FROBNICATE(1.0); END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::BadFbCall]);
        let findings = check(
            "PROGRAM p VAR x : REAL; END_VAR x := EXPT(2.0); END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::BadFbCall]);
        assert_eq!(findings[0].severity, CheckSeverity::Error);
    }

    #[test]
    fn initializer_scope_is_declaration_order() {
        let findings = check(
            "PROGRAM p VAR x : INT := y; y : INT := 1; END_VAR END_PROGRAM",
            &[],
        );
        assert_eq!(codes(&findings), vec![CheckCode::UnknownVariable]);
        let findings = check(
            "PROGRAM p VAR y : INT := 1; x : INT := y; END_VAR END_PROGRAM",
            &[],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn findings_carry_positions() {
        let findings = check(
            "PROGRAM p\nVAR x : INT;\nEND_VAR\nx := nope;\nEND_PROGRAM",
            &[],
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pos, Pos::new(4, 6));
    }
}
