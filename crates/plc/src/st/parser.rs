//! Recursive-descent parser for Structured Text.

use super::ast::*;
use super::lexer::{tokenize_spanned, LexError, Token};
use std::fmt;

/// A parse error with the position of the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Position of the offending token (unknown if the input ended early).
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos.is_known() {
            write!(f, "{} at {}", self.message, self.pos)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message.clone(),
            pos: Pos::new(e.line, e.column),
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    spans: Vec<Pos>,
    pos: usize,
}

fn new_parser(source: &str) -> Result<Parser, ParseError> {
    let (tokens, spans) = tokenize_spanned(source)?.into_iter().unzip();
    Ok(Parser {
        tokens,
        spans,
        pos: 0,
    })
}

/// Parses a complete program: either `PROGRAM name … END_PROGRAM` or a bare
/// declaration + statement sequence.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let mut p = new_parser(source)?;
    let mut program = Program::default();

    if p.eat_keyword("PROGRAM") {
        program.name = p.expect_ident()?;
    }
    // Declarations.
    while let Some(class) = p.peek_var_section() {
        p.advance();
        p.parse_var_section(class, &mut program)?;
    }
    // Body.
    program.body = p.parse_statements(&["END_PROGRAM"])?;
    p.eat_keyword("END_PROGRAM");
    if !p.is_done() {
        return Err(p.error("unexpected tokens after program end"));
    }
    Ok(program)
}

/// Parses just a statement list (no declarations) — handy for tests.
pub fn parse_statements(source: &str) -> Result<Vec<Stmt>, ParseError> {
    let mut p = new_parser(source)?;
    let body = p.parse_statements(&[])?;
    if !p.is_done() {
        return Err(p.error("unexpected trailing tokens"));
    }
    Ok(body)
}

/// Parses an expression — used by configuration surfaces.
pub fn parse_expression(source: &str) -> Result<Expr, ParseError> {
    let mut p = new_parser(source)?;
    let expr = p.parse_expr()?;
    if !p.is_done() {
        return Err(p.error("unexpected trailing tokens"));
    }
    Ok(expr)
}

impl Parser {
    fn is_done(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    /// Position of the current token; falls back to the last token's
    /// position at end of input, and to "unknown" on empty input.
    fn at(&self) -> Pos {
        self.spans
            .get(self.pos)
            .or_else(|| self.spans.last())
            .copied()
            .unwrap_or_default()
    }

    fn error(&self, message: &str) -> ParseError {
        let near = self
            .peek()
            .map(|t| format!("{t}"))
            .unwrap_or_else(|| "end of input".to_string());
        ParseError {
            message: format!("{message} (near {near:?})"),
            pos: self.at(),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {kw}")))
        }
    }

    fn expect_token(&mut self, token: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {token}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    fn peek_var_section(&self) -> Option<VarClass> {
        let Token::Ident(s) = self.peek()? else {
            return None;
        };
        match s.to_uppercase().as_str() {
            "VAR" => Some(VarClass::Local),
            "VAR_INPUT" => Some(VarClass::Input),
            "VAR_OUTPUT" => Some(VarClass::Output),
            "VAR_IN_OUT" => Some(VarClass::InOut),
            "VAR_GLOBAL" => Some(VarClass::Global),
            _ => None,
        }
    }

    fn parse_var_section(
        &mut self,
        class: VarClass,
        program: &mut Program,
    ) -> Result<(), ParseError> {
        loop {
            if self.eat_keyword("END_VAR") {
                return Ok(());
            }
            if self.is_done() {
                return Err(self.error("unterminated VAR section"));
            }
            // name [AT %addr] : TYPE [:= init] ;
            let pos = self.at();
            let name = self.expect_ident()?;
            let mut location = None;
            if self.eat_keyword("AT") {
                match self.advance() {
                    Some(Token::DirectAddress(addr)) => location = Some(addr),
                    _ => return Err(self.error("expected direct address after AT")),
                }
            }
            self.expect_token(&Token::Colon)?;
            let type_name = self.expect_ident()?;
            if let Some(fb_type) = FbType::parse(&type_name) {
                self.expect_token(&Token::Semicolon)?;
                program.fbs.push(FbDecl { name, fb_type, pos });
                continue;
            }
            let Some(ty) = DataType::parse(&type_name) else {
                return Err(self.error(&format!("unknown type {type_name:?}")));
            };
            let initial = if self.peek() == Some(&Token::Assign) {
                self.advance();
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_token(&Token::Semicolon)?;
            program.vars.push(VarDecl {
                name,
                ty,
                initial,
                location,
                class,
                pos,
            });
        }
    }

    /// Parses statements until one of `terminators` (not consumed) or EOF.
    fn parse_statements(&mut self, terminators: &[&str]) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.is_done() {
                return Ok(out);
            }
            if terminators.iter().any(|t| self.peek_keyword(t)) {
                return Ok(out);
            }
            // Other block terminators bubble up too.
            for t in [
                "ELSIF",
                "ELSE",
                "END_IF",
                "END_CASE",
                "END_FOR",
                "END_WHILE",
                "UNTIL",
                "END_REPEAT",
                "END_PROGRAM",
            ] {
                if self.peek_keyword(t) {
                    return Ok(out);
                }
            }
            // Stray semicolon.
            if self.peek() == Some(&Token::Semicolon) {
                self.advance();
                continue;
            }
            out.push(self.parse_statement()?);
        }
    }

    fn parse_statement(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.at();
        if self.peek_keyword("IF") {
            return self.parse_if();
        }
        if self.peek_keyword("CASE") {
            return self.parse_case();
        }
        if self.peek_keyword("FOR") {
            return self.parse_for();
        }
        if self.peek_keyword("WHILE") {
            return self.parse_while();
        }
        if self.peek_keyword("REPEAT") {
            return self.parse_repeat();
        }
        if self.eat_keyword("EXIT") {
            self.expect_token(&Token::Semicolon)?;
            return Ok(Stmt::Exit { pos });
        }
        if self.eat_keyword("RETURN") {
            self.expect_token(&Token::Semicolon)?;
            return Ok(Stmt::Return { pos });
        }
        // Assignment or FB call.
        let name = self.expect_ident()?;
        match self.peek() {
            Some(Token::LParen) => {
                // FB call.
                self.advance();
                let mut inputs = Vec::new();
                let mut outputs = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        let param = self.expect_ident()?;
                        match self.advance() {
                            Some(Token::Assign) => {
                                let value = self.parse_expr()?;
                                inputs.push((param, value));
                            }
                            Some(Token::Arrow) => {
                                let target = self.expect_ident()?;
                                outputs.push((param, target));
                            }
                            _ => return Err(self.error("expected := or => in FB call")),
                        }
                        if self.peek() == Some(&Token::Comma) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect_token(&Token::RParen)?;
                self.expect_token(&Token::Semicolon)?;
                Ok(Stmt::FbCall {
                    instance: name,
                    inputs,
                    outputs,
                    pos,
                })
            }
            Some(Token::Dot) => {
                self.advance();
                let member = self.expect_ident()?;
                self.expect_token(&Token::Assign)?;
                let value = self.parse_expr()?;
                self.expect_token(&Token::Semicolon)?;
                Ok(Stmt::Assign {
                    target: LValue::Member(name, member),
                    value,
                    pos,
                })
            }
            Some(Token::Assign) => {
                self.advance();
                let value = self.parse_expr()?;
                self.expect_token(&Token::Semicolon)?;
                Ok(Stmt::Assign {
                    target: LValue::Var(name),
                    value,
                    pos,
                })
            }
            _ => Err(self.error("expected :=, ( or . after identifier")),
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.at();
        self.expect_keyword("IF")?;
        let mut branches = Vec::new();
        let cond = self.parse_expr()?;
        self.expect_keyword("THEN")?;
        let body = self.parse_statements(&[])?;
        branches.push((cond, body));
        let mut else_body = Vec::new();
        loop {
            if self.eat_keyword("ELSIF") {
                let cond = self.parse_expr()?;
                self.expect_keyword("THEN")?;
                let body = self.parse_statements(&[])?;
                branches.push((cond, body));
            } else if self.eat_keyword("ELSE") {
                else_body = self.parse_statements(&[])?;
            } else if self.eat_keyword("END_IF") {
                // Optional trailing semicolon.
                if self.peek() == Some(&Token::Semicolon) {
                    self.advance();
                }
                return Ok(Stmt::If {
                    branches,
                    else_body,
                    pos,
                });
            } else {
                return Err(self.error("expected ELSIF/ELSE/END_IF"));
            }
        }
    }

    fn parse_case(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.at();
        self.expect_keyword("CASE")?;
        let selector = self.parse_expr()?;
        self.expect_keyword("OF")?;
        let mut arms = Vec::new();
        let mut else_body = Vec::new();
        loop {
            if self.eat_keyword("ELSE") {
                else_body = self.parse_statements(&[])?;
                self.expect_keyword("END_CASE")?;
                break;
            }
            if self.eat_keyword("END_CASE") {
                break;
            }
            // Labels: int [.. int] {, int [.. int]} ':'
            let mut labels = Vec::new();
            loop {
                let value = match self.advance() {
                    Some(Token::Int(v)) => v,
                    Some(Token::Minus) => match self.advance() {
                        Some(Token::Int(v)) => -v,
                        _ => return Err(self.error("expected integer label")),
                    },
                    _ => return Err(self.error("expected CASE label")),
                };
                if self.peek() == Some(&Token::DotDot) {
                    self.advance();
                    let end = match self.advance() {
                        Some(Token::Int(v)) => v,
                        _ => return Err(self.error("expected range end")),
                    };
                    labels.push(CaseLabel::Range(value, end));
                } else {
                    labels.push(CaseLabel::Value(value));
                }
                if self.peek() == Some(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect_token(&Token::Colon)?;
            // Arm bodies end where the next label (integer / minus) or the
            // ELSE/END_CASE keywords begin.
            let mut body = Vec::new();
            loop {
                if self.is_done()
                    || matches!(self.peek(), Some(Token::Int(_)) | Some(Token::Minus))
                    || self.peek_keyword("ELSE")
                    || self.peek_keyword("END_CASE")
                {
                    break;
                }
                if self.peek() == Some(&Token::Semicolon) {
                    self.advance();
                    continue;
                }
                body.push(self.parse_statement()?);
            }
            arms.push((labels, body));
        }
        if self.peek() == Some(&Token::Semicolon) {
            self.advance();
        }
        Ok(Stmt::Case {
            selector,
            arms,
            else_body,
            pos,
        })
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.at();
        self.expect_keyword("FOR")?;
        let var = self.expect_ident()?;
        self.expect_token(&Token::Assign)?;
        let from = self.parse_expr()?;
        self.expect_keyword("TO")?;
        let to = self.parse_expr()?;
        let by = if self.eat_keyword("BY") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_keyword("DO")?;
        let body = self.parse_statements(&[])?;
        self.expect_keyword("END_FOR")?;
        if self.peek() == Some(&Token::Semicolon) {
            self.advance();
        }
        Ok(Stmt::For {
            var,
            from,
            to,
            by,
            body,
            pos,
        })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.at();
        self.expect_keyword("WHILE")?;
        let cond = self.parse_expr()?;
        self.expect_keyword("DO")?;
        let body = self.parse_statements(&[])?;
        self.expect_keyword("END_WHILE")?;
        if self.peek() == Some(&Token::Semicolon) {
            self.advance();
        }
        Ok(Stmt::While { cond, body, pos })
    }

    fn parse_repeat(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.at();
        self.expect_keyword("REPEAT")?;
        let body = self.parse_statements(&[])?;
        self.expect_keyword("UNTIL")?;
        let until = self.parse_expr()?;
        self.expect_keyword("END_REPEAT")?;
        if self.peek() == Some(&Token::Semicolon) {
            self.advance();
        }
        Ok(Stmt::Repeat { body, until, pos })
    }

    // --- expressions, precedence climbing ---------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_xor()?;
        loop {
            let op_pos = self.at();
            if !self.eat_keyword("OR") {
                return Ok(left);
            }
            let right = self.parse_xor()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right), op_pos);
        }
    }

    fn parse_xor(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        loop {
            let op_pos = self.at();
            if !self.eat_keyword("XOR") {
                return Ok(left);
            }
            let right = self.parse_and()?;
            left = Expr::Binary(BinOp::Xor, Box::new(left), Box::new(right), op_pos);
        }
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_comparison()?;
        loop {
            let op_pos = self.at();
            if !(self.eat_keyword("AND") || self.eat_keyword("&")) {
                return Ok(left);
            }
            let right = self.parse_comparison()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right), op_pos);
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Neq) => BinOp::Neq,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(left),
        };
        let op_pos = self.at();
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::Binary(op, Box::new(left), Box::new(right), op_pos))
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(left),
            };
            let op_pos = self.at();
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right), op_pos);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("MOD") => BinOp::Mod,
                _ => return Ok(left),
            };
            let op_pos = self.at();
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right), op_pos);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.at();
        if self.eat_keyword("NOT") {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner), pos));
        }
        if self.peek() == Some(&Token::Minus) {
            self.advance();
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner), pos));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.at();
        match self.advance() {
            Some(Token::Int(v)) => Ok(Expr::Lit(Literal::Int(v), pos)),
            Some(Token::Real(v)) => Ok(Expr::Lit(Literal::Real(v), pos)),
            Some(Token::Time(ns)) => Ok(Expr::Lit(Literal::Time(ns), pos)),
            Some(Token::Str(s)) => Ok(Expr::Lit(Literal::Str(s), pos)),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_uppercase();
                if upper == "TRUE" {
                    return Ok(Expr::Lit(Literal::Bool(true), pos));
                }
                if upper == "FALSE" {
                    return Ok(Expr::Lit(Literal::Bool(false), pos));
                }
                match self.peek() {
                    Some(Token::LParen) => {
                        // Builtin function call.
                        self.advance();
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            loop {
                                args.push(self.parse_expr()?);
                                if self.peek() == Some(&Token::Comma) {
                                    self.advance();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect_token(&Token::RParen)?;
                        Ok(Expr::Call {
                            name: upper,
                            args,
                            pos,
                        })
                    }
                    Some(Token::Dot) if matches!(self.peek2(), Some(Token::Ident(_))) => {
                        self.advance();
                        let member = self.expect_ident()?;
                        Ok(Expr::Member(name, member, pos))
                    }
                    _ => Ok(Expr::Var(name, pos)),
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected expression"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_program_with_vars_and_fbs() {
        let src = r#"
PROGRAM demo
VAR
    x : INT := 5;
    run AT %QX0.0 : BOOL;
    timer1 : TON;
END_VAR
VAR_INPUT
    setpoint : REAL;
END_VAR
x := x + 1;
timer1(IN := run, PT := T#5s);
run := timer1.Q;
END_PROGRAM
"#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.name, "demo");
        assert_eq!(program.vars.len(), 3);
        assert_eq!(program.vars[1].location.as_deref(), Some("QX0.0"));
        assert_eq!(program.vars[2].class, VarClass::Input);
        assert_eq!(program.fbs.len(), 1);
        assert_eq!(program.fbs[0].name, "timer1");
        assert_eq!(program.fbs[0].fb_type, FbType::Ton);
        assert_eq!(program.body.len(), 3);
        assert!(matches!(
            &program.body[1],
            Stmt::FbCall { instance, inputs, .. } if instance == "timer1" && inputs.len() == 2
        ));
    }

    #[test]
    fn precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary(BinOp::Add, l, r, _) => {
                assert!(matches!(*l, Expr::Lit(Literal::Int(1), _)));
                match *r {
                    Expr::Binary(BinOp::Mul, a, b, _) => {
                        assert!(matches!(*a, Expr::Lit(Literal::Int(2), _)));
                        assert!(matches!(*b, Expr::Lit(Literal::Int(3), _)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // AND binds tighter than OR; comparison tighter than AND.
        let e = parse_expression("a OR b AND c = 1").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _, _)));
    }

    #[test]
    fn statement_and_expression_spans() {
        let body = parse_statements("x := 1;\n  y := x / 0;").unwrap();
        assert_eq!(body[0].pos(), Pos::new(1, 1));
        assert_eq!(body[1].pos(), Pos::new(2, 3));
        // The division's position anchors the operator token.
        match &body[1] {
            Stmt::Assign { value, .. } => {
                assert_eq!(value.pos(), Pos::new(2, 10));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Parse errors carry the offending token's position.
        let err = parse_statements("x := 1;\n  y := ;").unwrap_err();
        assert_eq!(err.pos, Pos::new(2, 8));
    }

    #[test]
    fn if_elsif_else() {
        let body =
            parse_statements("IF a > 1 THEN x := 1; ELSIF a > 0 THEN x := 2; ELSE x := 3; END_IF;")
                .unwrap();
        match &body[0] {
            Stmt::If {
                branches,
                else_body,
                ..
            } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_with_ranges() {
        let body = parse_statements(
            "CASE sel OF 1: x := 1; 2, 3: x := 2; 4..6: x := 3; ELSE x := 0; END_CASE;",
        )
        .unwrap();
        match &body[0] {
            Stmt::Case {
                arms, else_body, ..
            } => {
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[1].0.len(), 2);
                assert_eq!(arms[2].0, vec![CaseLabel::Range(4, 6)]);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loops() {
        let body = parse_statements(
            "FOR i := 1 TO 10 BY 2 DO s := s + i; END_FOR; \
             WHILE s > 0 DO s := s - 1; END_WHILE; \
             REPEAT s := s + 1; UNTIL s >= 5 END_REPEAT;",
        )
        .unwrap();
        assert_eq!(body.len(), 3);
        assert!(matches!(body[0], Stmt::For { .. }));
        assert!(matches!(body[1], Stmt::While { .. }));
        assert!(matches!(body[2], Stmt::Repeat { .. }));
    }

    #[test]
    fn fb_output_connections() {
        let body = parse_statements("c1(CU := pulse, PV := 10, Q => done, CV => count);").unwrap();
        match &body[0] {
            Stmt::FbCall {
                inputs, outputs, ..
            } => {
                assert_eq!(inputs.len(), 2);
                assert_eq!(outputs.len(), 2);
                assert_eq!(outputs[0], ("Q".to_string(), "done".to_string()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statements("x := ;").is_err());
        assert!(parse_statements("IF a THEN x := 1;").is_err()); // missing END_IF
        assert!(parse_program("PROGRAM p VAR x : FLOAT32; END_VAR END_PROGRAM").is_err());
        assert!(parse_statements("x + 1;").is_err());
    }

    #[test]
    fn builtin_calls() {
        let e = parse_expression("MAX(a, MIN(b, 3))").unwrap();
        match e {
            Expr::Call { name, args, .. } => {
                assert_eq!(name, "MAX");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
