//! IEC 61131-3 Structured Text: lexer, parser, AST, and interpreter.

pub mod ast;
pub mod check;
pub mod interp;
pub mod lexer;
pub mod parser;
