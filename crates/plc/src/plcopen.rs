//! IEC 61131-3 PLCopen XML (TC6) import: extracts the program POU —
//! interface variables and the Structured Text body — as used by SG-ML's
//! *"IEC 61131-3 PLCopen XML file that contains control logic"*.

use crate::st::ast::{DataType, FbDecl, FbType, Pos, Program, VarClass, VarDecl};
use crate::st::parser::{parse_expression, parse_statements, ParseError};
use sgcr_xml::{Document, ElementRef};
use std::fmt;

/// An error importing PLCopen XML.
#[derive(Debug, Clone, PartialEq)]
pub enum PlcOpenError {
    /// Not well-formed XML.
    Xml(String),
    /// No `<pou pouType="program">` found.
    NoProgramPou,
    /// A variable had an unknown type.
    UnknownType {
        /// Variable name.
        variable: String,
        /// Type name found.
        type_name: String,
    },
    /// The ST body failed to parse.
    Body(ParseError),
}

impl fmt::Display for PlcOpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlcOpenError::Xml(e) => write!(f, "not well-formed XML: {e}"),
            PlcOpenError::NoProgramPou => write!(f, "no program POU in PLCopen project"),
            PlcOpenError::UnknownType {
                variable,
                type_name,
            } => write!(f, "variable {variable:?} has unknown type {type_name:?}"),
            PlcOpenError::Body(e) => write!(f, "structured text body: {e}"),
        }
    }
}

impl std::error::Error for PlcOpenError {}

/// Parses a PLCopen XML project, returning the first program POU.
///
/// # Errors
///
/// Returns [`PlcOpenError`] when the XML is malformed, no program POU
/// exists, or its declarations/body do not parse.
pub fn parse_plcopen(text: &str) -> Result<Program, PlcOpenError> {
    let doc = Document::parse(text).map_err(|e| PlcOpenError::Xml(e.to_string()))?;
    let root = doc.root_element();
    let pous = root.descendant("pous").ok_or(PlcOpenError::NoProgramPou)?;
    let pou = pous
        .children_named("pou")
        .into_iter()
        .find(|p| {
            p.attr("pouType")
                .is_some_and(|t| t.eq_ignore_ascii_case("program"))
        })
        .ok_or(PlcOpenError::NoProgramPou)?;

    let mut program = Program {
        name: pou.attr_or("name", "main").to_string(),
        ..Program::default()
    };

    if let Some(interface) = pou.child("interface") {
        for (section, class) in [
            ("localVars", VarClass::Local),
            ("inputVars", VarClass::Input),
            ("outputVars", VarClass::Output),
            ("inOutVars", VarClass::InOut),
            ("globalVars", VarClass::Global),
        ] {
            for vars in interface.children_named(section) {
                for variable in vars.children_named("variable") {
                    parse_variable(&variable, class, &mut program)?;
                }
            }
        }
    }

    let body = pou
        .child("body")
        .and_then(|b| b.child("ST"))
        .map(|st| st.deep_text())
        .unwrap_or_default();
    program.body = parse_statements(&body).map_err(PlcOpenError::Body)?;
    Ok(program)
}

fn parse_variable(
    variable: &ElementRef<'_>,
    class: VarClass,
    program: &mut Program,
) -> Result<(), PlcOpenError> {
    let name = variable.attr_or("name", "").to_string();
    let location = variable
        .attr("address")
        .map(|a| a.trim_start_matches('%').to_uppercase());
    let type_el = variable.child("type");
    // <type><BOOL/></type> or <type><derived name="TON"/></type>
    let type_name = type_el
        .and_then(|t| {
            t.child_elements().next().map(|c| {
                if c.name() == "derived" {
                    c.attr_or("name", "").to_string()
                } else {
                    c.name().to_string()
                }
            })
        })
        .unwrap_or_default();

    if let Some(fb_type) = FbType::parse(&type_name) {
        program.fbs.push(FbDecl {
            name,
            fb_type,
            pos: Pos::default(),
        });
        return Ok(());
    }
    let Some(ty) = DataType::parse(&type_name) else {
        return Err(PlcOpenError::UnknownType {
            variable: name,
            type_name,
        });
    };
    let initial = variable
        .child("initialValue")
        .and_then(|iv| iv.child("simpleValue"))
        .and_then(|sv| sv.attr("value"))
        .and_then(|v| parse_expression(v).ok());
    program.vars.push(VarDecl {
        name,
        ty,
        initial,
        location,
        class,
        pos: Pos::default(),
    });
    Ok(())
}

/// Generates PLCopen XML wrapping the given ST body and variables — used by
/// the model generators to ship control logic as standard files.
pub fn write_plcopen(
    program_name: &str,
    vars: &[(String, String, Option<String>)],
    st_body: &str,
) -> String {
    let mut doc = Document::new("project");
    let root = doc.root_id();
    doc.set_attr(root, "xmlns", "http://www.plcopen.org/xml/tc6_0201");
    let types = doc.add_element(root, "types");
    doc.add_element(types, "dataTypes");
    let pous = doc.add_element(types, "pous");
    let pou = doc.add_element(pous, "pou");
    doc.set_attr(pou, "name", program_name);
    doc.set_attr(pou, "pouType", "program");
    let interface = doc.add_element(pou, "interface");
    let local = doc.add_element(interface, "localVars");
    for (name, type_name, address) in vars {
        let v = doc.add_element(local, "variable");
        doc.set_attr(v, "name", name);
        if let Some(addr) = address {
            doc.set_attr(v, "address", addr);
        }
        let t = doc.add_element(v, "type");
        if FbType::parse(type_name).is_some() {
            let d = doc.add_element(t, "derived");
            doc.set_attr(d, "name", type_name);
        } else {
            doc.add_element(t, type_name);
        }
    }
    let body = doc.add_element(pou, "body");
    let st = doc.add_element(body, "ST");
    doc.add_cdata(st, st_body);
    doc.to_xml()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<project xmlns="http://www.plcopen.org/xml/tc6_0201">
  <types>
    <pous>
      <pou name="cplc" pouType="program">
        <interface>
          <localVars>
            <variable name="cmd" address="%QX0.0"><type><BOOL/></type></variable>
            <variable name="level" address="%IW0"><type><INT/></type>
              <initialValue><simpleValue value="0"/></initialValue></variable>
            <variable name="t1"><type><derived name="TON"/></type></variable>
            <variable name="gain"><type><REAL/></type>
              <initialValue><simpleValue value="1.5"/></initialValue></variable>
          </localVars>
        </interface>
        <body><ST><![CDATA[
          IF level > 100 THEN cmd := TRUE; ELSE cmd := FALSE; END_IF;
        ]]></ST></body>
      </pou>
    </pous>
  </types>
</project>"#;

    #[test]
    fn parse_sample_project() {
        let program = parse_plcopen(SAMPLE).unwrap();
        assert_eq!(program.name, "cplc");
        assert_eq!(program.vars.len(), 3);
        assert_eq!(program.vars[0].location.as_deref(), Some("QX0.0"));
        assert_eq!(program.fbs.len(), 1);
        assert_eq!(program.body.len(), 1);
    }

    #[test]
    fn roundtrip_via_writer() {
        let xml = write_plcopen(
            "demo",
            &[
                ("run".into(), "BOOL".into(), Some("%QX0.1".into())),
                ("timer".into(), "TON".into(), None),
            ],
            "timer(IN := run, PT := T#1s);",
        );
        let program = parse_plcopen(&xml).unwrap();
        assert_eq!(program.name, "demo");
        assert_eq!(program.vars.len(), 1);
        assert_eq!(program.fbs.len(), 1);
        assert_eq!(program.body.len(), 1);
    }

    #[test]
    fn missing_pou_rejected() {
        assert_eq!(
            parse_plcopen("<project><types><pous/></types></project>"),
            Err(PlcOpenError::NoProgramPou)
        );
    }

    #[test]
    fn unknown_type_rejected() {
        let xml = r#"<project><types><pous><pou name="p" pouType="program">
            <interface><localVars><variable name="x"><type><QUATERNION/></type></variable></localVars></interface>
            <body><ST></ST></body></pou></pous></types></project>"#;
        assert!(matches!(
            parse_plcopen(xml),
            Err(PlcOpenError::UnknownType { .. })
        ));
    }
}
