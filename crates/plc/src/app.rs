//! The virtual PLC network application: Modbus server towards SCADA, MMS
//! client towards IEDs, scan cycle in between — the OpenPLC61850
//! architecture on an emulated host.

use crate::runtime::PlcRuntime;
use crate::st::interp::StValue;
use parking_lot::Mutex;
use sgcr_iec61850::{
    DataValue, GooseSubscriber, MmsClient, MmsPdu, MmsRequest, MmsResponse, MMS_PORT,
};
use sgcr_modbus::{ModbusServerApp, SharedRegisters};
use sgcr_net::{
    ethertype, AppPlane, ConnId, EthernetFrame, HostCtx, Ipv4Addr, SimDuration, SocketApp,
};
use sgcr_obs::{Counter, Event as ObsEvent, Plane, Telemetry, TraceCtx};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

const TOKEN_SCAN: u64 = 1;

/// A point polled from an IED into a PLC variable.
#[derive(Debug, Clone, PartialEq)]
pub struct MmsReadBinding {
    /// IED server address.
    pub server: Ipv4Addr,
    /// MMS item id (`GIED1LD0/MMXU1$MX$TotW$mag$f`).
    pub item: String,
    /// PLC variable receiving the value.
    pub variable: String,
    /// Multiply the read value by this before storing (unit scaling).
    pub scale: f64,
}

/// A PLC boolean variable driving an IED control on change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmsWriteBinding {
    /// IED server address.
    pub server: Ipv4Addr,
    /// Control item (`GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal`).
    pub item: String,
    /// PLC variable watched for changes.
    pub variable: String,
}

/// A GOOSE dataset entry mapped into a PLC variable: the PLC subscribes to
/// the control block on its station bus and copies the entry's value into
/// the variable on reception, ahead of the next scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GooseBinding {
    /// Control block reference to subscribe to.
    pub gocb_ref: String,
    /// Dataset entry index.
    pub index: usize,
    /// PLC variable receiving the value.
    pub variable: String,
}

/// Status snapshot shared with the experiment harness.
#[derive(Debug, Default)]
pub struct PlcStatus {
    /// Completed scans.
    pub scans: u64,
    /// Fault message if the program faulted.
    pub fault: Option<String>,
    /// MMS reads completed.
    pub reads_ok: u64,
    /// MMS controls issued.
    pub controls_sent: u64,
}

/// Shared observable handle to a running PLC.
pub type PlcHandle = Arc<Mutex<PlcStatus>>;

struct MmsLink {
    client: MmsClient,
    conn: Option<ConnId>,
    /// invoke id → items of the outstanding read.
    outstanding: HashMap<u32, Vec<String>>,
}

/// The virtual PLC application.
pub struct PlcApp {
    runtime: PlcRuntime,
    modbus: ModbusServerApp,
    scan_period: SimDuration,
    reads: Vec<MmsReadBinding>,
    writes: Vec<MmsWriteBinding>,
    gooses: Vec<GooseBinding>,
    goose_subs: Vec<GooseSubscriber>,
    links: HashMap<Ipv4Addr, MmsLink>,
    conn_to_server: HashMap<ConnId, Ipv4Addr>,
    last_written: HashMap<String, bool>,
    status: PlcHandle,
    telemetry: Telemetry,
    controls_counter: Counter,
    /// Shared Modbus image, kept for output-change detection while tracing.
    registers: SharedRegisters,
    /// Trace context of the GOOSE reception that will causally drive the
    /// next scan; consumed (taken) when the scan runs.
    pending_cause: Option<TraceCtx>,
    /// Trace context of the scan that last *changed* the Modbus output
    /// image: the causal parent of subsequent SCADA poll responses.
    image_ctx: Option<TraceCtx>,
}

impl PlcApp {
    /// Builds the app with telemetry disabled. `registers` is the Modbus
    /// image shared with the embedded server; `reads`/`writes` bind IED
    /// points to PLC variables.
    pub fn new(
        runtime: PlcRuntime,
        registers: SharedRegisters,
        scan_period: SimDuration,
        reads: Vec<MmsReadBinding>,
        writes: Vec<MmsWriteBinding>,
    ) -> (PlcApp, PlcHandle) {
        PlcApp::with_telemetry(
            runtime,
            registers,
            scan_period,
            reads,
            writes,
            Telemetry::disabled(),
        )
    }

    /// Builds the app with a telemetry handle. Issued MMS controls feed the
    /// `plc.controls_sent` counter and journal
    /// [`PlcControl`](sgcr_obs::Event::PlcControl) events.
    pub fn with_telemetry(
        runtime: PlcRuntime,
        registers: SharedRegisters,
        scan_period: SimDuration,
        reads: Vec<MmsReadBinding>,
        writes: Vec<MmsWriteBinding>,
        telemetry: Telemetry,
    ) -> (PlcApp, PlcHandle) {
        let status: PlcHandle = Arc::default();
        (
            PlcApp {
                runtime,
                modbus: ModbusServerApp::new(registers.clone()),
                scan_period,
                reads,
                writes,
                gooses: Vec::new(),
                goose_subs: Vec::new(),
                links: HashMap::new(),
                conn_to_server: HashMap::new(),
                last_written: HashMap::new(),
                status: status.clone(),
                controls_counter: telemetry.counter("plc.controls_sent"),
                telemetry,
                registers,
                pending_cause: None,
                image_ctx: None,
            },
            status,
        )
    }

    /// Installs GOOSE dataset → PLC variable bindings; the app subscribes to
    /// each distinct control block on its station bus.
    pub fn set_goose_bindings(&mut self, bindings: Vec<GooseBinding>) {
        let mut refs: Vec<String> = bindings.iter().map(|b| b.gocb_ref.clone()).collect();
        refs.sort();
        refs.dedup();
        self.goose_subs = refs.iter().map(|g| GooseSubscriber::new(g)).collect();
        self.gooses = bindings;
    }

    /// The servers this PLC needs MMS sessions to.
    fn servers(&self) -> Vec<Ipv4Addr> {
        let mut servers: Vec<Ipv4Addr> = self
            .reads
            .iter()
            .map(|r| r.server)
            .chain(self.writes.iter().map(|w| w.server))
            .collect();
        servers.sort();
        servers.dedup();
        servers
    }

    fn scan(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        // A GOOSE reception since the previous scan is this scan's causal
        // parent (consumed exactly once); otherwise the scan is periodic and
        // roots a fresh trace only if tracing is on.
        let scan_span =
            ctx.tracer()
                .open("plc.scan", Plane::Control, self.pending_cause.take(), now);
        let scan_ctx = scan_span.ctx();
        if scan_ctx.is_some() {
            // MMS polls and controls issued below chain to the scan span.
            ctx.set_trace_parent(scan_ctx);
        }
        // Snapshot the Modbus image (tracing only) so an output change made
        // by this scan can be attributed to it for later SCADA polls.
        let image_before = scan_ctx.map(|_| self.registers.with(|r| r.clone()));
        self.runtime.scan(now.as_nanos());
        if let Some(before) = image_before {
            if self.registers.with(|r| *r != before) {
                self.image_ctx = scan_ctx;
            }
        }
        {
            let mut status = self.status.lock();
            status.scans = self.runtime.scan_count();
            status.fault = self.runtime.fault().map(|f| f.message.clone());
        }

        // Poll IED reads. Grouped in a BTreeMap so the request order (and
        // with it frame timing and trace-ID assignment) is deterministic.
        let reads = self.reads.clone();
        let mut per_server: BTreeMap<Ipv4Addr, Vec<String>> = BTreeMap::new();
        for r in &reads {
            per_server.entry(r.server).or_default().push(r.item.clone());
        }
        for (server, items) in per_server {
            if let Some(link) = self.links.get_mut(&server) {
                if let Some(conn) = link.conn {
                    let (invoke_id, wire) = link.client.request(MmsRequest::Read {
                        items: items.clone(),
                    });
                    link.outstanding.insert(invoke_id, items);
                    ctx.tcp_send(conn, &wire);
                }
            }
        }

        // Issue controls for changed output variables. The first observation
        // of a variable only records its value: controls are edge-triggered,
        // so startup defaults never emit a spurious open/close.
        let writes = self.writes.clone();
        for w in &writes {
            let Some(value) = self.runtime.get(&w.variable).and_then(StValue::as_bool) else {
                continue;
            };
            let changed = match self.last_written.get(&w.variable) {
                None => {
                    self.last_written.insert(w.variable.clone(), value);
                    false
                }
                Some(prev) => *prev != value,
            };
            if !changed {
                continue;
            }
            if let Some(link) = self.links.get_mut(&w.server) {
                if let Some(conn) = link.conn {
                    let (_, wire) = link.client.request(MmsRequest::Write {
                        items: vec![w.item.clone()],
                        values: vec![DataValue::Bool(value)],
                    });
                    let mut control_span =
                        ctx.tracer()
                            .open("plc.control", Plane::Control, scan_ctx, now);
                    if control_span.is_recording() {
                        control_span.attr("variable", w.variable.as_str());
                        control_span.attr("item", w.item.as_str());
                        control_span.attr("value", if value { "true" } else { "false" });
                    }
                    let control_ctx = control_span.ctx();
                    if control_ctx.is_some() {
                        ctx.set_trace_parent(control_ctx);
                    }
                    ctx.tcp_send(conn, &wire);
                    control_span.end(now);
                    if scan_ctx.is_some() {
                        // Later sends in this scan are not caused by this
                        // particular control.
                        ctx.set_trace_parent(scan_ctx);
                    }
                    self.last_written.insert(w.variable.clone(), value);
                    self.status.lock().controls_sent += 1;
                    self.controls_counter.inc();
                    self.telemetry
                        .record(now.as_nanos(), || ObsEvent::PlcControl {
                            variable: w.variable.clone(),
                            value,
                        });
                }
            }
        }

        scan_span.end(now);
        ctx.set_timer(self.scan_period, TOKEN_SCAN);
    }

    fn handle_goose_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
        let now = ctx.now();
        for sub in &mut self.goose_subs {
            if sub.process(now, frame).is_none() {
                continue;
            }
            let gocb = sub.gocb_ref.clone();
            let data = sub.data.clone();
            let mut span =
                ctx.tracer()
                    .open("plc.goose_rx", Plane::Control, ctx.trace_parent(), now);
            if span.is_recording() {
                span.attr("gocb", gocb.as_str());
            }
            let rx_ctx = span.ctx();
            span.end(now);
            if rx_ctx.is_some() {
                // The next scan consumes this: GOOSE-driven logic is
                // parented to the reception, hence to the publishing IED.
                self.pending_cause = rx_ctx;
            }
            for binding in &self.gooses {
                if binding.gocb_ref != gocb {
                    continue;
                }
                let Some(value) = data.get(binding.index) else {
                    continue;
                };
                let st_value = match value {
                    DataValue::Bool(v) => StValue::Bool(*v),
                    DataValue::Float(f) => StValue::Real(f64::from(*f)),
                    DataValue::Int(i) => StValue::Int(*i),
                    DataValue::Uint(u) => StValue::Int(*u as i64),
                    other => match other.as_dbpos() {
                        Some(v) => StValue::Bool(v),
                        None => continue,
                    },
                };
                self.runtime.set(&binding.variable, st_value);
            }
        }
    }

    fn handle_mms_data(&mut self, server: Ipv4Addr, data: &[u8]) {
        let Some(link) = self.links.get_mut(&server) else {
            return;
        };
        let pdus = link.client.feed(data);
        for pdu in pdus {
            if let MmsPdu::ConfirmedResponse {
                invoke_id,
                response: MmsResponse::Read { results },
            } = pdu
            {
                let Some(items) = link.outstanding.remove(&invoke_id) else {
                    continue;
                };
                for (item, result) in items.iter().zip(results) {
                    let Ok(value) = result else { continue };
                    let binding = self
                        .reads
                        .iter()
                        .find(|r| r.server == server && r.item == *item);
                    if let Some(binding) = binding {
                        let st_value = match &value {
                            DataValue::Bool(b) => StValue::Bool(*b),
                            DataValue::Float(f) => StValue::Real(f64::from(*f) * binding.scale),
                            DataValue::Int(i) => StValue::Int(*i),
                            DataValue::Uint(u) => StValue::Int(*u as i64),
                            other => match other.as_dbpos() {
                                Some(b) => StValue::Bool(b),
                                None => continue,
                            },
                        };
                        self.runtime.set(&binding.variable, st_value);
                        self.status.lock().reads_ok += 1;
                    }
                }
            }
        }
    }
}

impl SocketApp for PlcApp {
    fn plane(&self) -> AppPlane {
        AppPlane::Plc
    }

    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.modbus.on_start(ctx);
        for server in self.servers() {
            let conn = ctx.tcp_connect(server, MMS_PORT);
            self.links.insert(
                server,
                MmsLink {
                    client: MmsClient::new(),
                    conn: None,
                    outstanding: HashMap::new(),
                },
            );
            self.conn_to_server.insert(conn, server);
        }
        ctx.set_timer(self.scan_period, TOKEN_SCAN);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        if token == TOKEN_SCAN {
            self.scan(ctx);
        }
    }

    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        if let Some(&server) = self.conn_to_server.get(&conn) {
            if let Some(link) = self.links.get_mut(&server) {
                link.conn = Some(conn);
                let init = link.client.initiate();
                ctx.tcp_send(conn, &init);
            }
        }
    }

    fn on_tcp_accepted(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, peer: (Ipv4Addr, u16)) {
        self.modbus.on_tcp_accepted(ctx, conn, peer);
    }

    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, data: &[u8]) {
        if let Some(&server) = self.conn_to_server.get(&conn) {
            self.handle_mms_data(server, data);
        } else {
            // Modbus traffic from SCADA. The values a poll returns were
            // produced by the scan that last changed the output image, so
            // responses are parented to that scan, not to the poll request.
            if self.image_ctx.is_some() {
                ctx.set_trace_parent(self.image_ctx);
            }
            self.modbus.on_tcp_data(ctx, conn, data);
        }
    }

    fn on_raw_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
        if frame.ethertype == ethertype::GOOSE && !self.goose_subs.is_empty() {
            self.handle_goose_frame(ctx, frame);
        }
    }

    fn on_tcp_closed(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        if let Some(server) = self.conn_to_server.remove(&conn) {
            if let Some(link) = self.links.get_mut(&server) {
                link.conn = None;
            }
        } else {
            self.modbus.on_tcp_closed(ctx, conn);
        }
    }
}
