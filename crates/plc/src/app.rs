//! The virtual PLC network application: Modbus server towards SCADA, MMS
//! client towards IEDs, scan cycle in between — the OpenPLC61850
//! architecture on an emulated host.

use crate::runtime::PlcRuntime;
use crate::st::interp::StValue;
use parking_lot::Mutex;
use sgcr_iec61850::{DataValue, MmsClient, MmsPdu, MmsRequest, MmsResponse, MMS_PORT};
use sgcr_modbus::{ModbusServerApp, SharedRegisters};
use sgcr_net::{ConnId, HostCtx, Ipv4Addr, SimDuration, SocketApp};
use sgcr_obs::{Counter, Event as ObsEvent, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

const TOKEN_SCAN: u64 = 1;

/// A point polled from an IED into a PLC variable.
#[derive(Debug, Clone, PartialEq)]
pub struct MmsReadBinding {
    /// IED server address.
    pub server: Ipv4Addr,
    /// MMS item id (`GIED1LD0/MMXU1$MX$TotW$mag$f`).
    pub item: String,
    /// PLC variable receiving the value.
    pub variable: String,
    /// Multiply the read value by this before storing (unit scaling).
    pub scale: f64,
}

/// A PLC boolean variable driving an IED control on change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmsWriteBinding {
    /// IED server address.
    pub server: Ipv4Addr,
    /// Control item (`GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal`).
    pub item: String,
    /// PLC variable watched for changes.
    pub variable: String,
}

/// Status snapshot shared with the experiment harness.
#[derive(Debug, Default)]
pub struct PlcStatus {
    /// Completed scans.
    pub scans: u64,
    /// Fault message if the program faulted.
    pub fault: Option<String>,
    /// MMS reads completed.
    pub reads_ok: u64,
    /// MMS controls issued.
    pub controls_sent: u64,
}

/// Shared observable handle to a running PLC.
pub type PlcHandle = Arc<Mutex<PlcStatus>>;

struct MmsLink {
    client: MmsClient,
    conn: Option<ConnId>,
    /// invoke id → items of the outstanding read.
    outstanding: HashMap<u32, Vec<String>>,
}

/// The virtual PLC application.
pub struct PlcApp {
    runtime: PlcRuntime,
    modbus: ModbusServerApp,
    scan_period: SimDuration,
    reads: Vec<MmsReadBinding>,
    writes: Vec<MmsWriteBinding>,
    links: HashMap<Ipv4Addr, MmsLink>,
    conn_to_server: HashMap<ConnId, Ipv4Addr>,
    last_written: HashMap<String, bool>,
    status: PlcHandle,
    telemetry: Telemetry,
    controls_counter: Counter,
}

impl PlcApp {
    /// Builds the app with telemetry disabled. `registers` is the Modbus
    /// image shared with the embedded server; `reads`/`writes` bind IED
    /// points to PLC variables.
    pub fn new(
        runtime: PlcRuntime,
        registers: SharedRegisters,
        scan_period: SimDuration,
        reads: Vec<MmsReadBinding>,
        writes: Vec<MmsWriteBinding>,
    ) -> (PlcApp, PlcHandle) {
        PlcApp::with_telemetry(
            runtime,
            registers,
            scan_period,
            reads,
            writes,
            Telemetry::disabled(),
        )
    }

    /// Builds the app with a telemetry handle. Issued MMS controls feed the
    /// `plc.controls_sent` counter and journal
    /// [`PlcControl`](sgcr_obs::Event::PlcControl) events.
    pub fn with_telemetry(
        runtime: PlcRuntime,
        registers: SharedRegisters,
        scan_period: SimDuration,
        reads: Vec<MmsReadBinding>,
        writes: Vec<MmsWriteBinding>,
        telemetry: Telemetry,
    ) -> (PlcApp, PlcHandle) {
        let status: PlcHandle = Arc::default();
        (
            PlcApp {
                runtime,
                modbus: ModbusServerApp::new(registers),
                scan_period,
                reads,
                writes,
                links: HashMap::new(),
                conn_to_server: HashMap::new(),
                last_written: HashMap::new(),
                status: status.clone(),
                controls_counter: telemetry.counter("plc.controls_sent"),
                telemetry,
            },
            status,
        )
    }

    /// The servers this PLC needs MMS sessions to.
    fn servers(&self) -> Vec<Ipv4Addr> {
        let mut servers: Vec<Ipv4Addr> = self
            .reads
            .iter()
            .map(|r| r.server)
            .chain(self.writes.iter().map(|w| w.server))
            .collect();
        servers.sort();
        servers.dedup();
        servers
    }

    fn scan(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        self.runtime.scan(now.as_nanos());
        {
            let mut status = self.status.lock();
            status.scans = self.runtime.scan_count();
            status.fault = self.runtime.fault().map(|f| f.message.clone());
        }

        // Poll IED reads.
        let reads = self.reads.clone();
        let mut per_server: HashMap<Ipv4Addr, Vec<String>> = HashMap::new();
        for r in &reads {
            per_server.entry(r.server).or_default().push(r.item.clone());
        }
        for (server, items) in per_server {
            if let Some(link) = self.links.get_mut(&server) {
                if let Some(conn) = link.conn {
                    let (invoke_id, wire) = link.client.request(MmsRequest::Read {
                        items: items.clone(),
                    });
                    link.outstanding.insert(invoke_id, items);
                    ctx.tcp_send(conn, &wire);
                }
            }
        }

        // Issue controls for changed output variables. The first observation
        // of a variable only records its value: controls are edge-triggered,
        // so startup defaults never emit a spurious open/close.
        let writes = self.writes.clone();
        for w in &writes {
            let Some(value) = self.runtime.get(&w.variable).and_then(StValue::as_bool) else {
                continue;
            };
            let changed = match self.last_written.get(&w.variable) {
                None => {
                    self.last_written.insert(w.variable.clone(), value);
                    false
                }
                Some(prev) => *prev != value,
            };
            if !changed {
                continue;
            }
            if let Some(link) = self.links.get_mut(&w.server) {
                if let Some(conn) = link.conn {
                    let (_, wire) = link.client.request(MmsRequest::Write {
                        items: vec![w.item.clone()],
                        values: vec![DataValue::Bool(value)],
                    });
                    ctx.tcp_send(conn, &wire);
                    self.last_written.insert(w.variable.clone(), value);
                    self.status.lock().controls_sent += 1;
                    self.controls_counter.inc();
                    self.telemetry
                        .record(now.as_nanos(), || ObsEvent::PlcControl {
                            variable: w.variable.clone(),
                            value,
                        });
                }
            }
        }

        ctx.set_timer(self.scan_period, TOKEN_SCAN);
    }

    fn handle_mms_data(&mut self, server: Ipv4Addr, data: &[u8]) {
        let Some(link) = self.links.get_mut(&server) else {
            return;
        };
        let pdus = link.client.feed(data);
        for pdu in pdus {
            if let MmsPdu::ConfirmedResponse {
                invoke_id,
                response: MmsResponse::Read { results },
            } = pdu
            {
                let Some(items) = link.outstanding.remove(&invoke_id) else {
                    continue;
                };
                for (item, result) in items.iter().zip(results) {
                    let Ok(value) = result else { continue };
                    let binding = self
                        .reads
                        .iter()
                        .find(|r| r.server == server && r.item == *item);
                    if let Some(binding) = binding {
                        let st_value = match &value {
                            DataValue::Bool(b) => StValue::Bool(*b),
                            DataValue::Float(f) => StValue::Real(f64::from(*f) * binding.scale),
                            DataValue::Int(i) => StValue::Int(*i),
                            DataValue::Uint(u) => StValue::Int(*u as i64),
                            other => match other.as_dbpos() {
                                Some(b) => StValue::Bool(b),
                                None => continue,
                            },
                        };
                        self.runtime.set(&binding.variable, st_value);
                        self.status.lock().reads_ok += 1;
                    }
                }
            }
        }
    }
}

impl SocketApp for PlcApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.modbus.on_start(ctx);
        for server in self.servers() {
            let conn = ctx.tcp_connect(server, MMS_PORT);
            self.links.insert(
                server,
                MmsLink {
                    client: MmsClient::new(),
                    conn: None,
                    outstanding: HashMap::new(),
                },
            );
            self.conn_to_server.insert(conn, server);
        }
        ctx.set_timer(self.scan_period, TOKEN_SCAN);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        if token == TOKEN_SCAN {
            self.scan(ctx);
        }
    }

    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        if let Some(&server) = self.conn_to_server.get(&conn) {
            if let Some(link) = self.links.get_mut(&server) {
                link.conn = Some(conn);
                let init = link.client.initiate();
                ctx.tcp_send(conn, &init);
            }
        }
    }

    fn on_tcp_accepted(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, peer: (Ipv4Addr, u16)) {
        self.modbus.on_tcp_accepted(ctx, conn, peer);
    }

    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, data: &[u8]) {
        if let Some(&server) = self.conn_to_server.get(&conn) {
            self.handle_mms_data(server, data);
        } else {
            self.modbus.on_tcp_data(ctx, conn, data);
        }
    }

    fn on_tcp_closed(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        if let Some(server) = self.conn_to_server.remove(&conn) {
            if let Some(link) = self.links.get_mut(&server) {
                link.conn = None;
            }
        } else {
            self.modbus.on_tcp_closed(ctx, conn);
        }
    }
}
