//! The PLC scan-cycle runtime: located variables bound to the Modbus data
//! tables, executed over the ST interpreter.

use crate::st::ast::{Program, VarClass};
use crate::st::interp::{Interpreter, RuntimeError, StValue};
use sgcr_modbus::SharedRegisters;
use std::fmt;

/// A parsed direct address (`%QX0.0`, `%IW3`, …) mapped onto the Modbus
/// tables using the OpenPLC convention:
///
/// * `%QX a.b` → coil `a*8+b` (read/write)
/// * `%IX a.b` → discrete input `a*8+b` (read-only)
/// * `%QW n`   → holding register `n` (read/write)
/// * `%IW n`   → input register `n` (read-only)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPoint {
    /// Coil (bit output).
    Coil(u16),
    /// Discrete input (bit input).
    Discrete(u16),
    /// Holding register (word output).
    Holding(u16),
    /// Input register (word input).
    Input(u16),
}

impl IoPoint {
    /// Parses a direct address without the leading `%`.
    pub fn parse(address: &str) -> Option<IoPoint> {
        let upper = address.trim_start_matches('%').to_uppercase();
        let (kind, rest) = upper.split_at(2.min(upper.len()));
        match kind {
            "QX" | "IX" => {
                let (byte, bit) = rest.split_once('.')?;
                let index = byte.parse::<u16>().ok()? * 8 + bit.parse::<u16>().ok()?;
                Some(if kind == "QX" {
                    IoPoint::Coil(index)
                } else {
                    IoPoint::Discrete(index)
                })
            }
            "QW" | "MW" => Some(IoPoint::Holding(rest.parse().ok()?)),
            "IW" => Some(IoPoint::Input(rest.parse().ok()?)),
            _ => None,
        }
    }

    /// Whether the PLC writes this point back after the scan.
    pub fn is_output(self) -> bool {
        matches!(self, IoPoint::Coil(_) | IoPoint::Holding(_))
    }
}

impl fmt::Display for IoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoPoint::Coil(i) => write!(f, "%QX{}.{}", i / 8, i % 8),
            IoPoint::Discrete(i) => write!(f, "%IX{}.{}", i / 8, i % 8),
            IoPoint::Holding(i) => write!(f, "%QW{i}"),
            IoPoint::Input(i) => write!(f, "%IW{i}"),
        }
    }
}

/// The PLC runtime: interpreter + I/O image synchronized with the Modbus
/// tables on every scan.
pub struct PlcRuntime {
    interp: Interpreter,
    bindings: Vec<(String, IoPoint)>,
    registers: SharedRegisters,
    fault: Option<RuntimeError>,
    scans: u64,
}

impl PlcRuntime {
    /// Builds a runtime from a parsed program and the shared Modbus tables.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if a variable initializer fails or a located
    /// variable has an unparsable address.
    pub fn new(program: Program, registers: SharedRegisters) -> Result<PlcRuntime, RuntimeError> {
        let mut bindings = Vec::new();
        for decl in &program.vars {
            if let Some(address) = &decl.location {
                let point = IoPoint::parse(address).ok_or_else(|| RuntimeError {
                    message: format!(
                        "variable {:?} has unsupported direct address %{address}",
                        decl.name
                    ),
                })?;
                bindings.push((decl.name.clone(), point));
            }
            // VAR_INPUT without an address is fed by the MMS binding.
            let _ = decl.class == VarClass::Input;
        }
        let interp = Interpreter::new(program)?;
        Ok(PlcRuntime {
            interp,
            bindings,
            registers,
            fault: None,
            scans: 0,
        })
    }

    /// Number of completed scans.
    pub fn scan_count(&self) -> u64 {
        self.scans
    }

    /// The latched fault, if the program errored.
    pub fn fault(&self) -> Option<&RuntimeError> {
        self.fault.as_ref()
    }

    /// Clears a latched fault.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// Reads a program variable.
    pub fn get(&self, name: &str) -> Option<&StValue> {
        self.interp.get(name)
    }

    /// Writes a program variable (used by the MMS input binding).
    pub fn set(&mut self, name: &str, value: StValue) {
        self.interp.set(name, value);
    }

    /// The located-variable bindings.
    pub fn bindings(&self) -> &[(String, IoPoint)] {
        &self.bindings
    }

    /// Executes one scan: read inputs → run program → write outputs.
    ///
    /// A faulted runtime skips execution until the fault is cleared (real
    /// PLCs stop in a safe state).
    pub fn scan(&mut self, now_ns: u64) {
        if self.fault.is_some() {
            return;
        }
        // Input image.
        for (name, point) in &self.bindings {
            let value = match point {
                IoPoint::Coil(i) => StValue::Bool(self.registers.coil(*i)),
                IoPoint::Discrete(i) => StValue::Bool(self.registers.discrete(*i)),
                IoPoint::Holding(i) => StValue::Int(i64::from(self.registers.holding(*i))),
                IoPoint::Input(i) => StValue::Int(i64::from(self.registers.input(*i))),
            };
            self.interp.set(name, value);
        }
        // Execute.
        if let Err(e) = self.interp.scan(now_ns) {
            self.fault = Some(e);
            return;
        }
        self.scans += 1;
        // Output image.
        for (name, point) in &self.bindings {
            if !point.is_output() {
                continue;
            }
            let Some(value) = self.interp.get(name) else {
                continue;
            };
            match point {
                IoPoint::Coil(i) => {
                    if let Some(b) = value.as_bool() {
                        self.registers.set_coil(*i, b);
                    }
                }
                IoPoint::Holding(i) => {
                    if let Some(v) = value.as_i64() {
                        self.registers.set_holding(*i, v as u16);
                    }
                }
                _ => unreachable!("is_output filtered"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::st::parser::parse_program;

    #[test]
    fn io_point_parsing() {
        assert_eq!(IoPoint::parse("QX0.0"), Some(IoPoint::Coil(0)));
        assert_eq!(IoPoint::parse("QX1.3"), Some(IoPoint::Coil(11)));
        assert_eq!(IoPoint::parse("%IX2.7"), Some(IoPoint::Discrete(23)));
        assert_eq!(IoPoint::parse("QW5"), Some(IoPoint::Holding(5)));
        assert_eq!(IoPoint::parse("IW0"), Some(IoPoint::Input(0)));
        assert_eq!(IoPoint::parse("ZZ1"), None);
        assert_eq!(IoPoint::parse("QX1"), None);
    }

    #[test]
    fn io_point_display_roundtrip() {
        for p in [
            IoPoint::Coil(11),
            IoPoint::Discrete(23),
            IoPoint::Holding(5),
            IoPoint::Input(0),
        ] {
            let text = p.to_string();
            assert_eq!(IoPoint::parse(&text), Some(p), "{text}");
        }
    }

    #[test]
    fn scan_cycle_reads_inputs_writes_outputs() {
        let program = parse_program(
            "PROGRAM p VAR \
               level AT %IW0 : INT; \
               alarm AT %QX0.0 : BOOL; \
               scaled AT %QW1 : INT; \
             END_VAR \
             alarm := level > 100; \
             scaled := level * 2; \
             END_PROGRAM",
        )
        .unwrap();
        let registers = SharedRegisters::with_size(32);
        let mut runtime = PlcRuntime::new(program, registers.clone()).unwrap();

        registers.set_input(0, 50);
        runtime.scan(0);
        assert!(!registers.coil(0));
        assert_eq!(registers.holding(1), 100);

        registers.set_input(0, 150);
        runtime.scan(1_000_000);
        assert!(registers.coil(0));
        assert_eq!(registers.holding(1), 300);
        assert_eq!(runtime.scan_count(), 2);
    }

    #[test]
    fn master_written_coils_visible_to_program() {
        let program = parse_program(
            "PROGRAM p VAR \
               cmd AT %QX0.0 : BOOL; \
               echo AT %QX0.1 : BOOL; \
             END_VAR \
             echo := cmd; \
             END_PROGRAM",
        )
        .unwrap();
        let registers = SharedRegisters::with_size(32);
        let mut runtime = PlcRuntime::new(program, registers.clone()).unwrap();
        registers.set_coil(0, true); // SCADA writes the command coil
        runtime.scan(0);
        assert!(registers.coil(1), "program saw the master-written coil");
    }

    #[test]
    fn fault_latches_and_stops_scanning() {
        let program = parse_program(
            "PROGRAM p VAR x AT %QW0 : INT; d : INT; END_VAR x := 1 / d; END_PROGRAM",
        )
        .unwrap();
        let registers = SharedRegisters::with_size(8);
        let mut runtime = PlcRuntime::new(program, registers).unwrap();
        runtime.scan(0);
        assert!(runtime.fault().is_some());
        let scans = runtime.scan_count();
        runtime.scan(1);
        assert_eq!(runtime.scan_count(), scans, "faulted runtime must not scan");
        runtime.clear_fault();
        runtime.set("d", StValue::Int(2));
        runtime.scan(2);
        assert!(runtime.fault().is_none());
    }

    #[test]
    fn bad_address_rejected_at_construction() {
        let program = parse_program("PROGRAM p VAR x AT %ZZ0 : INT; END_VAR x := 1; END_PROGRAM");
        // The lexer accepts %ZZ0 (alphanumeric); construction must reject it.
        let program = program.unwrap();
        let registers = SharedRegisters::with_size(8);
        assert!(PlcRuntime::new(program, registers).is_err());
    }
}
