#![warn(missing_docs)]

//! # sgcr-plc
//!
//! The virtual PLC of the smart grid cyber range — the Rust substitute for
//! OpenPLC61850.
//!
//! Mirroring the paper's §III-B "Virtual PLC Configuration":
//!
//! * control logic is written in **IEC 61131-3 Structured Text** — this crate
//!   contains a complete lexer/parser/interpreter ([`st`]) with the standard
//!   function blocks (TON/TOF/TP, CTU/CTD, R_TRIG/F_TRIG, SR/RS);
//! * programs are imported from **PLCopen XML** ([`parse_plcopen`]);
//! * the runtime executes a classic **scan cycle** with located variables
//!   (`%QX`, `%IX`, `%QW`, `%IW`) bound to Modbus tables
//!   ([`PlcRuntime`], [`IoPoint`]);
//! * on the network, the PLC is a **Modbus TCP server towards SCADA** and an
//!   **MMS client towards IEDs** ([`PlcApp`], [`MmsReadBinding`],
//!   [`MmsWriteBinding`]) — OpenPLC61850's dual-protocol architecture.
//!
//! # Examples
//!
//! ```
//! use sgcr_plc::{parse_program, PlcRuntime};
//! use sgcr_modbus::SharedRegisters;
//!
//! let program = parse_program(
//!     "PROGRAM demo VAR level AT %IW0 : INT; alarm AT %QX0.0 : BOOL; END_VAR \
//!      alarm := level > 100; END_PROGRAM",
//! )?;
//! let registers = SharedRegisters::with_size(16);
//! let mut plc = PlcRuntime::new(program, registers.clone()).map_err(|e| e.message)?;
//! registers.set_input(0, 150);
//! plc.scan(0);
//! assert!(registers.coil(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod st;

mod app;
mod plcopen;
mod runtime;

pub use app::{GooseBinding, MmsReadBinding, MmsWriteBinding, PlcApp, PlcHandle, PlcStatus};
pub use plcopen::{parse_plcopen, write_plcopen, PlcOpenError};
pub use runtime::{IoPoint, PlcRuntime};
pub use st::ast::{DataType, FbType, Pos, Program, VarClass};
pub use st::check::{
    assigned_variables, check_program, read_variables, CheckCode, CheckFinding, CheckSeverity,
};
pub use st::interp::{Interpreter, RuntimeError, StValue};
pub use st::parser::{parse_expression, parse_program, parse_statements, ParseError};
