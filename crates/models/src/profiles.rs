//! Load and generation profile shapes, sampled into the piecewise-constant
//! `(time_ms, value)` points the Power System Extra Config consumes.

/// A residential daily load shape (morning/evening peaks), compressed so
/// one "day" spans `points * step_ms` of simulated time.
pub fn residential(points: usize, step_ms: u64) -> Vec<(u64, f64)> {
    sample(points, step_ms, |x| {
        // Two bumps around 1/3 and 3/4 of the day over a 0.6 baseline.
        let morning = 0.35 * (-((x - 0.33) * 9.0).powi(2)).exp();
        let evening = 0.55 * (-((x - 0.78) * 8.0).powi(2)).exp();
        0.6 + morning + evening
    })
}

/// An industrial load shape (flat high during working hours).
pub fn industrial(points: usize, step_ms: u64) -> Vec<(u64, f64)> {
    sample(points, step_ms, |x| {
        if (0.3..0.7).contains(&x) {
            1.0
        } else {
            0.45
        }
    })
}

/// A solar generation shape (bell around midday, zero at night).
pub fn solar(points: usize, step_ms: u64) -> Vec<(u64, f64)> {
    sample(points, step_ms, |x| {
        let v = (-((x - 0.5) * 5.0).powi(2)).exp();
        if v < 0.05 {
            0.0
        } else {
            v
        }
    })
}

fn sample(points: usize, step_ms: u64, f: impl Fn(f64) -> f64) -> Vec<(u64, f64)> {
    (0..points)
        .map(|i| {
            let x = i as f64 / points.max(1) as f64;
            // Round to 3 decimals for stable XML roundtrips.
            ((i as u64) * step_ms, (f(x) * 1000.0).round() / 1000.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_sane() {
        let r = residential(24, 3_600_000);
        assert_eq!(r.len(), 24);
        assert!(r.iter().all(|(_, v)| (0.3..=1.4).contains(v)));
        // Evening peak exceeds midnight baseline.
        assert!(r[18].1 > r[0].1);

        let i = industrial(24, 3_600_000);
        assert!(i[12].1 > i[0].1);

        let s = solar(24, 3_600_000);
        assert_eq!(s[0].1, 0.0, "no sun at midnight");
        assert!(s[12].1 > 0.9, "midday peak");
    }

    #[test]
    fn timestamps_progress() {
        let p = residential(4, 250);
        assert_eq!(
            p.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![0, 250, 500, 750]
        );
    }
}
