//! Builders producing SCL documents programmatically — the shared plumbing
//! of the EPIC and synthetic model generators.

use sgcr_scl::{
    AccessPoint, Bay, Communication, ConductingEquipment, ConnectedAp, ConnectivityNode,
    DataTypeTemplates, ElectricalParams, EquipmentType, Header, Ied, LDevice, LNodeType, Ln,
    SclDocument, SourcePos, SubNetwork, Substation, Terminal, VoltageLevel,
};

/// Fluent builder for an SSD-style [`SclDocument`].
pub struct SsdBuilder {
    doc: SclDocument,
}

/// Starts an SSD for one substation.
pub fn ssd_builder(substation: &str) -> SsdBuilder {
    SsdBuilder {
        doc: SclDocument {
            header: Header {
                id: format!("{substation}-ssd"),
                version: "1".into(),
                revision: "A".into(),
            },
            substations: vec![Substation {
                name: substation.to_string(),
                ..Substation::default()
            }],
            ..SclDocument::default()
        },
    }
}

impl SsdBuilder {
    fn substation(&mut self) -> &mut Substation {
        &mut self.doc.substations[0]
    }

    fn vl(&mut self, name: &str) -> &mut VoltageLevel {
        let substation = self.substation();
        let index = substation
            .voltage_levels
            .iter()
            .position(|v| v.name == name)
            .expect("voltage level declared before use");
        &mut substation.voltage_levels[index]
    }

    fn bay(&mut self, vl: &str, bay: &str) -> &mut Bay {
        let vl = self.vl(vl);
        if let Some(index) = vl.bays.iter().position(|b| b.name == bay) {
            return &mut vl.bays[index];
        }
        vl.bays.push(Bay {
            name: bay.to_string(),
            ..Bay::default()
        });
        vl.bays.last_mut().expect("just pushed")
    }

    /// Declares a voltage level.
    pub fn voltage_level(mut self, name: &str, kv: f64) -> Self {
        self.substation().voltage_levels.push(VoltageLevel {
            name: name.to_string(),
            voltage_kv: kv,
            bays: vec![],
        });
        self
    }

    /// Adds a connectivity node (bus) to a bay.
    pub fn bus(mut self, vl: &str, bay: &str, cn: &str) -> Self {
        let substation_name = self.substation().name.clone();
        let path = format!("{substation_name}/{vl}/{bay}/{cn}");
        let bay = self.bay(vl, bay);
        bay.connectivity_nodes.push(ConnectivityNode {
            name: cn.to_string(),
            path_name: path,
            ..ConnectivityNode::default()
        });
        self
    }

    #[allow(clippy::too_many_arguments)]
    fn push_equipment(
        mut self,
        vl: &str,
        bay: &str,
        name: &str,
        eq_type: EquipmentType,
        nodes: &[&str],
        params: ElectricalParams,
        normally_open: bool,
    ) -> Self {
        // Terminals may reference connectivity nodes declared in other bays
        // (e.g. a feeder breaker tied to the main bus), so resolve each name
        // across the whole voltage level.
        let terminals: Vec<Terminal> = nodes
            .iter()
            .enumerate()
            .map(|(i, cn)| Terminal {
                name: format!("T{}", i + 1),
                connectivity_node: self.find_cn_path(vl, cn),
            })
            .collect();
        let bay = self.bay(vl, bay);
        bay.equipment.push(ConductingEquipment {
            pos: SourcePos::default(),
            name: name.to_string(),
            eq_type,
            type_code: eq_type.code().to_string(),
            terminals,
            params,
            normally_open,
        });
        self
    }

    /// Adds a circuit breaker between two buses of the same bay.
    pub fn breaker(
        self,
        vl: &str,
        bay: &str,
        name: &str,
        from: &str,
        to: &str,
        normally_open: bool,
    ) -> Self {
        self.push_equipment(
            vl,
            bay,
            name,
            EquipmentType::CircuitBreaker,
            &[from, to],
            ElectricalParams::default(),
            normally_open,
        )
    }

    /// Adds a line segment between two buses (any bays, same VL paths).
    #[allow(clippy::too_many_arguments)]
    pub fn line(
        mut self,
        vl: &str,
        bay: &str,
        name: &str,
        from: &str,
        to: &str,
        length_km: f64,
        r: f64,
        x: f64,
        max_i_ka: f64,
    ) -> Self {
        // Terminals may reference buses in other bays: resolve each CN in
        // whichever bay of this VL declares it.
        let from_path = self.find_cn_path(vl, from);
        let to_path = self.find_cn_path(vl, to);
        let bay = self.bay(vl, bay);
        bay.equipment.push(ConductingEquipment {
            pos: SourcePos::default(),
            name: name.to_string(),
            eq_type: EquipmentType::Line,
            type_code: "LIN".into(),
            terminals: vec![
                Terminal {
                    name: "T1".into(),
                    connectivity_node: from_path,
                },
                Terminal {
                    name: "T2".into(),
                    connectivity_node: to_path,
                },
            ],
            params: ElectricalParams {
                length_km: Some(length_km),
                r_ohm_per_km: Some(r),
                x_ohm_per_km: Some(x),
                max_i_ka: Some(max_i_ka),
                ..ElectricalParams::default()
            },
            normally_open: false,
        });
        self
    }

    fn find_cn_path(&self, vl: &str, cn: &str) -> String {
        let substation = &self.doc.substations[0];
        for voltage_level in &substation.voltage_levels {
            if voltage_level.name != vl {
                continue;
            }
            for bay in &voltage_level.bays {
                for node in &bay.connectivity_nodes {
                    if node.name == cn {
                        return node.path_name.clone();
                    }
                }
            }
        }
        format!("{}/{vl}/?/{cn}", substation.name)
    }

    /// Adds a generator (PV bus when `vm_pu` is set, PQ injection else).
    pub fn gen(
        self,
        vl: &str,
        bay: &str,
        name: &str,
        cn: &str,
        p_mw: f64,
        vm_pu: Option<f64>,
    ) -> Self {
        self.push_equipment(
            vl,
            bay,
            name,
            EquipmentType::Generator,
            &[cn],
            ElectricalParams {
                p_mw: Some(p_mw),
                vm_pu,
                ..ElectricalParams::default()
            },
            false,
        )
    }

    /// Adds a static generator (PV panel / battery).
    pub fn sgen(self, vl: &str, bay: &str, name: &str, cn: &str, p_mw: f64) -> Self {
        self.push_equipment(
            vl,
            bay,
            name,
            EquipmentType::Battery,
            &[cn],
            ElectricalParams {
                p_mw: Some(p_mw),
                ..ElectricalParams::default()
            },
            false,
        )
    }

    /// Adds an external-grid infeed.
    pub fn infeed(self, vl: &str, bay: &str, name: &str, cn: &str, vm_pu: f64) -> Self {
        self.push_equipment(
            vl,
            bay,
            name,
            EquipmentType::IncomingFeeder,
            &[cn],
            ElectricalParams {
                vm_pu: Some(vm_pu),
                ..ElectricalParams::default()
            },
            false,
        )
    }

    /// Adds a load.
    pub fn load(self, vl: &str, bay: &str, name: &str, cn: &str, p_mw: f64, q_mvar: f64) -> Self {
        self.push_equipment(
            vl,
            bay,
            name,
            EquipmentType::Load,
            &[cn],
            ElectricalParams {
                p_mw: Some(p_mw),
                q_mvar: Some(q_mvar),
                ..ElectricalParams::default()
            },
            false,
        )
    }

    /// Returns the finished document.
    pub fn finish(self) -> SclDocument {
        self.doc
    }
}

/// Fluent builder for an SCD-style [`SclDocument`].
pub struct ScdBuilder {
    doc: SclDocument,
}

/// Starts an SCD for one substation.
pub fn scd_builder(substation: &str, id: &str) -> ScdBuilder {
    ScdBuilder {
        doc: SclDocument {
            header: Header {
                id: id.to_string(),
                version: "1".into(),
                revision: "A".into(),
            },
            substations: vec![Substation {
                name: substation.to_string(),
                ..Substation::default()
            }],
            communication: Some(Communication::default()),
            ..SclDocument::default()
        },
    }
}

impl ScdBuilder {
    /// Declares a subnetwork (→ one emulated switch).
    pub fn subnetwork(mut self, name: &str) -> Self {
        self.doc
            .communication
            .as_mut()
            .expect("communication present")
            .subnetworks
            .push(SubNetwork {
                name: name.to_string(),
                net_type: "8-MMS".into(),
                ..SubNetwork::default()
            });
        self
    }

    /// Adds a host (connected access point) to a subnetwork.
    pub fn host(mut self, subnetwork: &str, name: &str, ip: &str, mac: Option<&str>) -> Self {
        let comm = self.doc.communication.as_mut().expect("communication");
        let sn = comm
            .subnetworks
            .iter_mut()
            .find(|s| s.name == subnetwork)
            .expect("subnetwork declared before hosts");
        sn.connected_aps.push(ConnectedAp {
            pos: SourcePos::default(),
            ied_name: name.to_string(),
            ap_name: "AP1".into(),
            ip: ip.to_string(),
            ip_subnet: "255.255.0.0".into(),
            mac: mac.map(str::to_string),
            gse: vec![],
        });
        self
    }

    /// Declares an IED with its LN class inventory.
    pub fn ied(mut self, name: &str, ln_classes: &[&str]) -> Self {
        self.doc.ieds.push(build_ied(name, ln_classes));
        for class in ln_classes {
            let id = format!("{class}_T");
            if !self.doc.templates.lnode_types.iter().any(|t| t.id == id) {
                self.doc.templates.lnode_types.push(LNodeType {
                    id,
                    ln_class: class.to_string(),
                    dos: vec![],
                });
            }
        }
        self
    }

    /// Returns the finished document as XML.
    pub fn finish_xml(self) -> String {
        sgcr_scl::write_scl(&self.doc)
    }

    /// Returns the finished document.
    pub fn finish(self) -> SclDocument {
        self.doc
    }
}

fn build_ied(name: &str, ln_classes: &[&str]) -> Ied {
    let mut lns = Vec::new();
    for class in ln_classes {
        lns.push(Ln {
            prefix: String::new(),
            ln_class: class.to_string(),
            inst: if *class == "LLN0" {
                String::new()
            } else {
                "1".into()
            },
            ln_type: format!("{class}_T"),
        });
    }
    Ied {
        pos: SourcePos::default(),
        name: name.to_string(),
        manufacturer: "sgcr".into(),
        ied_type: "virtual-ied".into(),
        access_points: vec![AccessPoint {
            name: "AP1".into(),
            ldevices: vec![LDevice {
                inst: "LD0".into(),
                lns,
            }],
        }],
    }
}

/// Generates a standalone ICD file for one IED.
pub fn icd_for(name: &str, ln_classes: &[&str]) -> String {
    let doc = SclDocument {
        header: Header {
            id: format!("{name}-icd"),
            version: "1".into(),
            revision: "A".into(),
        },
        ieds: vec![build_ied(name, ln_classes)],
        templates: DataTypeTemplates {
            lnode_types: ln_classes
                .iter()
                .map(|class| LNodeType {
                    id: format!("{class}_T"),
                    ln_class: class.to_string(),
                    dos: vec![],
                })
                .collect(),
        },
        ..SclDocument::default()
    };
    sgcr_scl::write_scl(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgcr_scl::{parse_icd, parse_ssd};

    #[test]
    fn ssd_builder_roundtrip() {
        let doc = ssd_builder("S1")
            .voltage_level("MV", 22.0)
            .bus("MV", "Main", "CN1")
            .bus("MV", "Main", "CN2")
            .infeed("MV", "Main", "GRID", "CN1", 1.0)
            .breaker("MV", "Main", "CB1", "CN1", "CN2", false)
            .load("MV", "Main", "L1", "CN2", 5.0, 1.0)
            .finish();
        let text = sgcr_scl::write_scl(&doc);
        let reparsed = parse_ssd(&text).unwrap();
        assert_eq!(
            reparsed.substations[0].voltage_levels[0].bays[0]
                .equipment
                .len(),
            3
        );
        assert_eq!(reparsed.connectivity_node_paths().len(), 2);
    }

    #[test]
    fn icd_roundtrip() {
        let text = icd_for("IEDX", &["LLN0", "XCBR", "PTOC"]);
        let doc = parse_icd(&text).unwrap();
        assert!(doc.ied("IEDX").unwrap().has_ln_class("PTOC"));
        assert_eq!(doc.templates.lnode_types.len(), 3);
    }
}
