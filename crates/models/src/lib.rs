#![warn(missing_docs)]

//! # sgcr-models
//!
//! Model generators for the smart grid cyber range: the **EPIC testbed**
//! replica the paper demonstrates on (§IV-A), and a parameterized
//! **multi-substation** generator for the scalability experiments —
//! including the paper's 5-substation / 104-IED configuration.
//!
//! Generators emit real SG-ML file sets (SSD/SCD/ICD/SED XML plus the
//! supplementary configs) so the complete SG-ML Processor pipeline runs
//! from files, exactly as a user of the framework would drive it.
//!
//! # Examples
//!
//! ```no_run
//! use sgcr_models::epic_bundle;
//! use sgcr_core::{CompiledModel, CyberRange};
//!
//! let model = CompiledModel::shared(&epic_bundle())?;
//! let range = CyberRange::instantiate(model)?;
//! assert_eq!(range.ieds.len(), 8);
//! # Ok::<(), sgcr_core::RangeError>(())
//! ```

pub mod assets;
pub mod epic;
pub mod multisub;
pub mod profiles;

pub use epic::{epic_bundle, IED_NAMES as EPIC_IED_NAMES, SEGMENTS as EPIC_SEGMENTS};
pub use multisub::{
    ied_name, ieds_in_substation, multisub_bundle, substation_name, MultiSubParams,
};
