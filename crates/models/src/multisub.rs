//! Synthetic multi-substation model generator — the workload behind the
//! paper's scalability claim (*"a commodity desktop PC … can host a
//! 5-substation model including 104 virtual IEDs with 100 ms power flow
//! simulation interval"*).
//!
//! Each substation is a 22 kV distribution station: a main bus fed either
//! by an external grid (substation 1) or an inter-substation tie line (SED),
//! plus one feeder per IED — breaker, line, and load — so IED count scales
//! both the cyber and the physical model together.

use crate::assets;
use sgcr_core::{branch_i_key, branch_p_key, IedConfig, PowerExtraConfig, SgmlBundle};
use sgcr_ied::{BreakerMap, IedSpec, MeasurementMap, ProtectionSpec};
use sgcr_kvstore::Keys;
use sgcr_scl::{write_scl, ElectricalParams, Header, InterSubstationLine, SclDocument, SourcePos};

/// Parameters of a synthetic multi-substation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiSubParams {
    /// Number of substations (chained by SED tie lines).
    pub substations: usize,
    /// Total virtual IEDs across all substations.
    pub total_ieds: usize,
    /// Power-flow interval in milliseconds.
    pub interval_ms: u64,
}

impl MultiSubParams {
    /// The paper's scalability configuration: 5 substations, 104 IEDs,
    /// 100 ms interval.
    pub fn paper_profile() -> MultiSubParams {
        MultiSubParams {
            substations: 5,
            total_ieds: 104,
            interval_ms: 100,
        }
    }
}

/// How many IEDs substation `index` (0-based) receives.
pub fn ieds_in_substation(params: &MultiSubParams, index: usize) -> usize {
    let base = params.total_ieds / params.substations;
    let remainder = params.total_ieds % params.substations;
    base + usize::from(index < remainder)
}

/// Substation name for an index (1-based in names).
pub fn substation_name(index: usize) -> String {
    format!("S{}", index + 1)
}

/// IED name: `S{n}IED{k}`.
pub fn ied_name(substation_index: usize, ied_index: usize) -> String {
    format!("{}IED{}", substation_name(substation_index), ied_index + 1)
}

/// Generates the complete bundle.
pub fn multisub_bundle(params: &MultiSubParams) -> SgmlBundle {
    let mut ssds = Vec::new();
    let mut scds = Vec::new();
    let mut icds = Vec::new();
    let mut ied_config = IedConfig::default();

    for s in 0..params.substations {
        let sub = substation_name(s);
        let n_ieds = ieds_in_substation(params, s);

        // --- SSD: main bus + one feeder per IED -------------------------
        let mut builder = assets::ssd_builder(&sub)
            .voltage_level("MV", 22.0)
            .bus("MV", "Main", "CNMAIN");
        if s == 0 {
            builder = builder.infeed("MV", "Main", "GRID", "CNMAIN", 1.0);
        }
        for f in 0..n_ieds {
            let feeder_bay = format!("F{}", f + 1);
            let cn_feeder = format!("CNF{}", f + 1);
            let cn_tap = format!("CNT{}", f + 1);
            builder = builder
                .bus("MV", &feeder_bay, &cn_tap)
                .bus("MV", &feeder_bay, &cn_feeder)
                .breaker(
                    "MV",
                    &feeder_bay,
                    &format!("CB{}", f + 1),
                    "CNMAIN",
                    &cn_tap,
                    false,
                )
                .line(
                    "MV",
                    &feeder_bay,
                    &format!("LF{}", f + 1),
                    &cn_tap,
                    &cn_feeder,
                    1.0,
                    0.15,
                    0.12,
                    0.3,
                )
                .load(
                    "MV",
                    &feeder_bay,
                    &format!("LOAD{}", f + 1),
                    &cn_feeder,
                    0.08 + 0.01 * (f % 5) as f64,
                    0.02,
                );
        }
        ssds.push(write_scl(&builder.finish()));

        // --- SCD: one station bus, all IEDs + (S1 only) SCADA ------------
        let mut scd =
            assets::scd_builder(&sub, &format!("{sub}-scd")).subnetwork(&format!("{sub}Bus"));
        for f in 0..n_ieds {
            let name = ied_name(s, f);
            let ip = format!("10.{}.{}.{}", s + 1, f / 200, 10 + (f % 200));
            scd = scd.host(&format!("{sub}Bus"), &name, &ip, None);
            scd = scd.ied(&name, &["LLN0", "LPHD", "MMXU", "XCBR", "CSWI", "PTOC"]);
        }
        if s == 0 {
            scd = scd.host(&format!("{sub}Bus"), "SCADA", "10.1.9.100", None);
        }
        scds.push(scd.finish_xml());

        // --- ICDs + IED Config -------------------------------------------
        for f in 0..n_ieds {
            let name = ied_name(s, f);
            icds.push(assets::icd_for(
                &name,
                &["LLN0", "LPHD", "MMXU", "XCBR", "CSWI", "PTOC"],
            ));
            let mut spec = IedSpec::new(&name, &sub);
            let breaker = format!("CB{}", f + 1);
            let line = format!("{sub}/LF{}", f + 1);
            spec.measurements.push(MeasurementMap {
                item: "MMXU1$MX$TotW$mag$f".into(),
                kv_key: branch_p_key(&line),
            });
            spec.measurements.push(MeasurementMap {
                item: "MMXU1$MX$A$phsA$cVal$mag$f".into(),
                kv_key: branch_i_key(&line),
            });
            spec.breakers.push(BreakerMap {
                name: breaker.clone(),
                xcbr: "XCBR1".into(),
                cswi: "CSWI1".into(),
                state_key: Keys::breaker_state(&sub, &breaker),
                cmd_key: Keys::breaker_cmd(&sub, &breaker),
                interlocked: false,
            });
            spec.protections.push(ProtectionSpec::Ptoc {
                ln: "PTOC1".into(),
                measurement_key: branch_i_key(&line),
                pickup: 0.012,
                delay_ms: 300,
                breaker,
            });
            ied_config.ieds.push(spec);
        }
    }

    // --- SEDs: chain S1–S2, S2–S3, … ------------------------------------
    let mut seds = Vec::new();
    for s in 1..params.substations {
        let from = substation_name(s - 1);
        let to = substation_name(s);
        let sed = SclDocument {
            header: Header {
                id: format!("sed-{from}-{to}"),
                version: "1".into(),
                revision: String::new(),
            },
            inter_substation_lines: vec![InterSubstationLine {
                pos: SourcePos::default(),
                name: format!("TIE{}{}", s, s + 1),
                from_substation: from.clone(),
                from_node: format!("{from}/MV/Main/CNMAIN"),
                to_substation: to.clone(),
                to_node: format!("{to}/MV/Main/CNMAIN"),
                params: ElectricalParams {
                    length_km: Some(5.0),
                    r_ohm_per_km: Some(0.08),
                    x_ohm_per_km: Some(0.25),
                    max_i_ka: Some(0.8),
                    ..ElectricalParams::default()
                },
                protection_ieds: vec![ied_name(s - 1, 0), ied_name(s, 0)],
            }],
            ..SclDocument::default()
        };
        seds.push(write_scl(&sed));
    }

    // --- SCADA: poll the first IED of each substation over MMS -----------
    let mut scada_sources = String::new();
    for s in 0..params.substations {
        let name = ied_name(s, 0);
        let ip = format!("10.{}.0.10", s + 1);
        scada_sources.push_str(&format!(
            r#"  <DataSource name="{name}" type="MMS" ip="{ip}" pollMs="1000">
    <Point name="{name}_P" item="{name}LD0/MMXU1$MX$TotW$mag$f"/>
  </DataSource>
"#
        ));
    }
    let scada_config =
        format!("<ScadaConfig name=\"multisub-HMI\">\n{scada_sources}</ScadaConfig>");

    let power_extra = PowerExtraConfig {
        interval_ms: params.interval_ms,
        ..PowerExtraConfig::default()
    };

    SgmlBundle {
        ssds,
        scds,
        icds,
        seds,
        ied_config: Some(ied_config.to_xml()),
        scada_config: Some(scada_config),
        plc_config: None,
        power_extra: Some(power_extra.to_xml()),
        scenarios: vec![],
        scada_host: Some("SCADA".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ied_distribution_sums_to_total() {
        let params = MultiSubParams::paper_profile();
        let total: usize = (0..params.substations)
            .map(|s| ieds_in_substation(&params, s))
            .sum();
        assert_eq!(total, 104);
        // 104 = 21 + 21 + 21 + 21 + 20
        assert_eq!(ieds_in_substation(&params, 0), 21);
        assert_eq!(ieds_in_substation(&params, 4), 20);
    }

    #[test]
    fn small_bundle_files_parse() {
        let params = MultiSubParams {
            substations: 2,
            total_ieds: 4,
            interval_ms: 100,
        };
        let bundle = multisub_bundle(&params);
        assert_eq!(bundle.ssds.len(), 2);
        assert_eq!(bundle.scds.len(), 2);
        assert_eq!(bundle.icds.len(), 4);
        assert_eq!(bundle.seds.len(), 1);
        for ssd in &bundle.ssds {
            sgcr_scl::parse_ssd(ssd).unwrap();
        }
        for scd in &bundle.scds {
            sgcr_scl::parse_scd(scd).unwrap();
        }
        for sed in &bundle.seds {
            sgcr_scl::parse_sed(sed).unwrap();
        }
        IedConfig::parse(bundle.ied_config.as_ref().unwrap()).unwrap();
        sgcr_scada::ScadaConfig::parse(bundle.scada_config.as_ref().unwrap()).unwrap();
    }
}
