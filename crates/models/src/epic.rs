//! Generator for the EPIC testbed cyber range model — the paper's §IV-A
//! demonstration target.
//!
//! EPIC (Electric Power and Intelligent Control, SUTD) has four segments —
//! **generation** (two motor-generators), **transmission**, **micro-grid**
//! (PV + battery), and **smart home** (controllable loads) — each monitored
//! by IEDs, with a central PLC (CPLC) mediating SCADA↔IED communication and
//! all segments in a single substation. This module generates the SG-ML
//! model files of that shape: SSD, SCD, ICDs, and the supplementary IED /
//! PLC / SCADA / power configs, so the full pipeline runs from files.
//!
//! The physical scale follows the real testbed (a 400 V LV network, tens of
//! kW), which we cannot access — the topology/configuration are from the
//! public descriptions, per the paper.

use crate::assets;
use sgcr_core::{branch_i_key, branch_p_key, bus_vm_key};
use sgcr_core::{
    IedConfig, PlcConfig, PlcDef, PlcGooseRule, PlcLogic, PlcReadRule, PlcWriteRule,
    PowerExtraConfig, SgmlBundle,
};
use sgcr_ied::{
    BreakerMap, GooseEntry, GooseSpec, IedSpec, MeasurementMap, MonitoredBreaker, ProtectionSpec,
};
use sgcr_kvstore::Keys;
use sgcr_powerflow::{Profile, ProfileTarget};
use sgcr_scl::write_scl;

/// Substation name used throughout the EPIC model.
pub const SUBSTATION: &str = "EPIC";

/// The four segments and their devices, for reference from experiments.
pub const SEGMENTS: [&str; 4] = ["Generation", "Transmission", "MicroGrid", "SmartHome"];

/// Names of the eight segment IEDs (two per segment, as in the testbed).
pub const IED_NAMES: [&str; 8] = [
    "GIED1", "GIED2", "TIED1", "TIED2", "MIED1", "MIED2", "SIED1", "SIED2",
];

/// Generates the complete EPIC SG-ML bundle.
pub fn epic_bundle() -> SgmlBundle {
    SgmlBundle {
        ssds: vec![epic_ssd()],
        scds: vec![epic_scd()],
        icds: epic_icds(),
        seds: vec![],
        ied_config: Some(epic_ied_config().to_xml()),
        scada_config: Some(epic_scada_config()),
        plc_config: Some(epic_plc_config().to_xml()),
        power_extra: Some(epic_power_extra().to_xml()),
        scenarios: vec![
            include_str!("../../../examples/scenarios/epic_fci.scenario.xml").to_string(),
        ],
        scada_host: Some("SCADA".to_string()),
    }
}

/// The EPIC single-line diagram as an SSD file.
pub fn epic_ssd() -> String {
    let doc = assets::ssd_builder(SUBSTATION)
        .voltage_level("LV", 0.4)
        // Generation segment.
        .bus("LV", "GenBay", "CN_GEN")
        .bus("LV", "GenBay", "CN_GEN_T")
        .gen("LV", "GenBay", "Gen1", "CN_GEN", 0.020, Some(1.0))
        .gen("LV", "GenBay", "Gen2", "CN_GEN", 0.010, Some(1.0))
        .breaker("LV", "GenBay", "CB_GEN", "CN_GEN", "CN_GEN_T", false)
        // Transmission segment.
        .bus("LV", "TransBay", "CN_TRANS")
        .line(
            "LV", "TransBay", "LGen", "CN_GEN_T", "CN_TRANS", 0.05, 0.3, 0.08, 0.2,
        )
        // Micro-grid segment.
        .bus("LV", "MicroBay", "CN_MICRO")
        .bus("LV", "MicroBay", "CN_MICRO_T")
        .breaker(
            "LV",
            "MicroBay",
            "CB_MICRO",
            "CN_MICRO",
            "CN_MICRO_T",
            false,
        )
        .line(
            "LV",
            "MicroBay",
            "LMicro",
            "CN_MICRO_T",
            "CN_TRANS",
            0.08,
            0.3,
            0.08,
            0.15,
        )
        .sgen("LV", "MicroBay", "PV1", "CN_MICRO", 0.008)
        .sgen("LV", "MicroBay", "Battery1", "CN_MICRO", 0.004)
        .load("LV", "MicroBay", "MicroLoad", "CN_MICRO", 0.006, 0.002)
        // Smart home segment.
        .bus("LV", "HomeBay", "CN_HOME")
        .bus("LV", "HomeBay", "CN_HOME_T")
        .breaker("LV", "HomeBay", "CB_HOME", "CN_HOME", "CN_HOME_T", false)
        .line(
            "LV",
            "HomeBay",
            "LHome",
            "CN_HOME_T",
            "CN_TRANS",
            0.10,
            0.3,
            0.08,
            0.15,
        )
        .load("LV", "HomeBay", "Load1", "CN_HOME", 0.015, 0.005)
        .load("LV", "HomeBay", "Load2", "CN_HOME", 0.010, 0.003)
        .finish();
    write_scl(&doc)
}

/// The EPIC communication network as an SCD file: one subnetwork per
/// segment plus a control-room subnetwork for CPLC + SCADA.
pub fn epic_scd() -> String {
    let mut builder = assets::scd_builder(SUBSTATION, "epic-scd");
    let segments: [(&str, &[&str]); 5] = [
        ("GenBus", &["GIED1", "GIED2"]),
        ("TransBus", &["TIED1", "TIED2"]),
        ("MicroBus", &["MIED1", "MIED2"]),
        ("HomeBus", &["SIED1", "SIED2"]),
        ("ControlBus", &["CPLC", "SCADA"]),
    ];
    let mut host_index = 0u8;
    for (seg_index, (bus, hosts)) in segments.iter().enumerate() {
        builder = builder.subnetwork(bus);
        for host in *hosts {
            host_index += 1;
            let ip = format!("10.0.{}.{}", seg_index + 1, 10 + host_index);
            let mac = format!("02-00-00-00-00-{host_index:02X}");
            builder = builder.host(bus, host, &ip, Some(&mac));
        }
    }
    // IEDs also get declared in the SCD body (with their LN inventories).
    for name in IED_NAMES {
        builder = builder.ied(name, &ied_ln_classes(name));
    }
    builder.finish_xml()
}

fn ied_ln_classes(name: &str) -> Vec<&'static str> {
    let mut classes = vec!["LLN0", "LPHD", "MMXU"];
    match name {
        "GIED1" => classes.extend(["XCBR", "CSWI", "PTOC"]),
        "GIED2" => classes.extend(["PTOV", "XCBR", "CSWI"]),
        "TIED1" => classes.extend(["XCBR", "CSWI", "PTOC"]),
        "TIED2" => classes.extend(["XCBR", "CSWI", "PTOC", "PTUV"]),
        "MIED1" => classes.extend(["XCBR", "CSWI", "PTUV"]),
        "MIED2" => {}
        "SIED1" => classes.extend(["XCBR", "CSWI", "CILO"]),
        "SIED2" => classes.extend(["XCBR", "CSWI", "PTUV"]),
        _ => {}
    }
    classes
}

/// One ICD per IED, with the LN inventory that gates feature enablement.
pub fn epic_icds() -> Vec<String> {
    IED_NAMES
        .iter()
        .map(|name| assets::icd_for(name, &ied_ln_classes(name)))
        .collect()
}

/// The supplementary IED Config XML: thresholds + cyber↔physical mapping.
pub fn epic_ied_config() -> IedConfig {
    let sub = SUBSTATION;
    let b = |name: &str, interlocked: bool| BreakerMap {
        name: name.to_string(),
        xcbr: "XCBR1".into(),
        cswi: "CSWI1".into(),
        state_key: Keys::breaker_state(sub, name),
        cmd_key: Keys::breaker_cmd(sub, name),
        interlocked,
    };
    let meas = |item: &str, key: String| MeasurementMap {
        item: item.to_string(),
        kv_key: key,
    };
    let scoped = |name: &str| format!("{sub}/{name}");
    let bus_path = |cn: &str, bay: &str| format!("{sub}/LV/{bay}/{cn}");

    let mut ieds = Vec::new();

    // GIED1: generation feeder — measures LGen, controls CB_GEN, PTOC.
    let mut gied1 = IedSpec::new("GIED1", sub);
    gied1
        .measurements
        .push(meas("MMXU1$MX$TotW$mag$f", branch_p_key(&scoped("LGen"))));
    gied1.measurements.push(meas(
        "MMXU1$MX$A$phsA$cVal$mag$f",
        branch_i_key(&scoped("LGen")),
    ));
    gied1.breakers.push(b("CB_GEN", false));
    gied1.protections.push(ProtectionSpec::Ptoc {
        ln: "PTOC1".into(),
        measurement_key: branch_i_key(&scoped("LGen")),
        // ~3-4x nominal, per Table II guidance. Nominal ≈ 45 A at 0.4 kV.
        pickup: 0.150,
        delay_ms: 200,
        breaker: "CB_GEN".into(),
    });
    gied1.goose = Some(GooseSpec {
        appid: 0x3001,
        gocb_ref: "GIED1LD0/LLN0$GO$gcb01".into(),
        dataset: "GIED1LD0/LLN0$DSGoose".into(),
        entries: vec![
            GooseEntry::BreakerState("CB_GEN".into()),
            GooseEntry::ProtectionOp("PTOC1".into()),
        ],
        rgoose_peers: vec![],
    });
    ieds.push(gied1);

    // GIED2: generation bus voltage — PTOV backs up the generators.
    let mut gied2 = IedSpec::new("GIED2", sub);
    gied2.measurements.push(meas(
        "MMXU1$MX$PhV$phsA$cVal$mag$f",
        bus_vm_key(&bus_path("CN_GEN", "GenBay")),
    ));
    gied2.breakers.push(b("CB_GEN", false));
    gied2.protections.push(ProtectionSpec::Ptov {
        ln: "PTOV1".into(),
        voltage_key: bus_vm_key(&bus_path("CN_GEN", "GenBay")),
        threshold_pu: 1.10,
        delay_ms: 300,
        breaker: "CB_GEN".into(),
    });
    ieds.push(gied2);

    // TIED1: micro-grid feeder protection at the transmission side.
    let mut tied1 = IedSpec::new("TIED1", sub);
    tied1
        .measurements
        .push(meas("MMXU1$MX$TotW$mag$f", branch_p_key(&scoped("LMicro"))));
    tied1.measurements.push(meas(
        "MMXU1$MX$A$phsA$cVal$mag$f",
        branch_i_key(&scoped("LMicro")),
    ));
    tied1.breakers.push(b("CB_MICRO", false));
    tied1.protections.push(ProtectionSpec::Ptoc {
        ln: "PTOC1".into(),
        measurement_key: branch_i_key(&scoped("LMicro")),
        pickup: 0.100,
        delay_ms: 200,
        breaker: "CB_MICRO".into(),
    });
    ieds.push(tied1);

    // TIED2: smart-home feeder protection + undervoltage.
    let mut tied2 = IedSpec::new("TIED2", sub);
    tied2
        .measurements
        .push(meas("MMXU1$MX$TotW$mag$f", branch_p_key(&scoped("LHome"))));
    tied2.measurements.push(meas(
        "MMXU1$MX$A$phsA$cVal$mag$f",
        branch_i_key(&scoped("LHome")),
    ));
    tied2.breakers.push(b("CB_HOME", false));
    tied2.protections.push(ProtectionSpec::Ptoc {
        ln: "PTOC1".into(),
        measurement_key: branch_i_key(&scoped("LHome")),
        pickup: 0.120,
        delay_ms: 200,
        breaker: "CB_HOME".into(),
    });
    tied2.goose = Some(GooseSpec {
        appid: 0x3002,
        gocb_ref: "TIED2LD0/LLN0$GO$gcb01".into(),
        dataset: "TIED2LD0/LLN0$DSGoose".into(),
        entries: vec![GooseEntry::BreakerState("CB_HOME".into())],
        rgoose_peers: vec![],
    });
    ieds.push(tied2);

    // MIED1: micro-grid bus undervoltage (islanding detection stand-in).
    let mut mied1 = IedSpec::new("MIED1", sub);
    mied1.measurements.push(meas(
        "MMXU1$MX$PhV$phsA$cVal$mag$f",
        bus_vm_key(&bus_path("CN_MICRO", "MicroBay")),
    ));
    mied1.breakers.push(b("CB_MICRO", false));
    mied1.protections.push(ProtectionSpec::Ptuv {
        ln: "PTUV1".into(),
        voltage_key: bus_vm_key(&bus_path("CN_MICRO", "MicroBay")),
        threshold_pu: 0.88,
        delay_ms: 500,
        breaker: "CB_MICRO".into(),
    });
    ieds.push(mied1);

    // MIED2: PV/battery measurements only.
    let mut mied2 = IedSpec::new("MIED2", sub);
    mied2.measurements.push(meas(
        "MMXU1$MX$TotW$mag$f",
        format!("meas/{sub}/src/PV1/p_mw"),
    ));
    ieds.push(mied2);

    // SIED1: smart-home breaker with CILO: may only close when the feeder
    // breaker CB_HOME (published by TIED2 over GOOSE) is closed.
    let mut sied1 = IedSpec::new("SIED1", sub);
    sied1.measurements.push(meas(
        "MMXU1$MX$TotW$mag$f",
        format!("meas/{sub}/load/Load1/p_mw"),
    ));
    sied1.breakers.push(b("CB_HOME", true));
    sied1.protections.push(ProtectionSpec::Cilo {
        ln: "CILO1".into(),
        breaker: "CB_HOME".into(),
        monitored: vec![MonitoredBreaker {
            reference: format!("{sub}/CB_HOME"),
            gocb_ref: "TIED2LD0/LLN0$GO$gcb01".into(),
            dataset_index: 0,
        }],
    });
    ieds.push(sied1);

    // SIED2: home bus voltage. Maps CB_HOME itself (the keys are shared per
    // breaker name) so its undervoltage function can actually open it.
    let mut sied2 = IedSpec::new("SIED2", sub);
    sied2.measurements.push(meas(
        "MMXU1$MX$PhV$phsA$cVal$mag$f",
        bus_vm_key(&bus_path("CN_HOME", "HomeBay")),
    ));
    sied2.breakers.push(b("CB_HOME", false));
    sied2.protections.push(ProtectionSpec::Ptuv {
        ln: "PTUV1".into(),
        voltage_key: bus_vm_key(&bus_path("CN_HOME", "HomeBay")),
        threshold_pu: 0.85,
        delay_ms: 800,
        breaker: "CB_HOME".into(),
    });
    ieds.push(sied2);

    IedConfig { ieds }
}

/// The CPLC configuration: mediates SCADA↔IED communication, per the paper.
pub fn epic_plc_config() -> PlcConfig {
    let st = r#"
PROGRAM cplc
VAR
    p_gen : REAL;          (* MMS read: generation feeder power, MW *)
    v_home : REAL;         (* MMS read: smart-home voltage, pu *)
    cb_gen_closed : BOOL;  (* MMS read: CB_GEN position *)
    gen_trip : BOOL;       (* GOOSE: GIED1 PTOC1 operated *)
    p_gen_kw AT %QW0 : INT;
    v_home_mpu AT %QW1 : INT;
    cb_gen_fb AT %QX0.1 : BOOL;
    gen_trip_fb AT %QX0.2 : BOOL;
    cb_gen_cmd AT %QX0.0 : BOOL;  (* SCADA writes this coil *)
    cmd_to_ied : BOOL;
    shed_home : BOOL;
END_VAR
p_gen_kw := TO_INT(p_gen * 1000.0);
v_home_mpu := TO_INT(v_home * 1000.0);
cb_gen_fb := cb_gen_closed;
gen_trip_fb := gen_trip;
cmd_to_ied := cb_gen_cmd;
(* Load shedding: a generation-feeder protection trip sheds the smart-home
   feeder by opening CB_HOME through SIED2. *)
shed_home := NOT gen_trip;
END_PROGRAM
"#;
    PlcConfig {
        plcs: vec![PlcDef {
            name: "CPLC".into(),
            scan_ms: 100,
            logic: PlcLogic::StructuredText(st.to_string()),
            reads: vec![
                PlcReadRule {
                    server: "GIED1".into(),
                    item: "GIED1LD0/MMXU1$MX$TotW$mag$f".into(),
                    variable: "p_gen".into(),
                    scale: 1.0,
                },
                PlcReadRule {
                    server: "SIED2".into(),
                    item: "SIED2LD0/MMXU1$MX$PhV$phsA$cVal$mag$f".into(),
                    variable: "v_home".into(),
                    scale: 1.0,
                },
                PlcReadRule {
                    server: "GIED1".into(),
                    item: "GIED1LD0/XCBR1$ST$Pos$stVal".into(),
                    variable: "cb_gen_closed".into(),
                    scale: 1.0,
                },
            ],
            writes: vec![
                PlcWriteRule {
                    server: "GIED1".into(),
                    item: "GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
                    variable: "cmd_to_ied".into(),
                },
                PlcWriteRule {
                    server: "SIED2".into(),
                    item: "SIED2LD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
                    variable: "shed_home".into(),
                },
            ],
            gooses: vec![PlcGooseRule {
                gocb_ref: "GIED1LD0/LLN0$GO$gcb01".into(),
                index: 1,
                variable: "gen_trip".into(),
            }],
        }],
    }
}

/// The SCADA HMI configuration: Modbus to CPLC, direct MMS to two IEDs.
pub fn epic_scada_config() -> String {
    r#"<ScadaConfig name="EPIC-HMI">
  <DataSource name="CPLC" type="MODBUS" ip="10.0.5.19" port="502" unit="1" pollMs="500">
    <Point name="GenFeeder_kW" kind="holding" address="0"/>
    <Point name="HomeVolt_mpu" kind="holding" address="1"/>
    <Point name="CB_GEN_fb" kind="coil" address="1"/>
    <Point name="GenProt_trip" kind="coil" address="2"/>
    <Point name="CB_GEN_cmd" kind="coil" address="0" writable="true"/>
  </DataSource>
  <DataSource name="TIED1" type="MMS" ip="10.0.2.13" pollMs="1000">
    <Point name="MicroFeeder_MW" item="TIED1LD0/MMXU1$MX$TotW$mag$f"/>
  </DataSource>
  <DataSource name="MIED1" type="MMS" ip="10.0.3.15" pollMs="1000">
    <Point name="MicroVolt_pu" item="MIED1LD0/MMXU1$MX$PhV$phsA$cVal$mag$f"/>
  </DataSource>
  <Alarm point="MicroVolt_pu" kind="low" limit="0.9" message="Micro-grid undervoltage"/>
  <Alarm point="GenFeeder_kW" kind="high" limit="40" message="Generation feeder overload"/>
  <Alarm point="GenProt_trip" kind="true" message="Generation feeder protection operated"/>
</ScadaConfig>"#
        .to_string()
}

/// The power extra config: 100 ms interval and a residential-ish smart-home
/// load profile.
pub fn epic_power_extra() -> PowerExtraConfig {
    let mut config = PowerExtraConfig {
        interval_ms: 100,
        ..PowerExtraConfig::default()
    };
    config.schedule.profiles.push(Profile {
        target: ProfileTarget::LoadScaling(format!("{SUBSTATION}/Load1")),
        points: crate::profiles::residential(8, 60_000),
    });
    config.schedule.profiles.push(Profile {
        target: ProfileTarget::SgenScaling(format!("{SUBSTATION}/PV1")),
        points: crate::profiles::solar(8, 60_000),
    });
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgcr_scl::{parse_scd, parse_ssd};

    #[test]
    fn ssd_parses_and_has_four_segments() {
        let text = epic_ssd();
        let doc = parse_ssd(&text).unwrap();
        let substation = &doc.substations[0];
        assert_eq!(substation.name, SUBSTATION);
        let bays: Vec<&str> = substation.voltage_levels[0]
            .bays
            .iter()
            .map(|b| b.name.as_str())
            .collect();
        assert_eq!(bays, vec!["GenBay", "TransBay", "MicroBay", "HomeBay"]);
    }

    #[test]
    fn scd_parses_with_all_hosts() {
        let text = epic_scd();
        let doc = parse_scd(&text).unwrap();
        let comm = doc.communication.as_ref().unwrap();
        assert_eq!(comm.subnetworks.len(), 5);
        let host_count: usize = comm.subnetworks.iter().map(|s| s.connected_aps.len()).sum();
        assert_eq!(host_count, 10); // 8 IEDs + CPLC + SCADA
        assert_eq!(doc.ieds.len(), 8);
    }

    #[test]
    fn icds_declare_gating_lns() {
        let icds = epic_icds();
        assert_eq!(icds.len(), 8);
        let gied1 = sgcr_scl::parse_icd(&icds[0]).unwrap();
        assert!(gied1.ied("GIED1").unwrap().has_ln_class("PTOC"));
        assert!(!gied1.ied("GIED1").unwrap().has_ln_class("PTOV"));
    }

    #[test]
    fn supplementary_configs_parse() {
        let ied_config = IedConfig::parse(&epic_ied_config().to_xml()).unwrap();
        assert_eq!(ied_config.ieds.len(), 8);
        let plc_config = PlcConfig::parse(&epic_plc_config().to_xml()).unwrap();
        assert_eq!(plc_config.plcs.len(), 1);
        sgcr_scada::ScadaConfig::parse(&epic_scada_config()).unwrap();
        PowerExtraConfig::parse(&epic_power_extra().to_xml()).unwrap();
    }
}
