//! The deterministic exercise engine: drives scenario stages into a running
//! [`CyberRange`] and polls objectives after every co-simulation step.
//!
//! Scheduling is **event-quantized**: stage eligibility is re-checked after
//! each step, so stage start times land on the range's step grid (default
//! 100 ms) — the same quantization the power plane already has. Stage
//! dependencies (`after="stage-id"`) resolve against the dependency's
//! *completion*: a power or link stage completes instantly, an `fci` stage
//! when its forged command round-trips, a `mitm` stage when its hold window
//! ends, a `scan` stage when its sweep finishes. Dependency chains whose
//! members complete at the same instant cascade within one poll, so purely
//! instantaneous sequences do not consume extra steps.
//!
//! Everything the engine does is derived from simulation time and
//! declaration order — no wall clock, no randomness — so a scenario's
//! after-action report is byte-identical run after run.

use crate::report::{ExerciseReport, ObjectiveOutcome, StageOutcome};
use crate::spec::{
    Adversary, AttackerHost, Check, LinkEffect, Objective, Scenario, Stage, StageAction,
    StageStart, TransformSpec,
};
use sgcr_adversary::{
    AttackGraph, CampaignPlan, Goal, PlanRequest, PlannedAction, PlannedStart, PlannedTransform,
};
use sgcr_attack::{
    FciAttackApp, FciHandle, FciPlan, MitmApp, MitmHandle, MitmPlan, ScanHandle, ScanPlan,
    ScannerApp, Transform,
};
use sgcr_core::CyberRange;
use sgcr_net::{Ipv4Addr, SimDuration};
use sgcr_obs::{Event, OpenSpan, Plane};
use sgcr_powerflow::{ScenarioEvent, SimulationSchedule};
use std::collections::BTreeSet;
use std::fmt;

/// Interval between scanner probes (fast enough that a /28 sweep finishes
/// within a couple of range steps).
const SCAN_PROBE_INTERVAL: SimDuration = SimDuration::from_millis(20);

/// An error preparing or running an exercise.
#[derive(Debug, Clone, PartialEq)]
pub struct ExerciseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ExerciseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ExerciseError {}

fn err(message: impl Into<String>) -> ExerciseError {
    ExerciseError {
        message: message.into(),
    }
}

/// How a running stage's completion is observed.
enum Probe {
    /// Completes the instant it starts (power, link).
    Instant,
    /// Completes when the forged command round-trips.
    Fci(FciHandle),
    /// Completes when the hold window ends (absolute sim ms).
    Mitm {
        handle: MitmHandle,
        stop_abs_ms: u64,
    },
    /// Completes when the sweep reports finished.
    Scan(ScanHandle),
}

struct StageRt {
    started_ms: Option<u64>,
    ended_ms: Option<u64>,
    detail: String,
    probe: Probe,
    span: Option<OpenSpan>,
}

enum Resolution {
    Pending,
    Done {
        passed: bool,
        at_ms: u64,
        detail: String,
    },
}

struct ObjectiveRt {
    resolution: Resolution,
    /// Trip count at exercise start, so [`Check::IedTrip`] only counts
    /// trips that happen *during* the exercise.
    baseline_trips: usize,
}

struct Engine {
    base_ms: u64,
    stages: Vec<StageRt>,
    objectives: Vec<ObjectiveRt>,
    /// Ids of planner-emitted campaign stages, when an `<Adversary>` was
    /// declared — they journal as adversary actions, not scenario stages.
    adversary_stages: BTreeSet<String>,
}

/// Runs a parsed scenario against a running range and returns the scored
/// after-action report.
///
/// Attacker hosts declared by the scenario are added to the range first;
/// the exercise then advances the range step by step for the scenario's
/// duration, starting stages as they become eligible and polling every
/// objective in between. Exercise times in the report are relative to the
/// range's clock when this call was made (normally zero on a fresh range).
///
/// # Errors
///
/// Returns [`ExerciseError`] when the scenario does not fit the range:
/// duplicate or dangling stage ids, dependency cycles, unknown hosts,
/// victims, power elements, link endpoints or objective targets, a cyber
/// stage host that is not a declared attacker host (generated hosts already
/// run their own apps), more than one cyber stage per attacker host (a host
/// runs at most one app), or SCADA objectives on a range without SCADA.
/// A *failed objective is not an error* — it is a scored result.
pub fn run_exercise(
    range: &mut CyberRange,
    scenario: &Scenario,
) -> Result<ExerciseReport, ExerciseError> {
    // An <Adversary> declaration expands into ordinary hosts, stages, and a
    // goal objective before validation, so everything downstream — scoring,
    // journal, report — treats the campaign like a hand-written scenario.
    let mut adversary_stages = BTreeSet::new();
    let expanded: Option<Scenario> = match &scenario.adversary {
        Some(adv) => {
            let plan = plan_adversary(range, scenario, adv)?;
            adversary_stages = plan.steps.iter().map(|s| s.id.clone()).collect();
            Some(expand_adversary(scenario, &plan))
        }
        None => None,
    };
    let scenario: &Scenario = expanded.as_ref().unwrap_or(scenario);
    validate(range, scenario)?;

    if let Some(seed) = scenario.fault_seed {
        range.set_fault_seed(seed);
    }
    if let Some(stale) = scenario.stale_ms {
        range.set_scada_stale_window(Some(stale));
    }

    for host in &scenario.hosts {
        let ip: Ipv4Addr = host.ip.parse().map_err(|_| {
            err(format!(
                "host {:?} has unparsable ip {:?}",
                host.name, host.ip
            ))
        })?;
        range.add_host(&host.name, ip, &host.switch);
    }

    let base_ms = range.now().as_millis();
    let mut engine = Engine {
        base_ms,
        stages: scenario
            .stages
            .iter()
            .map(|_| StageRt {
                started_ms: None,
                ended_ms: None,
                detail: String::new(),
                probe: Probe::Instant,
                span: None,
            })
            .collect(),
        objectives: scenario
            .objectives
            .iter()
            .map(|objective| ObjectiveRt {
                resolution: Resolution::Pending,
                baseline_trips: match &objective.check {
                    Check::IedTrip { ied } => range.ied_trip_count(ied).unwrap_or(0),
                    _ => 0,
                },
            })
            .collect(),
        adversary_stages,
    };

    loop {
        let now_rel = range.now().as_millis().saturating_sub(base_ms);
        engine.poll(range, scenario, now_rel, false);
        if now_rel >= scenario.duration_ms {
            break;
        }
        range.step();
    }
    let end_rel = range.now().as_millis().saturating_sub(base_ms);
    engine.poll(range, scenario, end_rel, true);
    Ok(engine.into_report(range, scenario, end_rel))
}

/// Derives the attack graph and runs the seeded planner for an
/// `<Adversary>` declaration, under an `adversary.plan` span.
fn plan_adversary(
    range: &CyberRange,
    scenario: &Scenario,
    adv: &Adversary,
) -> Result<CampaignPlan, ExerciseError> {
    let now = range.now();
    let mut span = range
        .telemetry()
        .tracer()
        .open("adversary.plan", Plane::Range, None, now);
    if span.is_recording() {
        span.attr("goal", adv.goal.clone());
        span.attr("seed", adv.seed.to_string());
        span.attr("budget", adv.budget.to_string());
    }

    let graph = AttackGraph::derive(range.model());
    let reserved_names: Vec<String> = scenario.hosts.iter().map(|h| h.name.clone()).collect();
    let reserved_ips: Vec<Ipv4Addr> = scenario
        .hosts
        .iter()
        .filter_map(|h| h.ip.parse().ok())
        .collect();
    let result = sgcr_adversary::plan(
        &graph,
        &PlanRequest {
            goal: &adv.goal,
            budget: adv.budget,
            seed: adv.seed,
            reserved_names: &reserved_names,
            reserved_ips: &reserved_ips,
        },
    );
    span.end(range.now());
    let plan = result.map_err(|e| err(format!("adversary: {e}")))?;
    range.telemetry().record(now, || Event::AdversaryPlanned {
        goal: adv.goal.clone(),
        seed: adv.seed,
        stages: plan.steps.len() as u64,
    });
    Ok(plan)
}

/// Rewrites the scenario with the campaign's hosts, stages, and goal
/// objective appended, so the ordinary engine machinery runs it.
fn expand_adversary(scenario: &Scenario, plan: &CampaignPlan) -> Scenario {
    let mut expanded = scenario.clone();
    let pos = scenario
        .adversary
        .as_ref()
        .map(|a| a.pos)
        .unwrap_or_default();
    for host in &plan.hosts {
        expanded.hosts.push(AttackerHost {
            name: host.name.clone(),
            ip: host.ip.to_string(),
            switch: host.switch.clone(),
            pos,
        });
    }
    for step in &plan.steps {
        let start = match &step.start {
            PlannedStart::At(t) => StageStart::At(*t),
            PlannedStart::After { step, delay_ms } => StageStart::After {
                stage: step.clone(),
                delay_ms: *delay_ms,
            },
        };
        let action = match &step.action {
            PlannedAction::Scan {
                host,
                first,
                last,
                ports,
            } => StageAction::Scan {
                host: host.clone(),
                first: first.to_string(),
                last: last.to_string(),
                ports: ports.clone(),
            },
            PlannedAction::Mitm {
                host,
                victim_a,
                victim_b,
                duration_ms,
                transform,
            } => StageAction::Mitm {
                host: host.clone(),
                victim_a: victim_a.clone(),
                victim_b: victim_b.clone(),
                duration_ms: *duration_ms,
                transform: match transform {
                    PlannedTransform::PassThrough => TransformSpec::PassThrough,
                    PlannedTransform::ScaleModbusRegisters(f) => {
                        TransformSpec::ScaleModbusRegisters(*f)
                    }
                    PlannedTransform::ScaleMmsFloats(f) => TransformSpec::ScaleMmsFloats(*f),
                },
            },
            PlannedAction::Fci {
                host,
                victim,
                item,
                value,
            } => StageAction::Fci {
                host: host.clone(),
                victim: victim.clone(),
                item: item.clone(),
                value: *value,
                interrogate: true,
            },
        };
        expanded.stages.push(Stage {
            id: step.id.clone(),
            start,
            action,
            pos,
        });
    }
    expanded.objectives.push(Objective {
        id: CampaignPlan::OBJECTIVE_ID.to_string(),
        points: 1,
        after: Some(plan.objective_after.clone()),
        within_ms: i64::try_from(plan.objective_within_ms).unwrap_or(i64::MAX),
        check: match &plan.goal {
            Goal::BreakerOpen { switch } => Check::BreakerOpen {
                switch: switch.clone(),
            },
            Goal::BreakerClosed { switch } => Check::BreakerClosed {
                switch: switch.clone(),
            },
            Goal::ScadaAlarm { point } => Check::ScadaAlarm {
                point: point.clone(),
            },
        },
        pos,
    });
    expanded
}

/// Rejects scenarios that do not fit the range before anything mutates.
fn validate(range: &CyberRange, scenario: &Scenario) -> Result<(), ExerciseError> {
    let mut stage_ids = BTreeSet::new();
    for stage in &scenario.stages {
        if !stage_ids.insert(stage.id.as_str()) {
            return Err(err(format!("duplicate stage id {:?}", stage.id)));
        }
    }
    let mut objective_ids = BTreeSet::new();
    for objective in &scenario.objectives {
        if !objective_ids.insert(objective.id.as_str()) {
            return Err(err(format!("duplicate objective id {:?}", objective.id)));
        }
    }

    // Dependencies: defined, not self-referential, acyclic. Each stage has
    // at most one parent, so cycle detection is a bounded parent walk.
    let parent_of = |id: &str| -> Option<&str> {
        scenario
            .stages
            .iter()
            .find_map(|s| match (&s.id, &s.start) {
                (sid, StageStart::After { stage, .. }) if sid == id => Some(stage.as_str()),
                _ => None,
            })
    };
    for stage in &scenario.stages {
        if let StageStart::After { stage: dep, .. } = &stage.start {
            if !stage_ids.contains(dep.as_str()) {
                return Err(err(format!(
                    "stage {:?} depends on undefined stage {dep:?}",
                    stage.id
                )));
            }
            let mut cursor = stage.id.as_str();
            for _ in 0..=scenario.stages.len() {
                match parent_of(cursor) {
                    Some(parent) if parent == stage.id => {
                        return Err(err(format!(
                            "stage {:?} is in a dependency cycle",
                            stage.id
                        )));
                    }
                    Some(parent) => cursor = parent,
                    None => break,
                }
            }
        }
    }

    // Attacker hosts: fresh names on existing switches.
    let mut declared_hosts = BTreeSet::new();
    for host in &scenario.hosts {
        if host.ip.parse::<Ipv4Addr>().is_err() {
            return Err(err(format!(
                "host {:?} has unparsable ip {:?}",
                host.name, host.ip
            )));
        }
        if range.net.node_by_name(&host.switch).is_none() {
            return Err(err(format!(
                "host {:?} attaches to unknown switch {:?}",
                host.name, host.switch
            )));
        }
        if range.node(&host.name).is_some() || !declared_hosts.insert(host.name.as_str()) {
            return Err(err(format!("host {:?} already exists", host.name)));
        }
    }

    // Stages: targets must exist; one cyber stage per attacker host.
    let mut used_hosts = BTreeSet::new();
    for stage in &scenario.stages {
        let id = &stage.id;
        match &stage.action {
            StageAction::Power(action) => {
                use sgcr_powerflow::ScenarioAction as A;
                let (known, target, what) = match action {
                    A::OpenSwitch(t) | A::CloseSwitch(t) => {
                        (range.power.switch_by_name(t).is_some(), t, "switch")
                    }
                    A::LineOutage(t) | A::LineRestore(t) => {
                        (range.power.line_by_name(t).is_some(), t, "line")
                    }
                    A::GenLoss(t) | A::GenRestore(t) => (
                        range.power.gen_by_name(t).is_some()
                            || range.power.sgen_by_name(t).is_some(),
                        t,
                        "generator",
                    ),
                    A::SetLoadP(t, _) => (range.power.load_by_name(t).is_some(), t, "load"),
                };
                if !known {
                    return Err(err(format!(
                        "stage {id:?} targets unknown {what} {target:?}"
                    )));
                }
            }
            StageAction::Fci { host, victim, .. } => {
                check_attacker_host(&declared_hosts, &mut used_hosts, id, host)?;
                if range.plan().host_ip(victim).is_none() {
                    return Err(err(format!(
                        "stage {id:?} targets unknown victim {victim:?}"
                    )));
                }
            }
            StageAction::Mitm {
                host,
                victim_a,
                victim_b,
                ..
            } => {
                check_attacker_host(&declared_hosts, &mut used_hosts, id, host)?;
                for victim in [victim_a, victim_b] {
                    if range.plan().host_ip(victim).is_none() {
                        return Err(err(format!(
                            "stage {id:?} targets unknown victim {victim:?}"
                        )));
                    }
                }
            }
            StageAction::Scan {
                host, first, last, ..
            } => {
                check_attacker_host(&declared_hosts, &mut used_hosts, id, host)?;
                for addr in [first, last] {
                    if addr.parse::<Ipv4Addr>().is_err() {
                        return Err(err(format!("stage {id:?} has unparsable address {addr:?}")));
                    }
                }
            }
            StageAction::Link { a, b, .. } => {
                for end in [a, b] {
                    if range.net.node_by_name(end).is_none() {
                        return Err(err(format!("stage {id:?} names unknown node {end:?}")));
                    }
                }
            }
            StageAction::LinkFault { a, b, fault } => {
                for end in [a, b] {
                    if range.net.node_by_name(end).is_none() {
                        return Err(err(format!("stage {id:?} names unknown node {end:?}")));
                    }
                }
                for (what, p) in [
                    ("loss", fault.loss),
                    ("corrupt", fault.corrupt),
                    ("duplicate", fault.duplicate),
                ] {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(err(format!("stage {id:?} has {what}={p} outside [0, 1]")));
                    }
                }
            }
            StageAction::Crash { host, .. } => {
                if range.node(host).is_none() && !declared_hosts.contains(host.as_str()) {
                    return Err(err(format!("stage {id:?} crashes unknown host {host:?}")));
                }
            }
            StageAction::Sensor { ied, .. } => {
                if !range.ieds.contains_key(ied) {
                    return Err(err(format!("stage {id:?} names unknown IED {ied:?}")));
                }
            }
        }
    }

    // Objectives: targets must exist, deadlines must be meetable.
    for objective in &scenario.objectives {
        let id = &objective.id;
        if let Some(dep) = &objective.after {
            if !stage_ids.contains(dep.as_str()) {
                return Err(err(format!(
                    "objective {id:?} is anchored to undefined stage {dep:?}"
                )));
            }
        }
        match &objective.check {
            Check::VoltageBand {
                bus,
                from_ms,
                to_ms,
                ..
            } => {
                if range.power.bus_by_name(bus).is_none() {
                    return Err(err(format!("objective {id:?} targets unknown bus {bus:?}")));
                }
                if to_ms <= from_ms {
                    return Err(err(format!("objective {id:?} has an empty window")));
                }
            }
            check => {
                if objective.within_ms <= 0 {
                    return Err(err(format!(
                        "objective {id:?} has non-positive withinMs {}",
                        objective.within_ms
                    )));
                }
                match check {
                    Check::BreakerOpen { switch } | Check::BreakerClosed { switch } => {
                        if range.switch_is_closed(switch).is_none() {
                            return Err(err(format!(
                                "objective {id:?} targets unknown switch {switch:?}"
                            )));
                        }
                    }
                    Check::IedTrip { ied } => {
                        if range.ied_trip_count(ied).is_none() {
                            return Err(err(format!(
                                "objective {id:?} targets unknown IED {ied:?}"
                            )));
                        }
                    }
                    Check::ScadaAlarm { .. } | Check::TagAbove { .. } | Check::TagBelow { .. } => {
                        if range.scada.is_none() {
                            return Err(err(format!(
                                "objective {id:?} needs SCADA, but the range has none"
                            )));
                        }
                    }
                    Check::VoltageBand { .. } => {}
                }
            }
        }
    }
    Ok(())
}

fn check_attacker_host<'a>(
    declared: &BTreeSet<&str>,
    used: &mut BTreeSet<&'a str>,
    stage_id: &str,
    host: &'a str,
) -> Result<(), ExerciseError> {
    if !declared.contains(host) {
        return Err(err(format!(
            "stage {stage_id:?} runs on {host:?}, which is not a declared <Host>"
        )));
    }
    if !used.insert(host) {
        return Err(err(format!(
            "stage {stage_id:?} reuses host {host:?} (a host runs at most one app)"
        )));
    }
    Ok(())
}

impl Engine {
    /// One evaluation pass at exercise time `now_rel`: advance stages to a
    /// fixed point (instantaneous chains cascade), then poll objectives.
    /// With `finalize` set, everything still pending is resolved.
    fn poll(&mut self, range: &mut CyberRange, scenario: &Scenario, now_rel: u64, finalize: bool) {
        loop {
            let mut changed = false;
            for i in 0..scenario.stages.len() {
                changed |= self.advance_stage(range, scenario, i, now_rel);
            }
            if !changed {
                break;
            }
        }
        if finalize {
            for i in 0..scenario.stages.len() {
                self.close_stage_at_end(range, scenario, i);
            }
        }
        for i in 0..scenario.objectives.len() {
            self.eval_objective(range, scenario, i, now_rel, finalize);
        }
    }

    fn advance_stage(
        &mut self,
        range: &mut CyberRange,
        scenario: &Scenario,
        i: usize,
        now_rel: u64,
    ) -> bool {
        if self.stages[i].started_ms.is_none() {
            let eligible = match &scenario.stages[i].start {
                StageStart::At(t) => now_rel >= *t,
                StageStart::After { stage, delay_ms } => scenario
                    .stages
                    .iter()
                    .position(|s| &s.id == stage)
                    .and_then(|dep| self.stages[dep].ended_ms)
                    .is_some_and(|ended| now_rel >= ended + delay_ms),
            };
            if eligible {
                self.start_stage(range, scenario, i, now_rel);
                return true;
            }
            return false;
        }
        if self.stages[i].ended_ms.is_none() {
            let complete = match &self.stages[i].probe {
                Probe::Instant => true,
                Probe::Fci(handle) => handle.lock().completed_at_ms.is_some(),
                Probe::Mitm { stop_abs_ms, .. } => self.base_ms + now_rel >= *stop_abs_ms,
                Probe::Scan(handle) => handle.lock().finished,
            };
            if complete {
                self.end_stage(range, scenario, i, now_rel);
                return true;
            }
        }
        false
    }

    fn start_stage(&mut self, range: &mut CyberRange, scenario: &Scenario, i: usize, now_rel: u64) {
        let stage = &scenario.stages[i];
        let abs_now_ms = self.base_ms + now_rel;
        let mut detail = String::new();
        let probe = match &stage.action {
            StageAction::Power(action) => {
                // Reuse the power plane's own event executor for a one-shot
                // action; the new state takes effect at the next solve.
                let schedule = SimulationSchedule {
                    profiles: Vec::new(),
                    events: vec![ScenarioEvent {
                        at_ms: 1,
                        action: action.clone(),
                    }],
                };
                let touched = schedule.apply(&mut range.power, 0, 1);
                detail = touched.join("; ");
                Probe::Instant
            }
            StageAction::Fci {
                victim,
                item,
                value,
                interrogate,
                host,
            } => {
                // Victim resolution was validated; a race would only lose
                // the stage, not the exercise.
                let Some(victim_ip) = range.plan().host_ip(victim) else {
                    self.stages[i].detail = format!("victim {victim:?} vanished");
                    self.stages[i].started_ms = Some(now_rel);
                    self.stages[i].ended_ms = Some(now_rel);
                    return;
                };
                let (app, handle) = FciAttackApp::new(FciPlan {
                    victim: victim_ip,
                    item: item.clone(),
                    value: *value,
                    at_ms: abs_now_ms,
                    interrogate: *interrogate,
                });
                range.attach_app(host, Box::new(app));
                Probe::Fci(handle)
            }
            StageAction::Mitm {
                host,
                victim_a,
                victim_b,
                duration_ms,
                transform,
            } => {
                let (Some(a), Some(b)) = (
                    range.plan().host_ip(victim_a),
                    range.plan().host_ip(victim_b),
                ) else {
                    self.stages[i].detail = "victim vanished".to_string();
                    self.stages[i].started_ms = Some(now_rel);
                    self.stages[i].ended_ms = Some(now_rel);
                    return;
                };
                let stop_abs_ms = if *duration_ms == 0 {
                    u64::MAX
                } else {
                    abs_now_ms + duration_ms
                };
                let (app, handle) = MitmApp::new(MitmPlan {
                    victim_a: a,
                    victim_b: b,
                    start_ms: abs_now_ms,
                    stop_ms: stop_abs_ms,
                    transform: match transform {
                        TransformSpec::PassThrough => Transform::PassThrough,
                        TransformSpec::ScaleModbusRegisters(f) => {
                            Transform::ScaleModbusRegisters(*f)
                        }
                        TransformSpec::SetModbusRegisters(v) => Transform::SetModbusRegisters(*v),
                        TransformSpec::ScaleMmsFloats(f) => Transform::ScaleMmsFloats(*f),
                        TransformSpec::Drop => Transform::Drop,
                    },
                });
                range.attach_app(host, Box::new(app));
                Probe::Mitm {
                    handle,
                    stop_abs_ms,
                }
            }
            StageAction::Scan {
                host,
                first,
                last,
                ports,
            } => {
                let (Ok(first), Ok(last)) = (first.parse(), last.parse()) else {
                    self.stages[i].detail = "unparsable sweep range".to_string();
                    self.stages[i].started_ms = Some(now_rel);
                    self.stages[i].ended_ms = Some(now_rel);
                    return;
                };
                let (app, handle) = ScannerApp::new(ScanPlan {
                    first,
                    last,
                    ports: ports.clone(),
                    probe_interval: SCAN_PROBE_INTERVAL,
                });
                range.attach_app(host, Box::new(app));
                Probe::Scan(handle)
            }
            StageAction::Link { a, b, effect } => {
                let applied = match effect {
                    LinkEffect::Down => range.set_link_state(a, b, false),
                    LinkEffect::Up => range.set_link_state(a, b, true),
                    LinkEffect::Delay { latency_ms } => {
                        range.set_link_latency(a, b, SimDuration::from_millis(*latency_ms))
                    }
                };
                detail = if applied {
                    match effect {
                        LinkEffect::Down => format!("link {a} — {b} taken down"),
                        LinkEffect::Up => format!("link {a} — {b} restored"),
                        LinkEffect::Delay { latency_ms } => {
                            format!("link {a} — {b} latency set to {latency_ms} ms")
                        }
                    }
                } else {
                    format!("no direct link {a} — {b}")
                };
                Probe::Instant
            }
            StageAction::LinkFault { a, b, fault } => {
                let applied = range.set_link_fault(a, b, *fault);
                detail = if applied {
                    let target = format!("link {a} — {b}");
                    let summary = fault.summary();
                    range
                        .telemetry()
                        .record(range.now(), || Event::FaultInjected {
                            target: target.clone(),
                            detail: summary.clone(),
                        });
                    format!("{target} impaired: {summary}")
                } else {
                    format!("no direct link {a} — {b}")
                };
                Probe::Instant
            }
            StageAction::Crash {
                host,
                restart_after_ms,
            } => {
                // crash_host journals DeviceCrashed (and the watchdog later
                // journals DeviceRestarted) by itself.
                let applied = range.crash_host(host, *restart_after_ms);
                detail = if applied {
                    let summary = match restart_after_ms {
                        Some(ms) => format!("crashed, restart in {ms} ms"),
                        None => "crashed, stays down".to_string(),
                    };
                    range
                        .telemetry()
                        .record(range.now(), || Event::FaultInjected {
                            target: host.clone(),
                            detail: summary.clone(),
                        });
                    format!("host {host} {summary}")
                } else {
                    format!("host {host} cannot crash (unknown or a switch)")
                };
                Probe::Instant
            }
            StageAction::Sensor { ied, key, fault } => {
                let (applied, summary) = match fault {
                    Some(fault) => (
                        range.set_sensor_fault(ied, key, *fault),
                        format!("sensor {key} {}", fault.summary()),
                    ),
                    None => (
                        range.clear_sensor_fault(ied, key),
                        format!("sensor {key} cleared"),
                    ),
                };
                detail = if applied {
                    range
                        .telemetry()
                        .record(range.now(), || Event::FaultInjected {
                            target: ied.clone(),
                            detail: summary.clone(),
                        });
                    format!("{ied}: {summary}")
                } else {
                    format!("{ied}: {summary} not applied")
                };
                Probe::Instant
            }
        };

        let now = range.now();
        let is_adversary = self.adversary_stages.contains(&stage.id);
        if is_adversary {
            range
                .telemetry()
                .record(now, || Event::AdversaryActionStarted {
                    stage: stage.id.clone(),
                });
        } else {
            range.telemetry().record(now, || Event::StageStarted {
                stage: stage.id.clone(),
            });
        }
        let mut span = range.telemetry().tracer().open(
            if is_adversary {
                "adversary.action"
            } else {
                "scenario.stage"
            },
            Plane::Range,
            None,
            now,
        );
        if span.is_recording() {
            span.attr("stage", stage.id.clone());
            span.attr("kind", stage.action.kind());
        }
        self.stages[i].span = Some(span);
        self.stages[i].started_ms = Some(now_rel);
        self.stages[i].detail = detail;
        self.stages[i].probe = probe;
    }

    fn end_stage(&mut self, range: &mut CyberRange, scenario: &Scenario, i: usize, now_rel: u64) {
        let detail = match &self.stages[i].probe {
            Probe::Instant => self.stages[i].detail.clone(),
            Probe::Fci(handle) => {
                let report = handle.lock();
                format!(
                    "{} items discovered, command accepted: {}",
                    report.discovered_items.len(),
                    match report.command_accepted {
                        Some(true) => "yes",
                        Some(false) => "no",
                        None => "never answered",
                    }
                )
            }
            Probe::Mitm { handle, .. } => {
                let report = handle.lock();
                format!(
                    "position established: {}, {} frames forwarded, {} modified, {} dropped",
                    if report.position_established {
                        "yes"
                    } else {
                        "no"
                    },
                    report.forwarded,
                    report.modified,
                    report.dropped
                )
            }
            Probe::Scan(handle) => {
                let report = handle.lock();
                let open: usize = report.open_ports.values().map(Vec::len).sum();
                format!(
                    "{} hosts discovered, {} open ports",
                    report.hosts.len(),
                    open
                )
            }
        };
        self.stages[i].detail = detail;
        self.stages[i].ended_ms = Some(now_rel);
        let now = range.now();
        range.telemetry().record(now, || Event::StageEnded {
            stage: scenario.stages[i].id.clone(),
        });
        if let Some(span) = self.stages[i].span.take() {
            span.end(now);
        }
    }

    /// Closes the trace span of a stage still running at exercise end (its
    /// `ended_ms` stays `None` — the report shows it as unfinished).
    fn close_stage_at_end(&mut self, range: &CyberRange, scenario: &Scenario, i: usize) {
        if self.stages[i].started_ms.is_some() && self.stages[i].ended_ms.is_none() {
            // Summarize whatever the attack achieved by the cut-off.
            let summary = match &self.stages[i].probe {
                Probe::Mitm { handle, .. } => {
                    let report = handle.lock();
                    Some(format!(
                        "cut off at exercise end: {} frames forwarded, {} modified, {} dropped",
                        report.forwarded, report.modified, report.dropped
                    ))
                }
                Probe::Fci(handle) => {
                    let report = handle.lock();
                    Some(format!(
                        "cut off at exercise end: {} items discovered, no command round-trip",
                        report.discovered_items.len()
                    ))
                }
                Probe::Scan(handle) => {
                    let report = handle.lock();
                    Some(format!(
                        "cut off at exercise end: {} hosts discovered",
                        report.hosts.len()
                    ))
                }
                Probe::Instant => None,
            };
            if let Some(summary) = summary {
                self.stages[i].detail = summary;
            }
            if let Some(span) = self.stages[i].span.take() {
                span.end(range.now());
            }
            let _ = scenario;
        }
    }

    fn eval_objective(
        &mut self,
        range: &CyberRange,
        scenario: &Scenario,
        i: usize,
        now_rel: u64,
        finalize: bool,
    ) {
        if matches!(self.objectives[i].resolution, Resolution::Done { .. }) {
            return;
        }
        let objective = &scenario.objectives[i];

        if let Check::VoltageBand {
            bus,
            min_pu,
            max_pu,
            from_ms,
            to_ms,
        } = &objective.check
        {
            if now_rel >= *from_ms && now_rel <= *to_ms {
                let vm = range.bus_voltage_pu(bus).unwrap_or(0.0);
                if vm < *min_pu || vm > *max_pu {
                    self.resolve(
                        range,
                        scenario,
                        i,
                        false,
                        now_rel,
                        format!(
                            "voltage {vm:.4} pu outside [{min_pu}, {max_pu}] at t={now_rel} ms"
                        ),
                    );
                    return;
                }
            }
            if now_rel > *to_ms || finalize {
                let at = (*to_ms).min(now_rel);
                self.resolve(
                    range,
                    scenario,
                    i,
                    true,
                    at,
                    "no violation observed".to_string(),
                );
            }
            return;
        }

        // Reach objective: the condition must hold within the deadline
        // window anchored at the referenced stage's start.
        let anchor = match &objective.after {
            None => Some(0),
            Some(stage) => scenario
                .stages
                .iter()
                .position(|s| &s.id == stage)
                .and_then(|dep| self.stages[dep].started_ms),
        };
        let Some(anchor) = anchor else {
            if finalize {
                let stage = objective.after.as_deref().unwrap_or("?");
                self.resolve(
                    range,
                    scenario,
                    i,
                    false,
                    now_rel,
                    format!("anchor stage {stage:?} never started"),
                );
            }
            return;
        };
        // within_ms > 0 was validated.
        let deadline = anchor + u64::try_from(objective.within_ms).unwrap_or(0);
        if now_rel >= anchor && now_rel <= deadline {
            if let Some(detail) = self.check_holds(range, i, &objective.check) {
                self.resolve(range, scenario, i, true, now_rel, detail);
                return;
            }
            if finalize {
                self.resolve(
                    range,
                    scenario,
                    i,
                    false,
                    now_rel,
                    format!("exercise ended before deadline t={deadline} ms"),
                );
            }
            return;
        }
        if now_rel > deadline {
            self.resolve(
                range,
                scenario,
                i,
                false,
                now_rel,
                format!("deadline t={deadline} ms passed"),
            );
        } else if finalize {
            self.resolve(
                range,
                scenario,
                i,
                false,
                now_rel,
                format!("window never opened (anchor t={anchor} ms)"),
            );
        }
    }

    /// Whether a reach condition currently holds; `Some(detail)` on success.
    fn check_holds(&self, range: &CyberRange, i: usize, check: &Check) -> Option<String> {
        match check {
            Check::BreakerOpen { switch } => (range.switch_is_closed(switch) == Some(false))
                .then(|| format!("{switch} observed open")),
            Check::BreakerClosed { switch } => (range.switch_is_closed(switch) == Some(true))
                .then(|| format!("{switch} observed closed")),
            Check::ScadaAlarm { point } => range
                .scada_alarm_active(point)
                .then(|| format!("alarm on {point} active")),
            Check::IedTrip { ied } => {
                let trips = range.ied_trip_count(ied).unwrap_or(0);
                (trips > self.objectives[i].baseline_trips)
                    .then(|| format!("{ied} tripped ({trips} total)"))
            }
            Check::TagAbove { point, value } => {
                let shown = range.scada_tag(point)?;
                (shown > *value).then(|| format!("{point} displayed as {shown:.4}"))
            }
            Check::TagBelow { point, value } => {
                let shown = range.scada_tag(point)?;
                (shown < *value).then(|| format!("{point} displayed as {shown:.4}"))
            }
            Check::VoltageBand { .. } => None,
        }
    }

    fn resolve(
        &mut self,
        range: &CyberRange,
        scenario: &Scenario,
        i: usize,
        passed: bool,
        at_ms: u64,
        detail: String,
    ) {
        let id = &scenario.objectives[i].id;
        let now = range.now();
        range.telemetry().record(now, || Event::ObjectiveResolved {
            objective: id.clone(),
            passed,
        });
        let tracer = range.telemetry().tracer();
        let mut span = tracer.open("scenario.objective", Plane::Range, None, now);
        if span.is_recording() {
            span.attr("objective", id.clone());
            span.attr("outcome", if passed { "pass" } else { "fail" });
        }
        span.end(now);
        // The campaign's goal objective passing IS the adversary reaching
        // its declared goal.
        if passed && !self.adversary_stages.is_empty() && id == CampaignPlan::OBJECTIVE_ID {
            range
                .telemetry()
                .record(now, || Event::AdversaryGoalReached {
                    objective: id.clone(),
                });
        }
        self.objectives[i].resolution = Resolution::Done {
            passed,
            at_ms,
            detail,
        };
    }

    fn into_report(
        self,
        _range: &CyberRange,
        scenario: &Scenario,
        _end_rel: u64,
    ) -> ExerciseReport {
        let stages = scenario
            .stages
            .iter()
            .zip(&self.stages)
            .map(|(stage, rt)| StageOutcome {
                id: stage.id.clone(),
                kind: stage.action.kind(),
                started_ms: rt.started_ms,
                ended_ms: rt.ended_ms,
                detail: rt.detail.clone(),
            })
            .collect();
        let objectives = scenario
            .objectives
            .iter()
            .zip(&self.objectives)
            .map(|(objective, rt)| {
                let (passed, at_ms, detail) = match &rt.resolution {
                    Resolution::Done {
                        passed,
                        at_ms,
                        detail,
                    } => (*passed, *at_ms, detail.clone()),
                    // Unreachable: the finalize pass resolves everything.
                    Resolution::Pending => (false, 0, "unresolved".to_string()),
                };
                ObjectiveOutcome {
                    id: objective.id.clone(),
                    description: objective.describe(),
                    passed,
                    resolved_at_ms: at_ms,
                    detail,
                    points: objective.points,
                    earned: if passed { objective.points } else { 0 },
                }
            })
            .collect();
        ExerciseReport {
            scenario: scenario.name.clone(),
            description: scenario.description.clone(),
            duration_ms: scenario.duration_ms,
            stages,
            objectives,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::spec::Scenario;
    use sgcr_core::CompiledModel;
    use sgcr_models::epic_bundle;

    fn scenario(xml: &str) -> Scenario {
        Scenario::parse(xml).unwrap()
    }

    #[test]
    fn power_stage_with_reach_and_band_objectives() {
        let mut range =
            CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).unwrap()).unwrap();
        let s = scenario(
            r#"<Scenario name="t" durationMs="1500">
  <Stage id="open" t="300" kind="power" action="openSwitch" target="EPIC/CB_HOME"/>
  <Objective id="opened" kind="breakerOpen" target="EPIC/CB_HOME" after="open" withinMs="500"/>
  <Objective id="too-tight" kind="breakerOpen" target="EPIC/CB_GEN" withinMs="1" points="3"/>
  <Objective id="band" kind="voltageBand" bus="EPIC/LV/GenBay/CN_GEN" min="0.5" max="1.5" fromMs="0" toMs="1000"/>
</Scenario>"#,
        );
        let report = run_exercise(&mut range, &s).unwrap();
        assert_eq!(report.stages.len(), 1);
        assert_eq!(report.stages[0].started_ms, Some(300));
        assert_eq!(report.stages[0].ended_ms, Some(300));
        let by_id = |id: &str| report.objectives.iter().find(|o| o.id == id).unwrap();
        assert!(by_id("opened").passed);
        assert!(by_id("band").passed);
        // CB_GEN never opens, so the 1 ms deadline cannot be met: the
        // objective fails and is still listed in the report.
        let tight = by_id("too-tight");
        assert!(!tight.passed);
        assert_eq!(tight.earned, 0);
        assert_eq!(tight.points, 3);
        let score = report.score();
        assert_eq!(score.earned, 2);
        assert_eq!(score.total, 5);
    }

    #[test]
    fn validation_rejects_misfit_scenarios() {
        let range =
            CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).unwrap()).unwrap();
        let cases = [
            // duplicate stage id
            r#"<Scenario name="t" durationMs="100"><Stage id="a" kind="power" action="openSwitch" target="EPIC/CB_GEN"/><Stage id="a" kind="power" action="openSwitch" target="EPIC/CB_GEN"/></Scenario>"#,
            // undefined dependency
            r#"<Scenario name="t" durationMs="100"><Stage id="a" after="ghost" kind="power" action="openSwitch" target="EPIC/CB_GEN"/></Scenario>"#,
            // dependency cycle
            r#"<Scenario name="t" durationMs="100"><Stage id="a" after="b" kind="power" action="openSwitch" target="EPIC/CB_GEN"/><Stage id="b" after="a" kind="power" action="closeSwitch" target="EPIC/CB_GEN"/></Scenario>"#,
            // unknown power target
            r#"<Scenario name="t" durationMs="100"><Stage id="a" kind="power" action="openSwitch" target="EPIC/CB_GHOST"/></Scenario>"#,
            // cyber stage on undeclared host
            r#"<Scenario name="t" durationMs="100"><Stage id="a" kind="fci" host="ghost" victim="GIED1" item="x"/></Scenario>"#,
            // unknown objective switch
            r#"<Scenario name="t" durationMs="100"><Objective id="o" kind="breakerOpen" target="EPIC/CB_GHOST" withinMs="10"/></Scenario>"#,
            // non-positive deadline
            r#"<Scenario name="t" durationMs="100"><Objective id="o" kind="breakerOpen" target="EPIC/CB_GEN" withinMs="0"/></Scenario>"#,
            // objective anchored to undefined stage
            r#"<Scenario name="t" durationMs="100"><Objective id="o" kind="breakerOpen" target="EPIC/CB_GEN" after="ghost" withinMs="10"/></Scenario>"#,
        ];
        for xml in cases {
            let s = scenario(xml);
            assert!(validate(&range, &s).is_err(), "accepted: {xml}");
        }
    }

    #[test]
    fn fault_stages_apply_and_stale_alarm_fires() {
        let mut range =
            CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).unwrap()).unwrap();
        // Crash the MMS source of MicroVolt_pu after its first poll lands;
        // with a 1.5 s stale window the tag flips to quality `old` and the
        // staleness alarm raises long before the host restarts.
        let s = scenario(
            r#"<Scenario name="faults" durationMs="6000" faultSeed="7" staleMs="1500">
  <Stage id="impair" t="200" kind="linkFault" a="SCADA" b="ControlBus" loss="0.05" jitterMs="2"/>
  <Stage id="crash" t="1500" kind="crash" host="MIED1" restartAfterMs="2000"/>
  <Stage id="stick" t="300" kind="sensor" ied="GIED1" key="meas/EPIC/branch/LGen/i_ka" mode="stuck"/>
  <Stage id="unstick" after="stick" delayMs="2000" kind="sensor" ied="GIED1" key="meas/EPIC/branch/LGen/i_ka" mode="clear"/>
  <Objective id="stale" kind="scadaAlarm" point="stale:MicroVolt_pu" withinMs="5500"/>
</Scenario>"#,
        );
        let report = run_exercise(&mut range, &s).unwrap();
        let by_id = |id: &str| report.stages.iter().find(|st| st.id == id).unwrap();
        assert!(by_id("impair").detail.contains("loss=5%"));
        assert!(by_id("crash").detail.contains("restart in 2000 ms"));
        assert!(by_id("stick").detail.contains("stuck"));
        assert!(by_id("unstick").detail.contains("cleared"));
        let stale = report.objectives.iter().find(|o| o.id == "stale").unwrap();
        assert!(
            stale.passed,
            "stale-tag alarm never fired: {}",
            stale.detail
        );
    }

    #[test]
    fn validation_rejects_misfit_fault_stages() {
        let range =
            CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).unwrap()).unwrap();
        let cases = [
            // loss probability out of range
            r#"<Scenario name="t" durationMs="100"><Stage id="a" kind="linkFault" a="SCADA" b="ControlBus" loss="1.5"/></Scenario>"#,
            // unknown link endpoint
            r#"<Scenario name="t" durationMs="100"><Stage id="a" kind="linkFault" a="SCADA" b="GhostBus" loss="0.5"/></Scenario>"#,
            // crash of an unknown host
            r#"<Scenario name="t" durationMs="100"><Stage id="a" kind="crash" host="GhostIED"/></Scenario>"#,
            // sensor fault on an unknown IED
            r#"<Scenario name="t" durationMs="100"><Stage id="a" kind="sensor" ied="GhostIED" key="k" mode="stuck"/></Scenario>"#,
        ];
        for xml in cases {
            let s = scenario(xml);
            assert!(validate(&range, &s).is_err(), "accepted: {xml}");
        }
    }

    #[test]
    fn dependent_stage_waits_for_completion() {
        let mut range =
            CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).unwrap()).unwrap();
        let s = scenario(
            r#"<Scenario name="t" durationMs="1000">
  <Stage id="first" t="200" kind="power" action="openSwitch" target="EPIC/CB_HOME"/>
  <Stage id="second" after="first" delayMs="300" kind="power" action="closeSwitch" target="EPIC/CB_HOME"/>
</Scenario>"#,
        );
        let report = run_exercise(&mut range, &s).unwrap();
        assert_eq!(report.stages[0].started_ms, Some(200));
        assert_eq!(report.stages[1].started_ms, Some(500));
        assert_eq!(range.switch_is_closed("EPIC/CB_HOME"), Some(true));
    }
}
