//! `sgcr-scenario` — declarative cross-plane exercise orchestration.
//!
//! The paper positions the cyber range as a platform for *cybersecurity
//! experiments and training* (§IV-B, §V), but hand-coding every exercise in
//! Rust does not scale to "as many scenarios as you can imagine". This crate
//! makes exercises **data**: a fourth SG-ML supplementary schema — the
//! *Exercise Scenario XML* (`*.scenario.xml`) — describes a multi-staged,
//! cross-plane exercise, and the engine here runs it against a generated
//! [`sgcr_core::CyberRange`] and scores the outcome.
//!
//! An exercise has three ingredient kinds:
//!
//! * **Stages** — timed or dependency-ordered actions on any plane: power
//!   disturbances (reusing the [`sgcr_powerflow::ScenarioAction`]
//!   vocabulary), cyber attacks (`fci`, `mitm`, `scan` mapped onto
//!   [`sgcr_attack`] apps attached to declared attacker hosts), and network
//!   degradation (link down/up, added latency).
//! * **Objectives** — declarative assertions with deadlines ("breaker opens
//!   within 500 ms of stage `strike`", "SCADA alarm raised", "bus voltage
//!   stays in band"), polled against live IED/SCADA/power-flow state after
//!   every co-simulation step.
//! * **A scored after-action report** — per-objective pass/fail with
//!   timestamps, per-stage timing, and a points total, as text and as JSON
//!   (via [`sgcr_obs::json`]). Reports are byte-deterministic: the same
//!   scenario on the same bundle produces the same bytes, run after run.
//!
//! Stage starts/ends and objective resolutions are journaled and traced
//! (`scenario.stage` / `scenario.objective` spans on the `Range` plane), so
//! a whole exercise can be inspected in the existing Perfetto export.
//!
//! ```no_run
//! use sgcr_scenario::{run_exercise, Scenario};
//!
//! let xml = std::fs::read_to_string("exercise01.scenario.xml")?;
//! let scenario = Scenario::parse(&xml)?;
//! let model = sgcr_core::CompiledModel::shared(&sgcr_models::epic_bundle())?;
//! let mut range = sgcr_core::CyberRange::instantiate(model)?;
//! let report = run_exercise(&mut range, &scenario)?;
//! println!("{}", report.to_text());
//! std::fs::write("report.json", report.to_json())?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod engine;
pub mod report;
pub mod spec;

pub use engine::{run_exercise, ExerciseError};
pub use report::{ExerciseReport, ObjectiveOutcome, Score, StageOutcome};
pub use sgcr_powerflow::ScenarioAction;
pub use spec::{
    Adversary, AttackerHost, Check, LinkEffect, Objective, Pos, Scenario, ScenarioError, Stage,
    StageAction, StageStart, TransformSpec,
};
