//! The scored after-action report: what the exercise produced, as plain
//! text for the terminal and as JSON (via [`sgcr_obs::json`]) for tooling.
//!
//! Reports are **byte-deterministic**: every field derives from simulation
//! time and declaration order — no wall clock, no hash-map iteration — so
//! running the same scenario on the same bundle twice yields identical
//! bytes. A failed objective is always *reported* as failed, never dropped.

use sgcr_obs::json::{number, quote};
use std::fmt::Write as _;

/// What happened to one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOutcome {
    /// Stage id from the scenario file.
    pub id: String,
    /// Stage kind (`power`, `fci`, `mitm`, `scan`, `link`).
    pub kind: &'static str,
    /// When the stage started, ms from exercise start (`None` = never ran).
    pub started_ms: Option<u64>,
    /// When the stage completed (`None` = still running at exercise end).
    pub ended_ms: Option<u64>,
    /// Free-form outcome detail (attack report summary, action applied, …).
    pub detail: String,
}

/// What happened to one objective. Every declared objective appears in the
/// report exactly once, resolved one way or the other.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveOutcome {
    /// Objective id from the scenario file.
    pub id: String,
    /// Human-readable statement of the objective.
    pub description: String,
    /// Whether the objective passed.
    pub passed: bool,
    /// When the objective resolved, ms from exercise start.
    pub resolved_at_ms: u64,
    /// Why it resolved the way it did.
    pub detail: String,
    /// Points at stake.
    pub points: u32,
    /// Points awarded (`points` on pass, 0 on fail).
    pub earned: u32,
}

/// The aggregate score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Points earned across all objectives.
    pub earned: u32,
    /// Points at stake across all objectives.
    pub total: u32,
}

impl Score {
    /// Earned over total as a percentage (100.0 when nothing was at stake).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            f64::from(self.earned) * 100.0 / f64::from(self.total)
        }
    }
}

/// The full after-action report of one exercise run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExerciseReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Exercise length in ms.
    pub duration_ms: u64,
    /// Per-stage outcomes, in declaration order.
    pub stages: Vec<StageOutcome>,
    /// Per-objective outcomes, in declaration order.
    pub objectives: Vec<ObjectiveOutcome>,
}

impl ExerciseReport {
    /// The aggregate score over all objectives.
    pub fn score(&self) -> Score {
        Score {
            earned: self.objectives.iter().map(|o| o.earned).sum(),
            total: self.objectives.iter().map(|o| o.points).sum(),
        }
    }

    /// How many objectives passed.
    pub fn passed_count(&self) -> usize {
        self.objectives.iter().filter(|o| o.passed).count()
    }

    /// How many objectives failed.
    pub fn failed_count(&self) -> usize {
        self.objectives.len() - self.passed_count()
    }

    /// Serializes the report as a single deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"scenario\":{},\"description\":{},\"duration_ms\":{},\"stages\":[",
            quote(&self.scenario),
            quote(&self.description),
            self.duration_ms
        );
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"kind\":{},\"started_ms\":{},\"ended_ms\":{},\"detail\":{}}}",
                quote(&stage.id),
                quote(stage.kind),
                opt_u64(stage.started_ms),
                opt_u64(stage.ended_ms),
                quote(&stage.detail)
            );
        }
        out.push_str("],\"objectives\":[");
        for (i, objective) in self.objectives.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"description\":{},\"passed\":{},\"resolved_at_ms\":{},\"detail\":{},\"points\":{},\"earned\":{}}}",
                quote(&objective.id),
                quote(&objective.description),
                objective.passed,
                objective.resolved_at_ms,
                quote(&objective.detail),
                objective.points,
                objective.earned
            );
        }
        let score = self.score();
        let _ = write!(
            out,
            "],\"score\":{{\"earned\":{},\"total\":{},\"percent\":{}}}}}",
            score.earned,
            score.total,
            number(score.percent())
        );
        out
    }

    /// Renders the report as terminal-friendly text.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "== After-action report: {} ==", self.scenario);
        if !self.description.is_empty() {
            let _ = writeln!(out, "{}", self.description);
        }
        let _ = writeln!(out, "exercise length: {} ms", self.duration_ms);
        let _ = writeln!(out, "\nstages:");
        for stage in &self.stages {
            let timing = match (stage.started_ms, stage.ended_ms) {
                (Some(s), Some(e)) => format!("t={s}..{e} ms"),
                (Some(s), None) => format!("t={s} ms.. (unfinished)"),
                _ => "never started".to_string(),
            };
            let _ = write!(out, "  [{:<5}] {:<16} {timing}", stage.kind, stage.id);
            if stage.detail.is_empty() {
                out.push('\n');
            } else {
                let _ = writeln!(out, " — {}", stage.detail);
            }
        }
        let _ = writeln!(out, "\nobjectives:");
        for objective in &self.objectives {
            let verdict = if objective.passed { "PASS" } else { "FAIL" };
            let _ = writeln!(
                out,
                "  [{verdict}] {:<16} {} (t={} ms, {}/{} pts) — {}",
                objective.id,
                objective.description,
                objective.resolved_at_ms,
                objective.earned,
                objective.points,
                objective.detail
            );
        }
        let score = self.score();
        let _ = writeln!(
            out,
            "\nscore: {}/{} points ({:.1}%) — {} passed, {} failed",
            score.earned,
            score.total,
            score.percent(),
            self.passed_count(),
            self.failed_count()
        );
        out
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample() -> ExerciseReport {
        ExerciseReport {
            scenario: "demo".into(),
            description: "a \"demo\"".into(),
            duration_ms: 5000,
            stages: vec![StageOutcome {
                id: "strike".into(),
                kind: "fci",
                started_ms: Some(2000),
                ended_ms: Some(2400),
                detail: "command accepted".into(),
            }],
            objectives: vec![
                ObjectiveOutcome {
                    id: "open".into(),
                    description: "breaker opens".into(),
                    passed: true,
                    resolved_at_ms: 2500,
                    detail: "observed open".into(),
                    points: 2,
                    earned: 2,
                },
                ObjectiveOutcome {
                    id: "tight".into(),
                    description: "impossible".into(),
                    passed: false,
                    resolved_at_ms: 1,
                    detail: "deadline passed".into(),
                    points: 1,
                    earned: 0,
                },
            ],
        }
    }

    #[test]
    fn score_and_counts() {
        let report = sample();
        assert_eq!(
            report.score(),
            Score {
                earned: 2,
                total: 3
            }
        );
        assert_eq!(report.passed_count(), 1);
        assert_eq!(report.failed_count(), 1);
    }

    #[test]
    fn json_has_score_and_every_objective() {
        let json = sample().to_json();
        assert!(json.contains("\"score\":{\"earned\":2,\"total\":3"));
        assert!(json.contains("\"id\":\"tight\""));
        assert!(json.contains("\"passed\":false"));
        assert!(json.contains("\"resolved_at_ms\":2500"));
        // Escaping went through the shared helper.
        assert!(json.contains(r#""description":"a \"demo\"""#));
    }

    #[test]
    fn text_mentions_pass_and_fail() {
        let text = sample().to_text();
        assert!(text.contains("[PASS]"));
        assert!(text.contains("[FAIL]"));
        assert!(text.contains("score: 2/3"));
    }
}
