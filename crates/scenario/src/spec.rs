//! The SG-ML *Exercise Scenario XML* supplementary schema.
//!
//! Styled after the Power System Extra Config schema
//! (`crates/core/src/sgml/power_extra.rs`): a flat XML document, camelCase
//! attributes, parsed with `sgcr-xml` and writable back out losslessly.
//! Every parsed element keeps its source position so `sgcr-lint` can anchor
//! findings to real `file:line:column` spans.
//!
//! ```xml
//! <Scenario name="epic-fci" durationMs="8000" description="...">
//!   <Host name="malware-host" ip="10.0.1.66" switch="GenBus"/>
//!   <Stage id="recon" t="500" kind="scan" host="malware-host"
//!          first="10.0.1.11" last="10.0.1.14" ports="102,502"/>
//!   <Stage id="strike" after="recon" delayMs="500" kind="fci"
//!          host="malware-host" victim="GIED1"
//!          item="GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal" value="false"/>
//!   <Objective id="gen-open" kind="breakerOpen" target="EPIC/CB_GEN"
//!              after="strike" withinMs="1000" points="2"/>
//! </Scenario>
//! ```

use sgcr_faults::{LinkFault, SensorFault};
use sgcr_powerflow::ScenarioAction;
use sgcr_xml::{Document, ElementRef};
use std::fmt;

/// An error parsing Exercise Scenario XML.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ScenarioError {}

fn err(message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        message: message.into(),
    }
}

/// Source position of an element (1-based; `0` = unknown), kept so lint
/// findings on scenario files carry real spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line, 0 when unknown.
    pub line: u32,
    /// 1-based column, 0 when unknown.
    pub column: u32,
}

impl Pos {
    fn of(el: &ElementRef<'_>) -> Pos {
        Pos {
            line: el.line().unwrap_or(0),
            column: el.column().unwrap_or(0),
        }
    }
}

/// A parsed exercise scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (shown in reports).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Exercise length in simulation milliseconds.
    pub duration_ms: u64,
    /// Seed for the deterministic fault generator (`faultSeed=`). Applied
    /// at exercise start; overridable from the CLI with `--fault-seed`.
    pub fault_seed: Option<u64>,
    /// SCADA stale-tag window in ms (`staleMs=`): a good-quality tag with
    /// no update for longer than this raises a staleness alarm.
    pub stale_ms: Option<u64>,
    /// Attacker hosts to add to the range before the exercise starts.
    pub hosts: Vec<AttackerHost>,
    /// Autonomous adversary declaration, when present: the engine derives
    /// an attack graph and plans a campaign instead of (or alongside)
    /// hand-written cyber stages.
    pub adversary: Option<Adversary>,
    /// Stages in declaration order.
    pub stages: Vec<Stage>,
    /// Objectives in declaration order.
    pub objectives: Vec<Objective>,
}

/// An `<Adversary goal="…" budget="…" seed="…"/>` declaration: a
/// goal-driven red agent whose campaign is planned from the derived
/// attack graph rather than hand-scripted.
#[derive(Debug, Clone, PartialEq)]
pub struct Adversary {
    /// The declared goal, `<kind>:<target>` (e.g. `breakerOpen:EPIC/CB_GEN`,
    /// `scadaAlarm:MicroVolt_pu`).
    pub goal: String,
    /// Maximum number of campaign actions the planner may spend.
    pub budget: u32,
    /// Planner seed — the same seed replays the same campaign
    /// byte-identically.
    pub seed: u64,
    /// Source position in the scenario file.
    pub pos: Pos,
}

/// An attacker host placed on a named switch, like
/// [`sgcr_core::RangeState::add_host`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttackerHost {
    /// Host name (referenced by cyber stages).
    pub name: String,
    /// Dotted-quad IPv4 address.
    pub ip: String,
    /// Name of the subnetwork switch to attach to.
    pub switch: String,
    /// Source position in the scenario file.
    pub pos: Pos,
}

/// When a stage becomes eligible to start.
#[derive(Debug, Clone, PartialEq)]
pub enum StageStart {
    /// At an absolute exercise time (ms from exercise start).
    At(u64),
    /// When another stage *completes*, plus a delay.
    After {
        /// Id of the stage this one waits for.
        stage: String,
        /// Extra delay after the dependency completes, in ms.
        delay_ms: u64,
    },
}

/// One orchestrated step of the exercise.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Unique stage id (referenced by `after=`).
    pub id: String,
    /// When the stage starts.
    pub start: StageStart,
    /// What the stage does.
    pub action: StageAction,
    /// Source position in the scenario file.
    pub pos: Pos,
}

/// What a stage does when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum StageAction {
    /// A power-plane disturbance (the Power Extra Config event vocabulary).
    Power(ScenarioAction),
    /// False command injection from an attacker host
    /// ([`sgcr_attack::FciPlan`]).
    Fci {
        /// Attacker host the app runs on.
        host: String,
        /// Victim host name (an IED with an MMS server).
        victim: String,
        /// MMS item reference to write.
        item: String,
        /// Forged boolean to write (`false` = open for `Pos` controls).
        value: bool,
        /// Whether to interrogate the server's item tree first.
        interrogate: bool,
    },
    /// ARP-spoofing man-in-the-middle between two victims
    /// ([`sgcr_attack::MitmPlan`]).
    Mitm {
        /// Attacker host the app runs on.
        host: String,
        /// First victim host name.
        victim_a: String,
        /// Second victim host name.
        victim_b: String,
        /// How long the position is held, ms (`0` = until exercise end).
        duration_ms: u64,
        /// Payload transform applied while in position.
        transform: TransformSpec,
    },
    /// ARP sweep + TCP port scan ([`sgcr_attack::ScanPlan`]).
    Scan {
        /// Attacker host the app runs on.
        host: String,
        /// First IPv4 address of the swept range.
        first: String,
        /// Last IPv4 address of the swept range (inclusive).
        last: String,
        /// TCP ports probed on each live host.
        ports: Vec<u16>,
    },
    /// Network degradation on the link between two named nodes.
    Link {
        /// One endpoint (host or switch name).
        a: String,
        /// The other endpoint (host or switch name).
        b: String,
        /// What happens to the link.
        effect: LinkEffect,
    },
    /// A probabilistic impairment profile on the link between two named
    /// nodes (loss, corruption, duplication, jitter, flapping). A no-op
    /// profile clears a previously installed one.
    LinkFault {
        /// One endpoint (host or switch name).
        a: String,
        /// The other endpoint (host or switch name).
        b: String,
        /// The impairment profile.
        fault: LinkFault,
    },
    /// Crash a device host; with `restartAfterMs=` the range's watchdog
    /// brings it back automatically.
    Crash {
        /// The host to crash.
        host: String,
        /// Delay until automatic restart, ms (`None` = stays down).
        restart_after_ms: Option<u64>,
    },
    /// Engage (or, with `mode="clear"`, clear) a sensor fault on one
    /// sampled value inside a named IED.
    Sensor {
        /// The IED owning the transducer.
        ied: String,
        /// Process-store key of the faulted value.
        key: String,
        /// The fault to engage; `None` clears.
        fault: Option<SensorFault>,
    },
}

impl StageAction {
    /// The stage's `kind=` attribute value.
    pub fn kind(&self) -> &'static str {
        match self {
            StageAction::Power(_) => "power",
            StageAction::Fci { .. } => "fci",
            StageAction::Mitm { .. } => "mitm",
            StageAction::Scan { .. } => "scan",
            StageAction::Link { .. } => "link",
            StageAction::LinkFault { .. } => "linkFault",
            StageAction::Crash { .. } => "crash",
            StageAction::Sensor { .. } => "sensor",
        }
    }
}

/// Payload transform of a man-in-the-middle stage.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformSpec {
    /// Forward unmodified (eavesdrop only).
    PassThrough,
    /// Scale Modbus register values by a factor.
    ScaleModbusRegisters(f64),
    /// Overwrite Modbus register values with a constant.
    SetModbusRegisters(u16),
    /// Scale floats inside MMS read responses by a factor.
    ScaleMmsFloats(f32),
    /// Drop intercepted frames (denial of service).
    Drop,
}

/// What a `link` stage does to its link.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkEffect {
    /// Take the link down.
    Down,
    /// Bring the link back up.
    Up,
    /// Set the link's one-way latency, in ms.
    Delay {
        /// New latency in milliseconds.
        latency_ms: u64,
    },
}

/// A scored assertion about range state.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Unique objective id.
    pub id: String,
    /// Points awarded on pass (default 1).
    pub points: u32,
    /// Stage whose *start* anchors the deadline window (`None` = exercise
    /// start). Ignored by [`Check::VoltageBand`].
    pub after: Option<String>,
    /// Deadline: the condition must hold within this many ms of the anchor.
    /// Parsed as `i64` so lint can flag zero/negative values. Ignored by
    /// [`Check::VoltageBand`].
    pub within_ms: i64,
    /// The condition itself.
    pub check: Check,
    /// Source position in the scenario file.
    pub pos: Pos,
}

/// The condition an objective asserts.
#[derive(Debug, Clone, PartialEq)]
pub enum Check {
    /// A named switch (`Substation/Name`) is open.
    BreakerOpen {
        /// Scoped switch name.
        switch: String,
    },
    /// A named switch is closed.
    BreakerClosed {
        /// Scoped switch name.
        switch: String,
    },
    /// The SCADA HMI shows an active alarm on a point.
    ScadaAlarm {
        /// Alarmed point (tag) name.
        point: String,
    },
    /// A named IED's protection has tripped during the exercise.
    IedTrip {
        /// IED name.
        ied: String,
    },
    /// The SCADA HMI *displays* a tag above a threshold (detects deception:
    /// the displayed value, not ground truth).
    TagAbove {
        /// Tag name.
        point: String,
        /// Exclusive threshold.
        value: f64,
    },
    /// The SCADA HMI displays a tag below a threshold.
    TagBelow {
        /// Tag name.
        point: String,
        /// Exclusive threshold.
        value: f64,
    },
    /// Invariant: a bus voltage stays inside a band over a time window.
    VoltageBand {
        /// Connectivity-node path of the bus.
        bus: String,
        /// Lower bound, per-unit (inclusive).
        min_pu: f64,
        /// Upper bound, per-unit (inclusive).
        max_pu: f64,
        /// Window start, ms from exercise start.
        from_ms: u64,
        /// Window end, ms from exercise start (inclusive).
        to_ms: u64,
    },
}

impl Objective {
    /// Human-readable statement of the objective, for reports.
    pub fn describe(&self) -> String {
        let anchor = match &self.after {
            Some(stage) => format!("stage {stage}"),
            None => "exercise start".to_string(),
        };
        match &self.check {
            Check::BreakerOpen { switch } => {
                format!(
                    "breaker {switch} opens within {} ms of {anchor}",
                    self.within_ms
                )
            }
            Check::BreakerClosed { switch } => {
                format!(
                    "breaker {switch} closes within {} ms of {anchor}",
                    self.within_ms
                )
            }
            Check::ScadaAlarm { point } => {
                format!(
                    "SCADA alarm on {point} raised within {} ms of {anchor}",
                    self.within_ms
                )
            }
            Check::IedTrip { ied } => {
                format!(
                    "IED {ied} protection trips within {} ms of {anchor}",
                    self.within_ms
                )
            }
            Check::TagAbove { point, value } => {
                format!(
                    "SCADA displays {point} > {value} within {} ms of {anchor}",
                    self.within_ms
                )
            }
            Check::TagBelow { point, value } => {
                format!(
                    "SCADA displays {point} < {value} within {} ms of {anchor}",
                    self.within_ms
                )
            }
            Check::VoltageBand {
                bus,
                min_pu,
                max_pu,
                from_ms,
                to_ms,
            } => {
                format!(
                    "bus {bus} voltage stays within [{min_pu}, {max_pu}] pu from {from_ms} to {to_ms} ms"
                )
            }
        }
    }
}

impl Scenario {
    /// Parses Exercise Scenario XML.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on malformed XML, unknown stage/objective
    /// kinds, or missing required attributes. Dangling references (unknown
    /// hosts, stage ids, …) are *not* errors here — `sgcr-lint` reports
    /// those with spans, and the engine rejects them at run time.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = Document::parse(text).map_err(|e| err(e.to_string()))?;
        let root = doc.root_element();
        if root.name() != "Scenario" {
            return Err(err(format!("expected <Scenario>, found <{}>", root.name())));
        }
        let mut scenario = Scenario {
            name: root.attr_or("name", "unnamed").to_string(),
            description: root.attr_or("description", "").to_string(),
            duration_ms: root
                .attr_parse("durationMs")
                .ok_or_else(|| err("Scenario missing durationMs"))?,
            fault_seed: root.attr_parse("faultSeed"),
            stale_ms: root.attr_parse("staleMs"),
            hosts: Vec::new(),
            adversary: None,
            stages: Vec::new(),
            objectives: Vec::new(),
        };
        for host_el in root.children_named("Host") {
            scenario.hosts.push(AttackerHost {
                name: attr_req(&host_el, "Host", "name")?,
                ip: attr_req(&host_el, "Host", "ip")?,
                switch: attr_req(&host_el, "Host", "switch")?,
                pos: Pos::of(&host_el),
            });
        }
        for adv_el in root.children_named("Adversary") {
            if scenario.adversary.is_some() {
                return Err(err("at most one <Adversary> is allowed"));
            }
            scenario.adversary = Some(Adversary {
                goal: attr_req(&adv_el, "Adversary", "goal")?,
                budget: adv_el.attr_parse("budget").unwrap_or(4),
                seed: adv_el.attr_parse("seed").unwrap_or(0),
                pos: Pos::of(&adv_el),
            });
        }
        for stage_el in root.children_named("Stage") {
            scenario.stages.push(parse_stage(&stage_el)?);
        }
        for obj_el in root.children_named("Objective") {
            scenario.objectives.push(parse_objective(&obj_el)?);
        }
        Ok(scenario)
    }

    /// Serializes back to XML (the inverse of [`Scenario::parse`]).
    pub fn to_xml(&self) -> String {
        let mut doc = Document::new("Scenario");
        let root = doc.root_id();
        doc.set_attr(root, "name", &self.name);
        if !self.description.is_empty() {
            doc.set_attr(root, "description", &self.description);
        }
        doc.set_attr(root, "durationMs", &self.duration_ms.to_string());
        if let Some(seed) = self.fault_seed {
            doc.set_attr(root, "faultSeed", &seed.to_string());
        }
        if let Some(stale) = self.stale_ms {
            doc.set_attr(root, "staleMs", &stale.to_string());
        }
        for host in &self.hosts {
            let e = doc.add_element(root, "Host");
            doc.set_attr(e, "name", &host.name);
            doc.set_attr(e, "ip", &host.ip);
            doc.set_attr(e, "switch", &host.switch);
        }
        if let Some(adv) = &self.adversary {
            let e = doc.add_element(root, "Adversary");
            doc.set_attr(e, "goal", &adv.goal);
            doc.set_attr(e, "budget", &adv.budget.to_string());
            doc.set_attr(e, "seed", &adv.seed.to_string());
        }
        for stage in &self.stages {
            write_stage(&mut doc, root, stage);
        }
        for objective in &self.objectives {
            write_objective(&mut doc, root, objective);
        }
        doc.to_xml()
    }
}

fn attr_req(el: &ElementRef<'_>, element: &str, name: &str) -> Result<String, ScenarioError> {
    el.attr(name)
        .map(str::to_string)
        .ok_or_else(|| err(format!("{element} missing {name}")))
}

fn parse_stage(el: &ElementRef<'_>) -> Result<Stage, ScenarioError> {
    let id = attr_req(el, "Stage", "id")?;
    let start = match (el.attr("t"), el.attr("after")) {
        (Some(_), Some(_)) => {
            return Err(err(format!("Stage {id:?} has both t= and after=")));
        }
        (None, Some(stage)) => StageStart::After {
            stage: stage.to_string(),
            delay_ms: el.attr_parse("delayMs").unwrap_or(0),
        },
        (t, None) => StageStart::At(match t {
            Some(raw) => raw
                .parse()
                .map_err(|_| err(format!("Stage {id:?} has unparsable t={raw:?}")))?,
            None => 0,
        }),
    };
    let action = match el.attr_or("kind", "") {
        "power" => {
            let target = attr_req(el, "Stage", "target")?;
            let action = match el.attr_or("action", "") {
                "openSwitch" => ScenarioAction::OpenSwitch(target),
                "closeSwitch" => ScenarioAction::CloseSwitch(target),
                "lineOutage" => ScenarioAction::LineOutage(target),
                "lineRestore" => ScenarioAction::LineRestore(target),
                "genLoss" => ScenarioAction::GenLoss(target),
                "genRestore" => ScenarioAction::GenRestore(target),
                "setLoad" => {
                    let value: f64 = el
                        .attr_parse("value")
                        .ok_or_else(|| err(format!("Stage {id:?} setLoad missing value")))?;
                    ScenarioAction::SetLoadP(target, value)
                }
                other => {
                    return Err(err(format!(
                        "Stage {id:?} has unknown power action {other:?}"
                    )))
                }
            };
            StageAction::Power(action)
        }
        "fci" => StageAction::Fci {
            host: attr_req(el, "Stage", "host")?,
            victim: attr_req(el, "Stage", "victim")?,
            item: attr_req(el, "Stage", "item")?,
            value: el.attr_parse("value").unwrap_or(false),
            interrogate: el.attr_parse("interrogate").unwrap_or(true),
        },
        "mitm" => StageAction::Mitm {
            host: attr_req(el, "Stage", "host")?,
            victim_a: attr_req(el, "Stage", "victimA")?,
            victim_b: attr_req(el, "Stage", "victimB")?,
            duration_ms: el.attr_parse("durationMs").unwrap_or(0),
            transform: parse_transform(el, &id)?,
        },
        "scan" => StageAction::Scan {
            host: attr_req(el, "Stage", "host")?,
            first: attr_req(el, "Stage", "first")?,
            last: attr_req(el, "Stage", "last")?,
            ports: el
                .attr_or("ports", "")
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| err(format!("Stage {id:?} has unparsable port {s:?}")))
                })
                .collect::<Result<Vec<u16>, _>>()?,
        },
        "link" => {
            let effect = match el.attr_or("action", "") {
                "down" => LinkEffect::Down,
                "up" => LinkEffect::Up,
                "delay" => LinkEffect::Delay {
                    latency_ms: el
                        .attr_parse("latencyMs")
                        .ok_or_else(|| err(format!("Stage {id:?} delay missing latencyMs")))?,
                },
                other => {
                    return Err(err(format!(
                        "Stage {id:?} has unknown link action {other:?}"
                    )))
                }
            };
            StageAction::Link {
                a: attr_req(el, "Stage", "a")?,
                b: attr_req(el, "Stage", "b")?,
                effect,
            }
        }
        "linkFault" => StageAction::LinkFault {
            a: attr_req(el, "Stage", "a")?,
            b: attr_req(el, "Stage", "b")?,
            fault: LinkFault {
                loss: el.attr_parse("loss").unwrap_or(0.0),
                corrupt: el.attr_parse("corrupt").unwrap_or(0.0),
                duplicate: el.attr_parse("duplicate").unwrap_or(0.0),
                jitter_ns: el.attr_parse::<u64>("jitterMs").unwrap_or(0) * 1_000_000,
                flap_period_ns: el.attr_parse::<u64>("flapPeriodMs").unwrap_or(0) * 1_000_000,
                flap_down_ns: el.attr_parse::<u64>("flapDownMs").unwrap_or(0) * 1_000_000,
            },
        },
        "crash" => StageAction::Crash {
            host: attr_req(el, "Stage", "host")?,
            restart_after_ms: el.attr_parse("restartAfterMs"),
        },
        "sensor" => {
            let fault = match el.attr_or("mode", "") {
                "stuck" => Some(SensorFault::Stuck),
                "drift" => Some(SensorFault::Drift {
                    per_sec: el
                        .attr_parse("perSec")
                        .ok_or_else(|| err(format!("Stage {id:?} drift missing perSec")))?,
                }),
                "clear" => None,
                other => {
                    return Err(err(format!(
                        "Stage {id:?} has unknown sensor mode {other:?}"
                    )))
                }
            };
            StageAction::Sensor {
                ied: attr_req(el, "Stage", "ied")?,
                key: attr_req(el, "Stage", "key")?,
                fault,
            }
        }
        other => return Err(err(format!("Stage {id:?} has unknown kind {other:?}"))),
    };
    Ok(Stage {
        id,
        start,
        action,
        pos: Pos::of(el),
    })
}

fn parse_transform(el: &ElementRef<'_>, id: &str) -> Result<TransformSpec, ScenarioError> {
    Ok(match el.attr_or("transform", "passThrough") {
        "passThrough" => TransformSpec::PassThrough,
        "scaleModbusRegisters" => TransformSpec::ScaleModbusRegisters(
            el.attr_parse("factor")
                .ok_or_else(|| err(format!("Stage {id:?} transform missing factor")))?,
        ),
        "setModbusRegisters" => TransformSpec::SetModbusRegisters(
            el.attr_parse("value")
                .ok_or_else(|| err(format!("Stage {id:?} transform missing value")))?,
        ),
        "scaleMmsFloats" => TransformSpec::ScaleMmsFloats(
            el.attr_parse("factor")
                .ok_or_else(|| err(format!("Stage {id:?} transform missing factor")))?,
        ),
        "drop" => TransformSpec::Drop,
        other => return Err(err(format!("Stage {id:?} has unknown transform {other:?}"))),
    })
}

fn parse_objective(el: &ElementRef<'_>) -> Result<Objective, ScenarioError> {
    let id = attr_req(el, "Objective", "id")?;
    let check = match el.attr_or("kind", "") {
        "breakerOpen" => Check::BreakerOpen {
            switch: attr_req(el, "Objective", "target")?,
        },
        "breakerClosed" => Check::BreakerClosed {
            switch: attr_req(el, "Objective", "target")?,
        },
        "scadaAlarm" => Check::ScadaAlarm {
            point: attr_req(el, "Objective", "point")?,
        },
        "iedTrip" => Check::IedTrip {
            ied: attr_req(el, "Objective", "ied")?,
        },
        "tagAbove" => Check::TagAbove {
            point: attr_req(el, "Objective", "point")?,
            value: el
                .attr_parse("value")
                .ok_or_else(|| err(format!("Objective {id:?} missing value")))?,
        },
        "tagBelow" => Check::TagBelow {
            point: attr_req(el, "Objective", "point")?,
            value: el
                .attr_parse("value")
                .ok_or_else(|| err(format!("Objective {id:?} missing value")))?,
        },
        "voltageBand" => Check::VoltageBand {
            bus: attr_req(el, "Objective", "bus")?,
            min_pu: el
                .attr_parse("min")
                .ok_or_else(|| err(format!("Objective {id:?} missing min")))?,
            max_pu: el
                .attr_parse("max")
                .ok_or_else(|| err(format!("Objective {id:?} missing max")))?,
            from_ms: el.attr_parse("fromMs").unwrap_or(0),
            to_ms: el
                .attr_parse("toMs")
                .ok_or_else(|| err(format!("Objective {id:?} missing toMs")))?,
        },
        other => return Err(err(format!("Objective {id:?} has unknown kind {other:?}"))),
    };
    let within_ms = if matches!(check, Check::VoltageBand { .. }) {
        0
    } else {
        el.attr_parse("withinMs")
            .ok_or_else(|| err(format!("Objective {id:?} missing withinMs")))?
    };
    Ok(Objective {
        id,
        points: el.attr_parse("points").unwrap_or(1),
        after: el.attr("after").map(str::to_string),
        within_ms,
        check,
        pos: Pos::of(el),
    })
}

fn write_stage(doc: &mut Document, root: sgcr_xml::NodeId, stage: &Stage) {
    let e = doc.add_element(root, "Stage");
    doc.set_attr(e, "id", &stage.id);
    match &stage.start {
        StageStart::At(t) => doc.set_attr(e, "t", &t.to_string()),
        StageStart::After { stage, delay_ms } => {
            doc.set_attr(e, "after", stage);
            if *delay_ms != 0 {
                doc.set_attr(e, "delayMs", &delay_ms.to_string());
            }
        }
    }
    doc.set_attr(e, "kind", stage.action.kind());
    match &stage.action {
        StageAction::Power(action) => {
            let (name, target, value) = match action {
                ScenarioAction::OpenSwitch(t) => ("openSwitch", t, None),
                ScenarioAction::CloseSwitch(t) => ("closeSwitch", t, None),
                ScenarioAction::LineOutage(t) => ("lineOutage", t, None),
                ScenarioAction::LineRestore(t) => ("lineRestore", t, None),
                ScenarioAction::GenLoss(t) => ("genLoss", t, None),
                ScenarioAction::GenRestore(t) => ("genRestore", t, None),
                ScenarioAction::SetLoadP(t, v) => ("setLoad", t, Some(*v)),
            };
            doc.set_attr(e, "action", name);
            doc.set_attr(e, "target", target);
            if let Some(v) = value {
                doc.set_attr(e, "value", &v.to_string());
            }
        }
        StageAction::Fci {
            host,
            victim,
            item,
            value,
            interrogate,
        } => {
            doc.set_attr(e, "host", host);
            doc.set_attr(e, "victim", victim);
            doc.set_attr(e, "item", item);
            doc.set_attr(e, "value", &value.to_string());
            doc.set_attr(e, "interrogate", &interrogate.to_string());
        }
        StageAction::Mitm {
            host,
            victim_a,
            victim_b,
            duration_ms,
            transform,
        } => {
            doc.set_attr(e, "host", host);
            doc.set_attr(e, "victimA", victim_a);
            doc.set_attr(e, "victimB", victim_b);
            if *duration_ms != 0 {
                doc.set_attr(e, "durationMs", &duration_ms.to_string());
            }
            match transform {
                TransformSpec::PassThrough => doc.set_attr(e, "transform", "passThrough"),
                TransformSpec::ScaleModbusRegisters(f) => {
                    doc.set_attr(e, "transform", "scaleModbusRegisters");
                    doc.set_attr(e, "factor", &f.to_string());
                }
                TransformSpec::SetModbusRegisters(v) => {
                    doc.set_attr(e, "transform", "setModbusRegisters");
                    doc.set_attr(e, "value", &v.to_string());
                }
                TransformSpec::ScaleMmsFloats(f) => {
                    doc.set_attr(e, "transform", "scaleMmsFloats");
                    doc.set_attr(e, "factor", &f.to_string());
                }
                TransformSpec::Drop => doc.set_attr(e, "transform", "drop"),
            }
        }
        StageAction::Scan {
            host,
            first,
            last,
            ports,
        } => {
            doc.set_attr(e, "host", host);
            doc.set_attr(e, "first", first);
            doc.set_attr(e, "last", last);
            let ports: Vec<String> = ports.iter().map(u16::to_string).collect();
            doc.set_attr(e, "ports", &ports.join(","));
        }
        StageAction::Link { a, b, effect } => {
            doc.set_attr(e, "a", a);
            doc.set_attr(e, "b", b);
            match effect {
                LinkEffect::Down => doc.set_attr(e, "action", "down"),
                LinkEffect::Up => doc.set_attr(e, "action", "up"),
                LinkEffect::Delay { latency_ms } => {
                    doc.set_attr(e, "action", "delay");
                    doc.set_attr(e, "latencyMs", &latency_ms.to_string());
                }
            }
        }
        StageAction::LinkFault { a, b, fault } => {
            doc.set_attr(e, "a", a);
            doc.set_attr(e, "b", b);
            if fault.loss > 0.0 {
                doc.set_attr(e, "loss", &fault.loss.to_string());
            }
            if fault.corrupt > 0.0 {
                doc.set_attr(e, "corrupt", &fault.corrupt.to_string());
            }
            if fault.duplicate > 0.0 {
                doc.set_attr(e, "duplicate", &fault.duplicate.to_string());
            }
            if fault.jitter_ns > 0 {
                doc.set_attr(e, "jitterMs", &(fault.jitter_ns / 1_000_000).to_string());
            }
            if fault.flap_period_ns > 0 {
                doc.set_attr(
                    e,
                    "flapPeriodMs",
                    &(fault.flap_period_ns / 1_000_000).to_string(),
                );
            }
            if fault.flap_down_ns > 0 {
                doc.set_attr(
                    e,
                    "flapDownMs",
                    &(fault.flap_down_ns / 1_000_000).to_string(),
                );
            }
        }
        StageAction::Crash {
            host,
            restart_after_ms,
        } => {
            doc.set_attr(e, "host", host);
            if let Some(ms) = restart_after_ms {
                doc.set_attr(e, "restartAfterMs", &ms.to_string());
            }
        }
        StageAction::Sensor { ied, key, fault } => {
            doc.set_attr(e, "ied", ied);
            doc.set_attr(e, "key", key);
            match fault {
                Some(SensorFault::Stuck) => doc.set_attr(e, "mode", "stuck"),
                Some(SensorFault::Drift { per_sec }) => {
                    doc.set_attr(e, "mode", "drift");
                    doc.set_attr(e, "perSec", &per_sec.to_string());
                }
                None => doc.set_attr(e, "mode", "clear"),
            }
        }
    }
}

fn write_objective(doc: &mut Document, root: sgcr_xml::NodeId, objective: &Objective) {
    let e = doc.add_element(root, "Objective");
    doc.set_attr(e, "id", &objective.id);
    match &objective.check {
        Check::BreakerOpen { switch } => {
            doc.set_attr(e, "kind", "breakerOpen");
            doc.set_attr(e, "target", switch);
        }
        Check::BreakerClosed { switch } => {
            doc.set_attr(e, "kind", "breakerClosed");
            doc.set_attr(e, "target", switch);
        }
        Check::ScadaAlarm { point } => {
            doc.set_attr(e, "kind", "scadaAlarm");
            doc.set_attr(e, "point", point);
        }
        Check::IedTrip { ied } => {
            doc.set_attr(e, "kind", "iedTrip");
            doc.set_attr(e, "ied", ied);
        }
        Check::TagAbove { point, value } => {
            doc.set_attr(e, "kind", "tagAbove");
            doc.set_attr(e, "point", point);
            doc.set_attr(e, "value", &value.to_string());
        }
        Check::TagBelow { point, value } => {
            doc.set_attr(e, "kind", "tagBelow");
            doc.set_attr(e, "point", point);
            doc.set_attr(e, "value", &value.to_string());
        }
        Check::VoltageBand {
            bus,
            min_pu,
            max_pu,
            from_ms,
            to_ms,
        } => {
            doc.set_attr(e, "kind", "voltageBand");
            doc.set_attr(e, "bus", bus);
            doc.set_attr(e, "min", &min_pu.to_string());
            doc.set_attr(e, "max", &max_pu.to_string());
            doc.set_attr(e, "fromMs", &from_ms.to_string());
            doc.set_attr(e, "toMs", &to_ms.to_string());
        }
    }
    if let Some(stage) = &objective.after {
        doc.set_attr(e, "after", stage);
    }
    if !matches!(objective.check, Check::VoltageBand { .. }) {
        doc.set_attr(e, "withinMs", &objective.within_ms.to_string());
    }
    if objective.points != 1 {
        doc.set_attr(e, "points", &objective.points.to_string());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<Scenario name="demo" description="two-plane demo" durationMs="8000" faultSeed="42" staleMs="1500">
  <Host name="malware-host" ip="10.0.1.66" switch="GenBus"/>
  <Adversary goal="breakerOpen:EPIC/CB_GEN" budget="4" seed="7"/>
  <Stage id="recon" t="500" kind="scan" host="malware-host" first="10.0.1.11" last="10.0.1.14" ports="102,502"/>
  <Stage id="strike" after="recon" delayMs="500" kind="fci" host="malware-host" victim="GIED1" item="GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal" value="false" interrogate="true"/>
  <Stage id="shed" t="3000" kind="power" action="setLoad" target="EPIC/MicroLoad" value="0.2"/>
  <Stage id="lag" t="6000" kind="link" a="SCADA" b="ControlBus" action="delay" latencyMs="20"/>
  <Stage id="spoof" t="4000" kind="mitm" host="malware-host" victimA="SCADA" victimB="TIED1" durationMs="4000" transform="scaleMmsFloats" factor="10"/>
  <Stage id="lossy" t="1000" kind="linkFault" a="SCADA" b="ControlBus" loss="0.3" jitterMs="5" flapPeriodMs="1000" flapDownMs="200"/>
  <Stage id="crash-ied" t="2000" kind="crash" host="GIED1" restartAfterMs="1500"/>
  <Stage id="stuck-ct" t="2500" kind="sensor" ied="GIED1" key="meas/EPIC/branch/GenLine/i_ka" mode="stuck"/>
  <Objective id="gen-open" kind="breakerOpen" target="EPIC/CB_GEN" after="strike" withinMs="1000" points="2"/>
  <Objective id="alarm" kind="scadaAlarm" point="GenProt_trip" withinMs="6000"/>
  <Objective id="band" kind="voltageBand" bus="EPIC/LV/GenBay/CN_GEN" min="0.85" max="1.1" fromMs="0" toMs="2000"/>
  <Objective id="seen" kind="tagAbove" point="MicroFeeder_MW" value="0.05" after="spoof" withinMs="4000"/>
</Scenario>"#;

    #[test]
    fn parse_sample() {
        let s = Scenario::parse(SAMPLE).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.duration_ms, 8000);
        assert_eq!(s.fault_seed, Some(42));
        assert_eq!(s.stale_ms, Some(1500));
        assert_eq!(s.hosts.len(), 1);
        assert_eq!(
            s.adversary,
            Some(Adversary {
                goal: "breakerOpen:EPIC/CB_GEN".into(),
                budget: 4,
                seed: 7,
                pos: s.adversary.as_ref().map(|a| a.pos).unwrap_or_default(),
            })
        );
        assert!(s.adversary.as_ref().is_some_and(|a| a.pos.line > 0));
        assert_eq!(s.stages.len(), 8);
        assert_eq!(s.objectives.len(), 4);
        assert_eq!(
            s.stages[1].start,
            StageStart::After {
                stage: "recon".into(),
                delay_ms: 500
            }
        );
        assert!(matches!(
            &s.stages[2].action,
            StageAction::Power(ScenarioAction::SetLoadP(t, v)) if t == "EPIC/MicroLoad" && *v == 0.2
        ));
        assert_eq!(s.objectives[0].points, 2);
        assert_eq!(s.objectives[1].after, None);
        assert_eq!(
            s.stages[5].action,
            StageAction::LinkFault {
                a: "SCADA".into(),
                b: "ControlBus".into(),
                fault: LinkFault {
                    loss: 0.3,
                    jitter_ns: 5_000_000,
                    flap_period_ns: 1_000_000_000,
                    flap_down_ns: 200_000_000,
                    ..LinkFault::default()
                },
            }
        );
        assert_eq!(
            s.stages[6].action,
            StageAction::Crash {
                host: "GIED1".into(),
                restart_after_ms: Some(1500),
            }
        );
        assert_eq!(
            s.stages[7].action,
            StageAction::Sensor {
                ied: "GIED1".into(),
                key: "meas/EPIC/branch/GenLine/i_ka".into(),
                fault: Some(SensorFault::Stuck),
            }
        );
        // Positions recorded for lint spans.
        assert!(s.stages[0].pos.line > 0);
        assert!(s.objectives[0].pos.line > 0);
    }

    #[test]
    fn xml_roundtrip() {
        let s = Scenario::parse(SAMPLE).unwrap();
        let text = s.to_xml();
        let reparsed = Scenario::parse(&text).unwrap();
        // Positions differ between the hand-written and generated XML;
        // compare with positions cleared.
        let strip = |mut s: Scenario| {
            for h in &mut s.hosts {
                h.pos = Pos::default();
            }
            if let Some(a) = &mut s.adversary {
                a.pos = Pos::default();
            }
            for st in &mut s.stages {
                st.pos = Pos::default();
            }
            for o in &mut s.objectives {
                o.pos = Pos::default();
            }
            s
        };
        assert_eq!(strip(reparsed), strip(s));
    }

    #[test]
    fn errors() {
        assert!(Scenario::parse("<Nope/>").is_err());
        assert!(Scenario::parse(
            r#"<Scenario durationMs="1"><Stage id="x" kind="teleport"/></Scenario>"#
        )
        .is_err());
        assert!(Scenario::parse(r#"<Scenario durationMs="1"><Stage id="x" t="1" after="y" kind="power" action="openSwitch" target="S/CB"/></Scenario>"#).is_err());
        assert!(Scenario::parse(r#"<Scenario durationMs="1"><Objective id="o" kind="breakerOpen" target="S/CB"/></Scenario>"#).is_err());
        assert!(Scenario::parse(
            r#"<Scenario durationMs="1"><Stage id="x" kind="sensor" ied="A" key="k" mode="melt"/></Scenario>"#
        )
        .is_err());
        assert!(Scenario::parse(
            r#"<Scenario durationMs="1"><Stage id="x" kind="sensor" ied="A" key="k" mode="drift"/></Scenario>"#
        )
        .is_err());
        assert!(Scenario::parse(
            r#"<Scenario><Stage id="x" kind="power" action="openSwitch" target="S/CB"/></Scenario>"#
        )
        .is_err());
        // <Adversary> needs a goal, and only one declaration is allowed.
        assert!(
            Scenario::parse(r#"<Scenario durationMs="1"><Adversary budget="4"/></Scenario>"#)
                .is_err()
        );
        assert!(Scenario::parse(
            r#"<Scenario durationMs="1"><Adversary goal="a:b"/><Adversary goal="c:d"/></Scenario>"#
        )
        .is_err());
    }

    #[test]
    fn describe_is_human_readable() {
        let s = Scenario::parse(SAMPLE).unwrap();
        assert_eq!(
            s.objectives[0].describe(),
            "breaker EPIC/CB_GEN opens within 1000 ms of stage strike"
        );
        assert_eq!(
            s.objectives[2].describe(),
            "bus EPIC/LV/GenBay/CN_GEN voltage stays within [0.85, 1.1] pu from 0 to 2000 ms"
        );
    }
}
