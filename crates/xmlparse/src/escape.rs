//! Escaping and entity expansion for XML character data and attributes.

/// Escapes a string for use as XML character data (`<`, `&`, and `>` for
/// robustness against `]]>`).
///
/// # Examples
///
/// ```
/// assert_eq!(sgcr_xml::escape_text("a < b && c"), "a &lt; b &amp;&amp; c");
/// ```
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a string for use inside a double-quoted XML attribute value.
///
/// # Examples
///
/// ```
/// assert_eq!(sgcr_xml::escape_attr(r#"say "hi"<now>"#), "say &quot;hi&quot;&lt;now&gt;");
/// ```
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    out
}

/// Expands the five predefined entities and numeric character references.
///
/// Returns `None` if the string contains a malformed or unknown reference.
///
/// # Examples
///
/// ```
/// assert_eq!(sgcr_xml::unescape("1 &lt; 2 &#65;"), Some("1 < 2 A".to_string()));
/// assert_eq!(sgcr_xml::unescape("&bogus;"), None);
/// ```
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let end = rest.find(';')?;
        let name = &rest[..end];
        out.push(expand_entity(name)?);
        // Skip the entity body plus the trailing ';'.
        for _ in 0..end + 1 {
            chars.next();
        }
    }
    Some(out)
}

/// Expands a single entity body (without `&` and `;`) to its character.
pub(crate) fn expand_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let code =
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip_text() {
        let original = "a < b > c & \"d\" 'e'";
        assert_eq!(unescape(&escape_text(original)).unwrap(), original);
    }

    #[test]
    fn escape_roundtrip_attr() {
        let original = "line1\nline2\t<&\">";
        assert_eq!(unescape(&escape_attr(original)).unwrap(), original);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#x41;&#66;"), Some("AB".to_string()));
    }

    #[test]
    fn invalid_references() {
        assert_eq!(unescape("&#xZZ;"), None);
        assert_eq!(unescape("&unterminated"), None);
        assert_eq!(unescape("&#1114112;"), None); // beyond char::MAX
    }
}
