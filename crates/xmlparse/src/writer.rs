//! Serialization of a [`Document`] back to XML text.

use crate::dom::{Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};

/// Options controlling XML serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOptions {
    /// Number of spaces per indentation level; `None` writes compact output
    /// with no inter-element whitespace.
    pub indent: Option<usize>,
    /// Whether to emit `<?xml version="1.0" encoding="UTF-8"?>`.
    pub declaration: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            indent: Some(2),
            declaration: true,
        }
    }
}

impl WriteOptions {
    /// Compact output: no declaration, no indentation.
    pub fn compact() -> Self {
        WriteOptions {
            indent: None,
            declaration: false,
        }
    }
}

pub(crate) fn write_document(doc: &Document, options: &WriteOptions) -> String {
    let mut out = String::new();
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    for &id in &doc.prolog {
        write_node(doc, id, 0, options, &mut out);
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    write_node(doc, doc.root, 0, options, &mut out);
    if options.indent.is_some() {
        out.push('\n');
    }
    out
}

fn has_element_children(doc: &Document, id: NodeId) -> bool {
    doc.node(id).children().iter().any(|&c| {
        matches!(
            doc.node(c).kind(),
            NodeKind::Element { .. }
                | NodeKind::Comment(_)
                | NodeKind::ProcessingInstruction { .. }
        )
    })
}

fn write_node(doc: &Document, id: NodeId, depth: usize, options: &WriteOptions, out: &mut String) {
    match doc.node(id).kind() {
        NodeKind::Element { name, attributes } => {
            out.push('<');
            out.push_str(name);
            for a in attributes {
                out.push(' ');
                out.push_str(&a.name);
                out.push_str("=\"");
                out.push_str(&escape_attr(&a.value));
                out.push('"');
            }
            let children = doc.node(id).children();
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let block = has_element_children(doc, id);
            for &child in children {
                if block {
                    if let Some(n) = options.indent {
                        out.push('\n');
                        out.push_str(&" ".repeat(n * (depth + 1)));
                    }
                }
                write_node(doc, child, depth + 1, options, out);
            }
            if block {
                if let Some(n) = options.indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(n * depth));
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Cdata(t) => {
            out.push_str("<![CDATA[");
            out.push_str(t);
            out.push_str("]]>");
        }
        NodeKind::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Document, WriteOptions};

    #[test]
    fn roundtrip_simple() {
        let src = r#"<a x="1"><b>text &amp; more</b><c/></a>"#;
        let doc = Document::parse(src).unwrap();
        let emitted = doc.to_xml_with(&WriteOptions::compact());
        let redoc = Document::parse(&emitted).unwrap();
        assert_eq!(doc, redoc);
    }

    #[test]
    fn pretty_output_is_indented() {
        let doc = Document::parse("<a><b><c/></b></a>").unwrap();
        let pretty = doc.to_xml();
        assert!(pretty.contains("\n  <b>"));
        assert!(pretty.contains("\n    <c/>"));
        assert!(pretty.starts_with("<?xml"));
    }

    #[test]
    fn attribute_escaping_roundtrip() {
        let mut doc = Document::new("a");
        let root = doc.root_id();
        doc.set_attr(root, "v", "a<b>&\"c\"\nd");
        let text = doc.to_xml();
        let redoc = Document::parse(&text).unwrap();
        assert_eq!(redoc.root_element().attr("v"), Some("a<b>&\"c\"\nd"));
    }

    #[test]
    fn cdata_preserved() {
        let src = "<a><![CDATA[x < y && z]]></a>";
        let doc = Document::parse(src).unwrap();
        let emitted = doc.to_xml_with(&WriteOptions::compact());
        assert!(emitted.contains("<![CDATA[x < y && z]]>"));
    }
}
