#![warn(missing_docs)]

//! # sgcr-xml
//!
//! A self-contained XML 1.0 parser, DOM, and writer used throughout the SG-ML
//! toolchain to read and emit IEC 61850 SCL files, IEC 61131-3 PLCopen XML,
//! and the SG-ML supplementary configuration schemas.
//!
//! The crate deliberately implements the subset of XML that configuration
//! schemas require: elements, attributes, namespace declarations and prefix
//! resolution, character data, CDATA sections, comments, processing
//! instructions, the XML declaration, the five predefined entities, and
//! numeric character references. DTDs are tolerated (skipped), not processed.
//!
//! # Examples
//!
//! ```
//! use sgcr_xml::Document;
//!
//! # fn main() -> Result<(), sgcr_xml::XmlError> {
//! let doc = Document::parse(r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
//!     <Header id="demo" version="1"/>
//! </SCL>"#)?;
//! let root = doc.root_element();
//! assert_eq!(root.name(), "SCL");
//! let header = root.child("Header").expect("header present");
//! assert_eq!(header.attr("id"), Some("demo"));
//! # Ok(())
//! # }
//! ```

mod dom;
mod error;
mod escape;
mod parser;
mod writer;

pub use dom::{Attribute, Document, ElementRef, Node, NodeId, NodeKind, TextPosition};
pub use error::{XmlError, XmlErrorKind};
pub use escape::{escape_attr, escape_text, unescape};
pub use writer::WriteOptions;
