//! Recursive-descent XML parser producing a [`Document`].

use crate::dom::{Attribute, Document, Node, NodeId, NodeKind, TextPosition};
use crate::error::{XmlError, XmlErrorKind};
use crate::escape::expand_entity;

struct Cursor<'a> {
    input: &'a str,
    /// Byte offset into `input`.
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor {
            input,
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn bump_str(&mut self, s: &str) {
        debug_assert!(self.starts_with(s));
        for _ in s.chars() {
            self.bump();
        }
    }

    fn position(&self) -> TextPosition {
        TextPosition {
            line: self.line,
            column: self.column,
        }
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.line, self.column)
    }

    fn eof_err(&self) -> XmlError {
        self.err(XmlErrorKind::UnexpectedEof)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    /// Consumes until `delim` is found; returns the skipped text (exclusive).
    fn take_until(&mut self, delim: &str) -> Result<&'a str, XmlError> {
        let start = self.pos;
        match self.rest().find(delim) {
            Some(rel) => {
                let end = start + rel;
                while self.pos < end {
                    self.bump();
                }
                self.bump_str(delim);
                Ok(&self.input[start..end])
            }
            None => Err(self.eof_err()),
        }
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')
}

fn parse_name(cur: &mut Cursor<'_>) -> Result<String, XmlError> {
    match cur.peek() {
        Some(c) if is_name_start(c) => {}
        Some(c) => return Err(cur.err(XmlErrorKind::UnexpectedChar(c))),
        None => return Err(cur.eof_err()),
    }
    let start = cur.pos;
    while matches!(cur.peek(), Some(c) if is_name_char(c)) {
        cur.bump();
    }
    Ok(cur.input[start..cur.pos].to_string())
}

/// Expands entity and character references within already-extracted raw text.
fn expand_references(cur: &Cursor<'_>, raw: &str) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after
            .find(';')
            .ok_or_else(|| cur.err(XmlErrorKind::Malformed("entity reference".into())))?;
        let name = &after[..semi];
        let c = expand_entity(name)
            .ok_or_else(|| cur.err(XmlErrorKind::UnknownEntity(name.to_string())))?;
        out.push(c);
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

fn parse_attributes(cur: &mut Cursor<'_>) -> Result<Vec<Attribute>, XmlError> {
    let mut attrs: Vec<Attribute> = Vec::new();
    loop {
        cur.skip_ws();
        match cur.peek() {
            Some('/') | Some('>') | Some('?') | None => return Ok(attrs),
            Some(c) if is_name_start(c) => {}
            Some(c) => return Err(cur.err(XmlErrorKind::UnexpectedChar(c))),
        }
        let name = parse_name(cur)?;
        cur.skip_ws();
        if cur.peek() != Some('=') {
            return Err(cur.err(XmlErrorKind::Malformed(format!(
                "attribute {name:?} missing '='"
            ))));
        }
        cur.bump();
        cur.skip_ws();
        let quote = match cur.peek() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => return Err(cur.err(XmlErrorKind::UnexpectedChar(c))),
            None => return Err(cur.eof_err()),
        };
        cur.bump();
        let raw = cur.take_until(&quote.to_string())?;
        let value = expand_references(cur, raw)?;
        if attrs.iter().any(|a| a.name == name) {
            return Err(cur.err(XmlErrorKind::DuplicateAttribute(name)));
        }
        attrs.push(Attribute { name, value });
    }
}

enum Misc {
    Comment(String),
    Pi { target: String, data: String },
    Nothing,
}

/// Parses `<!-- -->`, `<? ?>`, or `<!DOCTYPE …>` when positioned at `<`.
fn parse_misc(cur: &mut Cursor<'_>) -> Result<Option<Misc>, XmlError> {
    if cur.starts_with("<!--") {
        cur.bump_str("<!--");
        let text = cur.take_until("-->")?;
        return Ok(Some(Misc::Comment(text.to_string())));
    }
    if cur.starts_with("<?") {
        cur.bump_str("<?");
        let target = parse_name(cur)?;
        cur.skip_ws();
        let data = cur.take_until("?>")?;
        // The XML declaration is consumed but not stored as a PI node.
        if target.eq_ignore_ascii_case("xml") {
            return Ok(Some(Misc::Nothing));
        }
        return Ok(Some(Misc::Pi {
            target,
            data: data.trim_end().to_string(),
        }));
    }
    if cur.starts_with("<!DOCTYPE") {
        // Skip the doctype, matching nested [ ... ] internal subsets.
        cur.bump_str("<!DOCTYPE");
        let mut depth = 0i32;
        loop {
            match cur.bump() {
                Some('[') => depth += 1,
                Some(']') => depth -= 1,
                Some('>') if depth <= 0 => break,
                Some(_) => {}
                None => return Err(cur.eof_err()),
            }
        }
        return Ok(Some(Misc::Nothing));
    }
    Ok(None)
}

/// Parses one complete element (opening tag through matching end tag),
/// appending all nodes into `doc`. Returns the element's id.
fn parse_element(
    cur: &mut Cursor<'_>,
    doc: &mut Document,
    parent: Option<NodeId>,
) -> Result<NodeId, XmlError> {
    debug_assert_eq!(cur.peek(), Some('<'));
    let pos = cur.position();
    cur.bump();
    let name = parse_name(cur)?;
    let attributes = parse_attributes(cur)?;
    let id = doc.push_node_at(
        Node {
            kind: NodeKind::Element {
                name: name.clone(),
                attributes,
            },
            parent,
            children: Vec::new(),
        },
        pos,
    );

    match cur.peek() {
        Some('/') => {
            cur.bump();
            if cur.peek() != Some('>') {
                return Err(cur.err(XmlErrorKind::Malformed("empty-element tag".into())));
            }
            cur.bump();
            return Ok(id);
        }
        Some('>') => {
            cur.bump();
        }
        Some(c) => return Err(cur.err(XmlErrorKind::UnexpectedChar(c))),
        None => return Err(cur.eof_err()),
    }

    // Content until matching end tag.
    loop {
        if cur.starts_with("</") {
            cur.bump_str("</");
            let close = parse_name(cur)?;
            cur.skip_ws();
            if cur.peek() != Some('>') {
                return Err(cur.err(XmlErrorKind::Malformed("end tag".into())));
            }
            cur.bump();
            if close != name {
                return Err(cur.err(XmlErrorKind::MismatchedTag { open: name, close }));
            }
            return Ok(id);
        }
        if cur.starts_with("<![CDATA[") {
            let pos = cur.position();
            cur.bump_str("<![CDATA[");
            let data = cur.take_until("]]>")?.to_string();
            let child = doc.push_node_at(
                Node {
                    kind: NodeKind::Cdata(data),
                    parent: Some(id),
                    children: Vec::new(),
                },
                pos,
            );
            doc.nodes[id.index()].children.push(child);
            continue;
        }
        let misc_pos = cur.position();
        match parse_misc(cur)? {
            Some(Misc::Comment(text)) => {
                let child = doc.push_node_at(
                    Node {
                        kind: NodeKind::Comment(text),
                        parent: Some(id),
                        children: Vec::new(),
                    },
                    misc_pos,
                );
                doc.nodes[id.index()].children.push(child);
                continue;
            }
            Some(Misc::Pi { target, data }) => {
                let child = doc.push_node_at(
                    Node {
                        kind: NodeKind::ProcessingInstruction { target, data },
                        parent: Some(id),
                        children: Vec::new(),
                    },
                    misc_pos,
                );
                doc.nodes[id.index()].children.push(child);
                continue;
            }
            Some(Misc::Nothing) => continue,
            None => {}
        }
        match cur.peek() {
            Some('<') => {
                let child = parse_element(cur, doc, Some(id))?;
                doc.nodes[id.index()].children.push(child);
            }
            Some(_) => {
                // Character data up to the next markup.
                let pos = cur.position();
                let start = cur.pos;
                while matches!(cur.peek(), Some(c) if c != '<') {
                    cur.bump();
                }
                let raw = &cur.input[start..cur.pos];
                let text = expand_references(cur, raw)?;
                // Whitespace-only runs between elements are not stored; the
                // pretty-printer regenerates layout. Mixed content keeps its
                // significant text.
                if !text.trim().is_empty() {
                    let child = doc.push_node_at(
                        Node {
                            kind: NodeKind::Text(text),
                            parent: Some(id),
                            children: Vec::new(),
                        },
                        pos,
                    );
                    doc.nodes[id.index()].children.push(child);
                }
            }
            None => return Err(cur.eof_err()),
        }
    }
}

pub(crate) fn parse_document(input: &str) -> Result<Document, XmlError> {
    // Strip a UTF-8 BOM if present.
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    let mut cur = Cursor::new(input);
    let mut doc = Document {
        nodes: Vec::new(),
        root: NodeId(0),
        prolog: Vec::new(),
        positions: Vec::new(),
    };
    let mut prolog: Vec<NodeId> = Vec::new();

    // Prolog: declaration, comments, PIs, doctype.
    loop {
        cur.skip_ws();
        if cur.peek().is_none() {
            return Err(cur.err(XmlErrorKind::InvalidDocumentStructure(
                "no root element".into(),
            )));
        }
        let pos = cur.position();
        match parse_misc(&mut cur)? {
            Some(Misc::Comment(text)) => {
                let id = doc.push_node_at(
                    Node {
                        kind: NodeKind::Comment(text),
                        parent: None,
                        children: Vec::new(),
                    },
                    pos,
                );
                prolog.push(id);
            }
            Some(Misc::Pi { target, data }) => {
                let id = doc.push_node_at(
                    Node {
                        kind: NodeKind::ProcessingInstruction { target, data },
                        parent: None,
                        children: Vec::new(),
                    },
                    pos,
                );
                prolog.push(id);
            }
            Some(Misc::Nothing) => {}
            None => break,
        }
    }

    if cur.peek() != Some('<') {
        let c = cur.peek().unwrap_or('\0');
        return Err(cur.err(XmlErrorKind::UnexpectedChar(c)));
    }
    let root = parse_element(&mut cur, &mut doc, None)?;
    doc.root = root;
    doc.prolog = prolog;

    // Trailing misc only.
    loop {
        cur.skip_ws();
        if cur.peek().is_none() {
            break;
        }
        match parse_misc(&mut cur)? {
            Some(_) => continue,
            None => {
                return Err(cur.err(XmlErrorKind::InvalidDocumentStructure(
                    "content after root element".into(),
                )))
            }
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use crate::{Document, XmlErrorKind};

    #[test]
    fn minimal() {
        let doc = Document::parse("<a/>").unwrap();
        assert_eq!(doc.root_element().name(), "a");
    }

    #[test]
    fn declaration_comment_doctype() {
        let doc = Document::parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- hi -->\n<!DOCTYPE a [ <!ELEMENT a EMPTY> ]>\n<a/>",
        )
        .unwrap();
        assert_eq!(doc.root_element().name(), "a");
    }

    #[test]
    fn nested_with_text_and_entities() {
        let doc = Document::parse("<a><b>1 &lt; 2</b><b>x&amp;y</b></a>").unwrap();
        let bs = doc.root_element().children_named("b");
        assert_eq!(bs[0].text(), "1 < 2");
        assert_eq!(bs[1].text(), "x&y");
    }

    #[test]
    fn cdata() {
        let doc = Document::parse("<a><![CDATA[if x < 1 && y > 2]]></a>").unwrap();
        assert_eq!(doc.root_element().text(), "if x < 1 && y > 2");
    }

    #[test]
    fn attributes_single_and_double_quotes() {
        let doc = Document::parse(r#"<a x="1" y='two words' z="a&amp;b"/>"#).unwrap();
        let r = doc.root_element();
        assert_eq!(r.attr("x"), Some("1"));
        assert_eq!(r.attr("y"), Some("two words"));
        assert_eq!(r.attr("z"), Some("a&b"));
    }

    #[test]
    fn mismatched_tag_rejected() {
        let err = Document::parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Document::parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = Document::parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn truncated_input_rejected() {
        for s in ["<a", "<a>", "<a x=", "<a><!-- ", "<a><![CDATA[x", "<a>text"] {
            let err = Document::parse(s).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    XmlErrorKind::UnexpectedEof | XmlErrorKind::Malformed(_)
                ),
                "input {s:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn content_after_root_rejected() {
        let err = Document::parse("<a/><b/>").unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::InvalidDocumentStructure(_)
        ));
    }

    #[test]
    fn error_position_reported() {
        let err = Document::parse("<a>\n  <b x=></b>\n</a>").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.column() > 1);
    }

    #[test]
    fn node_positions_reported() {
        let doc = Document::parse(
            "<?xml version=\"1.0\"?>\n<SCL>\n  <Header id=\"h\"/>\n  <IED name=\"P1\"/> <IED name=\"P2\"/>\n</SCL>",
        )
        .unwrap();
        let root = doc.root_element();
        assert_eq!(root.position().map(|p| (p.line, p.column)), Some((2, 1)));
        let header = root.child("Header").unwrap();
        assert_eq!(header.line(), Some(3));
        assert_eq!(header.column(), Some(3));
        let ieds = root.children_named("IED");
        assert_eq!(ieds[0].position().map(|p| (p.line, p.column)), Some((4, 3)));
        assert_eq!(
            ieds[1].position().map(|p| (p.line, p.column)),
            Some((4, 20))
        );
    }

    #[test]
    fn built_nodes_have_no_position() {
        let mut doc = Document::new("a");
        let root = doc.root_id();
        let b = doc.add_element(root, "b");
        assert_eq!(doc.position(root), None);
        assert_eq!(doc.position(b), None);
    }

    #[test]
    fn positions_ignored_by_equality() {
        let a = Document::parse("<a><b/></a>").unwrap();
        let b = Document::parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bom_is_stripped() {
        let doc = Document::parse("\u{feff}<a/>").unwrap();
        assert_eq!(doc.root_element().name(), "a");
    }

    #[test]
    fn processing_instruction_in_content() {
        let doc = Document::parse("<a><?target some data?></a>").unwrap();
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn whitespace_only_text_dropped_mixed_kept() {
        let doc = Document::parse("<a>\n  <b/>\n  tail\n</a>").unwrap();
        let root = doc.root_element();
        // one element child + one significant text child
        assert_eq!(root.child_elements().count(), 1);
        assert!(root.text().contains("tail"));
    }
}
