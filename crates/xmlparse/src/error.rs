//! Error type for XML parsing.

use std::fmt;

/// The category of an [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that is not allowed at this position.
    UnexpectedChar(char),
    /// An end tag did not match the open element.
    MismatchedTag {
        /// The element that was open.
        open: String,
        /// The end-tag name actually found.
        close: String,
    },
    /// A construct (tag name, attribute, entity, …) is malformed.
    Malformed(String),
    /// A named entity other than the five predefined ones.
    UnknownEntity(String),
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// The document has no root element, or trailing content after it.
    InvalidDocumentStructure(String),
    /// A namespace prefix could not be resolved.
    UnboundPrefix(String),
}

/// An error produced while parsing an XML document, carrying the 1-based
/// line and column where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    line: u32,
    column: u32,
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, line: u32, column: u32) -> Self {
        XmlError { kind, line, column }
    }

    /// The category of the error.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// 1-based line where the error was detected.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based column where the error was detected.
    pub fn column(&self) -> u32 {
        self.column
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input")?,
            XmlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}")?,
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(f, "mismatched end tag </{close}> for element <{open}>")?
            }
            XmlErrorKind::Malformed(what) => write!(f, "malformed {what}")?,
            XmlErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};")?,
            XmlErrorKind::DuplicateAttribute(name) => write!(f, "duplicate attribute {name:?}")?,
            XmlErrorKind::InvalidDocumentStructure(what) => {
                write!(f, "invalid document structure: {what}")?
            }
            XmlErrorKind::UnboundPrefix(p) => write!(f, "unbound namespace prefix {p:?}")?,
        }
        write!(f, " at line {}, column {}", self.line, self.column)
    }
}

impl std::error::Error for XmlError {}
