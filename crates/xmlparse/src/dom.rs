//! Arena-based DOM: [`Document`], [`Node`], and the [`ElementRef`] query API.

use crate::error::XmlError;
use crate::writer::WriteOptions;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single attribute: qualified name (as written, possibly prefixed) and value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written in the document (e.g. `xsi:type`).
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

/// The payload of a [`Node`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a (possibly prefixed) name and attributes.
    Element {
        /// Qualified name as written (e.g. `scl:Header`).
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// Character data (entity references already expanded).
    Text(String),
    /// A CDATA section's raw contents.
    Cdata(String),
    /// A comment's contents (without `<!--`/`-->`).
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// PI target (e.g. `xml-stylesheet`).
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

/// One node in the document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

impl Node {
    /// The node's payload.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The node's parent, if any (the root element has none).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Child node ids in document order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }
}

/// Line/column (both 1-based) where a node's markup starts in parsed source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TextPosition {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

/// A parsed or programmatically built XML document.
///
/// Nodes are stored in an arena and addressed by [`NodeId`]; the convenience
/// wrapper [`ElementRef`] provides ergonomic read-only traversal.
#[derive(Debug, Clone, Eq)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    /// Leading comments / PIs that appear before the root element.
    pub(crate) prolog: Vec<NodeId>,
    /// Source position per node, parallel to `nodes`; `None` for nodes built
    /// programmatically rather than parsed.
    pub(crate) positions: Vec<Option<TextPosition>>,
}

/// Positions are metadata about where markup happened to sit in one source
/// rendering; two documents with identical structure and content are equal
/// regardless of original layout (write → reparse must round-trip).
impl PartialEq for Document {
    fn eq(&self, other: &Document) -> bool {
        self.nodes == other.nodes && self.root == other.root && self.prolog == other.prolog
    }
}

impl Document {
    /// Parses an XML document from a string.
    ///
    /// # Errors
    ///
    /// Returns an [`XmlError`] with line/column information when the input is
    /// not well-formed.
    ///
    /// # Examples
    ///
    /// ```
    /// let doc = sgcr_xml::Document::parse("<a><b x=\"1\"/></a>")?;
    /// assert_eq!(doc.root_element().name(), "a");
    /// # Ok::<(), sgcr_xml::XmlError>(())
    /// ```
    pub fn parse(input: &str) -> Result<Document, XmlError> {
        crate::parser::parse_document(input)
    }

    /// Creates a new document whose root element has the given name.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut doc = sgcr_xml::Document::new("SCL");
    /// let root = doc.root_id();
    /// doc.set_attr(root, "version", "2007");
    /// assert!(doc.to_xml().contains("version=\"2007\""));
    /// ```
    pub fn new(root_name: &str) -> Document {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Element {
                    name: root_name.to_string(),
                    attributes: Vec::new(),
                },
                parent: None,
                children: Vec::new(),
            }],
            root: NodeId(0),
            prolog: Vec::new(),
            positions: vec![None],
        }
    }

    /// Id of the root element.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// Read-only reference to the root element.
    pub fn root_element(&self) -> ElementRef<'_> {
        ElementRef {
            doc: self,
            id: self.root,
        }
    }

    /// Read-only reference to an arbitrary node known to be an element.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to an element node.
    pub fn element(&self, id: NodeId) -> ElementRef<'_> {
        assert!(
            matches!(self.nodes[id.index()].kind, NodeKind::Element { .. }),
            "node {id:?} is not an element"
        );
        ElementRef { doc: self, id }
    }

    /// The node stored at `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the arena (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds only the root element and nothing else.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    pub(crate) fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.positions.push(None);
        id
    }

    pub(crate) fn push_node_at(&mut self, node: Node, pos: TextPosition) -> NodeId {
        let id = self.push_node(node);
        self.positions[id.index()] = Some(pos);
        id
    }

    /// Where `id`'s markup started in the parsed source, if this document was
    /// produced by [`Document::parse`]. Programmatically built nodes have no
    /// position.
    pub fn position(&self, id: NodeId) -> Option<TextPosition> {
        self.positions.get(id.index()).copied().flatten()
    }

    /// Appends a child element to `parent` and returns its id.
    pub fn add_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        let id = self.push_node(Node {
            kind: NodeKind::Element {
                name: name.to_string(),
                attributes: Vec::new(),
            },
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends a text child to `parent` and returns its id.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let id = self.push_node(Node {
            kind: NodeKind::Text(text.to_string()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends a CDATA child to `parent` and returns its id.
    pub fn add_cdata(&mut self, parent: NodeId, data: &str) -> NodeId {
        let id = self.push_node(Node {
            kind: NodeKind::Cdata(data.to_string()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends a comment child to `parent` and returns its id.
    pub fn add_comment(&mut self, parent: NodeId, text: &str) -> NodeId {
        let id = self.push_node(Node {
            kind: NodeKind::Comment(text.to_string()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Sets (or replaces) an attribute on an element node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value.to_string();
                } else {
                    attributes.push(Attribute {
                        name: name.to_string(),
                        value: value.to_string(),
                    });
                }
            }
            _ => panic!("set_attr on non-element node"),
        }
    }

    /// Serializes the document with default options (2-space indentation and
    /// an XML declaration).
    pub fn to_xml(&self) -> String {
        self.to_xml_with(&WriteOptions::default())
    }

    /// Serializes the document with explicit [`WriteOptions`].
    pub fn to_xml_with(&self, options: &WriteOptions) -> String {
        crate::writer::write_document(self, options)
    }
}

/// A read-only cursor over an element node, offering traversal and queries.
#[derive(Debug, Clone, Copy)]
pub struct ElementRef<'a> {
    doc: &'a Document,
    id: NodeId,
}

impl<'a> ElementRef<'a> {
    /// The element's arena id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The document this element belongs to.
    pub fn document(&self) -> &'a Document {
        self.doc
    }

    /// Where this element's `<` sat in the parsed source, if known.
    pub fn position(&self) -> Option<TextPosition> {
        self.doc.position(self.id)
    }

    /// 1-based source line of this element's start tag, if known.
    pub fn line(&self) -> Option<u32> {
        self.position().map(|p| p.line)
    }

    /// 1-based source column of this element's start tag, if known.
    pub fn column(&self) -> Option<u32> {
        self.position().map(|p| p.column)
    }

    fn node(&self) -> &'a Node {
        &self.doc.nodes[self.id.index()]
    }

    /// Qualified name as written (possibly prefixed).
    pub fn qualified_name(&self) -> &'a str {
        match &self.node().kind {
            NodeKind::Element { name, .. } => name,
            _ => unreachable!("ElementRef over non-element"),
        }
    }

    /// Local name: qualified name with any `prefix:` stripped.
    pub fn name(&self) -> &'a str {
        let q = self.qualified_name();
        match q.split_once(':') {
            Some((_, local)) => local,
            None => q,
        }
    }

    /// Namespace prefix if the name is prefixed.
    pub fn prefix(&self) -> Option<&'a str> {
        self.qualified_name().split_once(':').map(|(p, _)| p)
    }

    /// The element's attributes in document order.
    pub fn attributes(&self) -> &'a [Attribute] {
        match &self.node().kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => unreachable!("ElementRef over non-element"),
        }
    }

    /// Looks up an attribute value by exact (qualified) name.
    pub fn attr(&self, name: &str) -> Option<&'a str> {
        self.attributes()
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Looks up an attribute value, falling back to `default` if absent.
    pub fn attr_or(&self, name: &str, default: &'a str) -> &'a str {
        self.attr(name).unwrap_or(default)
    }

    /// Parses an attribute as `T`, returning `None` if absent or unparsable.
    pub fn attr_parse<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.attr(name).and_then(|v| v.trim().parse().ok())
    }

    /// The parent element, if any.
    pub fn parent(&self) -> Option<ElementRef<'a>> {
        let pid = self.node().parent?;
        match self.doc.nodes[pid.index()].kind {
            NodeKind::Element { .. } => Some(ElementRef {
                doc: self.doc,
                id: pid,
            }),
            _ => None,
        }
    }

    /// Iterator over child *elements* (skipping text/comments) in order.
    pub fn child_elements(&self) -> impl Iterator<Item = ElementRef<'a>> + '_ {
        let doc = self.doc;
        self.node()
            .children
            .iter()
            .filter_map(move |&cid| match doc.nodes[cid.index()].kind {
                NodeKind::Element { .. } => Some(ElementRef { doc, id: cid }),
                _ => None,
            })
    }

    /// First child element with the given local name.
    pub fn child(&self, local_name: &str) -> Option<ElementRef<'a>> {
        self.child_elements().find(|e| e.name() == local_name)
    }

    /// All child elements with the given local name, in document order.
    pub fn children_named(&self, local_name: &str) -> Vec<ElementRef<'a>> {
        self.child_elements()
            .filter(|e| e.name() == local_name)
            .collect()
    }

    /// Depth-first search for the first descendant element with the name.
    pub fn descendant(&self, local_name: &str) -> Option<ElementRef<'a>> {
        for child in self.child_elements() {
            if child.name() == local_name {
                return Some(child);
            }
            if let Some(found) = child.descendant(local_name) {
                return Some(found);
            }
        }
        None
    }

    /// All descendant elements with the name, in document order.
    pub fn descendants_named(&self, local_name: &str) -> Vec<ElementRef<'a>> {
        let mut out = Vec::new();
        self.collect_descendants(local_name, &mut out);
        out
    }

    fn collect_descendants(&self, local_name: &str, out: &mut Vec<ElementRef<'a>>) {
        for child in self.child_elements() {
            if child.name() == local_name {
                out.push(child);
            }
            child.collect_descendants(local_name, out);
        }
    }

    /// Concatenated text content of immediate text/CDATA children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for &cid in self.node().children.iter() {
            match &self.doc.nodes[cid.index()].kind {
                NodeKind::Text(t) => out.push_str(t),
                NodeKind::Cdata(t) => out.push_str(t),
                _ => {}
            }
        }
        out
    }

    /// Concatenated text content of the whole subtree.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for &cid in self.node().children.iter() {
            match &self.doc.nodes[cid.index()].kind {
                NodeKind::Text(t) | NodeKind::Cdata(t) => out.push_str(t),
                NodeKind::Element { .. } => ElementRef {
                    doc: self.doc,
                    id: cid,
                }
                .collect_text(out),
                _ => {}
            }
        }
    }

    /// Resolves a namespace prefix to its URI by walking `xmlns` declarations
    /// up the ancestor chain. `None` prefix resolves the default namespace.
    pub fn resolve_namespace(&self, prefix: Option<&str>) -> Option<&'a str> {
        let target = match prefix {
            Some(p) => format!("xmlns:{p}"),
            None => "xmlns".to_string(),
        };
        let mut cur = Some(*self);
        while let Some(e) = cur {
            if let Some(uri) = e.attr(&target) {
                return Some(uri);
            }
            cur = e.parent();
        }
        None
    }

    /// The namespace URI of this element (default namespace if unprefixed).
    pub fn namespace(&self) -> Option<&'a str> {
        self.resolve_namespace(self.prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let mut doc = Document::new("SCL");
        let root = doc.root_id();
        doc.set_attr(root, "xmlns", "http://www.iec.ch/61850/2003/SCL");
        let header = doc.add_element(root, "Header");
        doc.set_attr(header, "id", "demo");
        let sub = doc.add_element(root, "Substation");
        doc.set_attr(sub, "name", "S1");
        let vl = doc.add_element(sub, "VoltageLevel");
        doc.set_attr(vl, "name", "VL1");
        doc.add_text(vl, "hello");

        let r = doc.root_element();
        assert_eq!(r.name(), "SCL");
        assert_eq!(r.child("Header").unwrap().attr("id"), Some("demo"));
        assert_eq!(r.descendant("VoltageLevel").unwrap().text(), "hello");
        assert_eq!(
            r.descendant("VoltageLevel").unwrap().namespace(),
            Some("http://www.iec.ch/61850/2003/SCL")
        );
        assert_eq!(r.descendants_named("VoltageLevel").len(), 1);
    }

    #[test]
    fn set_attr_replaces() {
        let mut doc = Document::new("a");
        let root = doc.root_id();
        doc.set_attr(root, "x", "1");
        doc.set_attr(root, "x", "2");
        assert_eq!(doc.root_element().attr("x"), Some("2"));
        assert_eq!(doc.root_element().attributes().len(), 1);
    }

    #[test]
    fn prefixed_names() {
        let doc = Document::parse(r#"<p:a xmlns:p="urn:x"><p:b/></p:a>"#).expect("parse prefixed");
        let root = doc.root_element();
        assert_eq!(root.name(), "a");
        assert_eq!(root.prefix(), Some("p"));
        assert_eq!(root.namespace(), Some("urn:x"));
        assert_eq!(root.child("b").unwrap().qualified_name(), "p:b");
    }

    #[test]
    fn attr_parse_types() {
        let doc = Document::parse(r#"<a n="42" f="2.5" bad="zz"/>"#).unwrap();
        let r = doc.root_element();
        assert_eq!(r.attr_parse::<u32>("n"), Some(42));
        assert_eq!(r.attr_parse::<f64>("f"), Some(2.5));
        assert_eq!(r.attr_parse::<u32>("bad"), None);
        assert_eq!(r.attr_parse::<u32>("missing"), None);
    }
}
