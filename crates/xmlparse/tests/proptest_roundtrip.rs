//! Property tests: arbitrary documents survive a write→parse roundtrip, and
//! arbitrary byte soup never panics the parser.

use proptest::prelude::*;
use sgcr_xml::{Document, NodeId, WriteOptions};

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,12}"
}

/// Text without leading/trailing whitespace ambiguity (parser drops
/// whitespace-only runs and the writer reformats), so use visible chars.
fn text_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z0-9 ,.:;()+*_-]{1,40}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

#[derive(Debug, Clone)]
enum Tree {
    Leaf {
        name: String,
        attrs: Vec<(String, String)>,
        text: Option<String>,
    },
    Node {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
}

fn attrs_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((name_strategy(), "[A-Za-z0-9 ,.:<>&'\"_-]{0,20}"), 0..4).prop_map(
        |mut v| {
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v.dedup_by(|a, b| a.0 == b.0);
            v
        },
    )
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (
        name_strategy(),
        attrs_strategy(),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| Tree::Leaf { name, attrs, text });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            attrs_strategy(),
            proptest::collection::vec(inner, 1..4),
        )
            .prop_map(|(name, attrs, children)| Tree::Node {
                name,
                attrs,
                children,
            })
    })
}

fn build(doc: &mut Document, parent: Option<NodeId>, tree: &Tree) {
    match tree {
        Tree::Leaf { name, attrs, text } => {
            let id = match parent {
                Some(p) => doc.add_element(p, name),
                None => doc.root_id(),
            };
            for (k, v) in attrs {
                doc.set_attr(id, k, v);
            }
            if let Some(t) = text {
                doc.add_text(id, t);
            }
        }
        Tree::Node {
            name,
            attrs,
            children,
        } => {
            let id = match parent {
                Some(p) => doc.add_element(p, name),
                None => doc.root_id(),
            };
            for (k, v) in attrs {
                doc.set_attr(id, k, v);
            }
            for c in children {
                build(doc, Some(id), c);
            }
        }
    }
}

fn root_name(tree: &Tree) -> &str {
    match tree {
        Tree::Leaf { name, .. } | Tree::Node { name, .. } => name,
    }
}

proptest! {
    #[test]
    fn write_parse_roundtrip_pretty(tree in tree_strategy()) {
        let mut doc = Document::new(root_name(&tree));
        build(&mut doc, None, &tree);
        let text = doc.to_xml();
        let reparsed = Document::parse(&text).expect("emitted XML must reparse");
        prop_assert_eq!(&doc, &reparsed);
    }

    #[test]
    fn write_parse_roundtrip_compact(tree in tree_strategy()) {
        let mut doc = Document::new(root_name(&tree));
        build(&mut doc, None, &tree);
        let text = doc.to_xml_with(&WriteOptions::compact());
        let reparsed = Document::parse(&text).expect("emitted XML must reparse");
        prop_assert_eq!(&doc, &reparsed);
    }

    #[test]
    fn parser_never_panics_on_garbage(input in "[a-z <>&;!?/=-]{0,200}") {
        let _ = Document::parse(&input);
    }

    #[test]
    fn parser_never_panics_on_mutated_valid(doc_text in tree_strategy().prop_map(|t| {
        let mut d = Document::new(root_name(&t));
        build(&mut d, None, &t);
        d.to_xml()
    }), cut in 0usize..100) {
        // Truncate at an arbitrary point: must error or succeed, never panic.
        let cut = cut.min(doc_text.len());
        let truncated = &doc_text[..doc_text.floor_char_boundary(cut)];
        let _ = Document::parse(truncated);
    }
}
