//! BER (ASN.1 Basic Encoding Rules) TLV encoding with definite lengths —
//! the encoding layer under MMS, GOOSE, and Sampled Values.

/// An ASN.1 tag: class bits + constructed flag + number, as a single byte
/// (low-tag-number form, sufficient for IEC 61850 PDUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u8);

impl Tag {
    /// Universal primitive tag.
    pub const fn universal(number: u8) -> Tag {
        Tag(number)
    }

    /// Context-specific primitive tag (`[n]`).
    pub const fn context(number: u8) -> Tag {
        Tag(0x80 | number)
    }

    /// Context-specific constructed tag (`[n] IMPLICIT SEQUENCE`).
    pub const fn context_constructed(number: u8) -> Tag {
        Tag(0xa0 | number)
    }

    /// Application-class constructed tag.
    pub const fn application_constructed(number: u8) -> Tag {
        Tag(0x60 | number)
    }

    /// Universal SEQUENCE.
    pub const SEQUENCE: Tag = Tag(0x30);

    /// Whether the constructed bit is set.
    pub fn is_constructed(self) -> bool {
        self.0 & 0x20 != 0
    }

    /// The tag number (low-tag-number form).
    pub fn number(self) -> u8 {
        self.0 & 0x1f
    }
}

/// Error while decoding BER data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BerError {
    /// Data ended before the announced length.
    Truncated,
    /// A length used a form we do not support (indefinite or > 4 bytes).
    BadLength,
    /// Element content was invalid for the requested type.
    BadContent(&'static str),
    /// Expected one tag, found another.
    UnexpectedTag {
        /// Tag that was expected.
        expected: u8,
        /// Tag actually found.
        found: u8,
    },
}

impl std::fmt::Display for BerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BerError::Truncated => write!(f, "truncated BER data"),
            BerError::BadLength => write!(f, "unsupported BER length form"),
            BerError::BadContent(what) => write!(f, "invalid BER content: {what}"),
            BerError::UnexpectedTag { expected, found } => {
                write!(f, "expected tag 0x{expected:02x}, found 0x{found:02x}")
            }
        }
    }
}

impl std::error::Error for BerError {}

/// Appends a TLV with the given tag and already-encoded contents.
pub fn write_tlv(out: &mut Vec<u8>, tag: Tag, contents: &[u8]) {
    out.push(tag.0);
    write_length(out, contents.len());
    out.extend_from_slice(contents);
}

/// Appends a BER definite length.
pub fn write_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else if len <= 0xff {
        out.push(0x81);
        out.push(len as u8);
    } else if len <= 0xffff {
        out.push(0x82);
        out.extend_from_slice(&(len as u16).to_be_bytes());
    } else {
        out.push(0x84);
        out.extend_from_slice(&(len as u32).to_be_bytes());
    }
}

/// Encodes a signed integer in minimal two's-complement form.
pub fn encode_integer(value: i64) -> Vec<u8> {
    let bytes = value.to_be_bytes();
    // Strip redundant leading bytes while keeping the sign unambiguous.
    let mut start = 0;
    while start < 7 {
        let b = bytes[start];
        let next_msb = bytes[start + 1] & 0x80;
        if (b == 0x00 && next_msb == 0) || (b == 0xff && next_msb != 0) {
            start += 1;
        } else {
            break;
        }
    }
    bytes[start..].to_vec()
}

/// Decodes a signed integer from BER contents.
pub fn decode_integer(data: &[u8]) -> Result<i64, BerError> {
    if data.is_empty() || data.len() > 8 {
        return Err(BerError::BadContent("integer size"));
    }
    let negative = data[0] & 0x80 != 0;
    let mut value: i64 = if negative { -1 } else { 0 };
    for &b in data {
        value = (value << 8) | i64::from(b);
    }
    Ok(value)
}

/// Encodes an unsigned integer (prepends 0x00 when the MSB is set).
pub fn encode_unsigned(value: u64) -> Vec<u8> {
    let bytes = value.to_be_bytes();
    let mut start = 0;
    while start < 7 && bytes[start] == 0 {
        start += 1;
    }
    let mut out = Vec::new();
    if bytes[start] & 0x80 != 0 {
        out.push(0);
    }
    out.extend_from_slice(&bytes[start..]);
    out
}

/// Decodes an unsigned integer from BER contents.
pub fn decode_unsigned(data: &[u8]) -> Result<u64, BerError> {
    if data.is_empty() || data.len() > 9 || (data.len() == 9 && data[0] != 0) {
        return Err(BerError::BadContent("unsigned size"));
    }
    let mut value: u64 = 0;
    for &b in data {
        value = (value << 8) | u64::from(b);
    }
    Ok(value)
}

/// Encodes an IEEE-754 single-precision float the MMS way
/// (exponent-width byte 0x08 followed by the 4 big-endian bytes).
pub fn encode_float32(value: f32) -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.push(8);
    out.extend_from_slice(&value.to_be_bytes());
    out
}

/// Decodes an MMS float.
pub fn decode_float32(data: &[u8]) -> Result<f32, BerError> {
    if data.len() == 5 && data[0] == 8 {
        Ok(f32::from_be_bytes([data[1], data[2], data[3], data[4]]))
    } else if data.len() == 4 {
        Ok(f32::from_be_bytes([data[0], data[1], data[2], data[3]]))
    } else {
        Err(BerError::BadContent("float size"))
    }
}

/// A decoded TLV element borrowing its contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Element<'a> {
    /// The tag byte.
    pub tag: Tag,
    /// The contents octets.
    pub contents: &'a [u8],
}

impl<'a> Element<'a> {
    /// Contents as a signed integer.
    pub fn as_integer(&self) -> Result<i64, BerError> {
        decode_integer(self.contents)
    }

    /// Contents as an unsigned integer.
    pub fn as_unsigned(&self) -> Result<u64, BerError> {
        decode_unsigned(self.contents)
    }

    /// Contents as a boolean.
    pub fn as_bool(&self) -> Result<bool, BerError> {
        match self.contents {
            [b] => Ok(*b != 0),
            _ => Err(BerError::BadContent("boolean size")),
        }
    }

    /// Contents as UTF-8 text.
    pub fn as_str(&self) -> Result<&'a str, BerError> {
        std::str::from_utf8(self.contents).map_err(|_| BerError::BadContent("utf-8 string"))
    }

    /// Contents as an MMS float.
    pub fn as_float32(&self) -> Result<f32, BerError> {
        decode_float32(self.contents)
    }

    /// Parses the contents as a sequence of child TLVs.
    pub fn children(&self) -> Result<Vec<Element<'a>>, BerError> {
        let mut reader = Reader::new(self.contents);
        let mut out = Vec::new();
        while !reader.is_empty() {
            out.push(reader.read_element()?);
        }
        Ok(out)
    }
}

/// A sequential reader over BER TLVs.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over raw bytes.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Peeks at the next tag without consuming.
    pub fn peek_tag(&self) -> Option<Tag> {
        self.data.get(self.pos).map(|&b| Tag(b))
    }

    /// Reads the next TLV element.
    pub fn read_element(&mut self) -> Result<Element<'a>, BerError> {
        let tag = Tag(*self.data.get(self.pos).ok_or(BerError::Truncated)?);
        self.pos += 1;
        let len = self.read_length()?;
        let start = self.pos;
        let end = start.checked_add(len).ok_or(BerError::BadLength)?;
        if end > self.data.len() {
            return Err(BerError::Truncated);
        }
        self.pos = end;
        Ok(Element {
            tag,
            contents: &self.data[start..end],
        })
    }

    /// Reads an element, requiring a specific tag.
    pub fn expect(&mut self, tag: Tag) -> Result<Element<'a>, BerError> {
        let el = self.read_element()?;
        if el.tag != tag {
            return Err(BerError::UnexpectedTag {
                expected: tag.0,
                found: el.tag.0,
            });
        }
        Ok(el)
    }

    fn read_length(&mut self) -> Result<usize, BerError> {
        let first = *self.data.get(self.pos).ok_or(BerError::Truncated)?;
        self.pos += 1;
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n = (first & 0x7f) as usize;
        if n == 0 || n > 4 {
            return Err(BerError::BadLength);
        }
        let mut len = 0usize;
        for _ in 0..n {
            let b = *self.data.get(self.pos).ok_or(BerError::Truncated)?;
            self.pos += 1;
            len = (len << 8) | b as usize;
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlv_roundtrip_short_and_long_lengths() {
        for len in [0usize, 1, 127, 128, 255, 256, 70000] {
            let contents = vec![0xabu8; len];
            let mut wire = Vec::new();
            write_tlv(&mut wire, Tag::context(3), &contents);
            let mut reader = Reader::new(&wire);
            let el = reader.read_element().unwrap();
            assert_eq!(el.tag, Tag::context(3));
            assert_eq!(el.contents.len(), len);
            assert!(reader.is_empty());
        }
    }

    #[test]
    fn integer_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            127,
            128,
            -128,
            -129,
            65535,
            -65536,
            i64::MAX,
            i64::MIN,
        ] {
            let enc = encode_integer(v);
            assert_eq!(decode_integer(&enc), Ok(v), "value {v}");
            // Minimal form: no redundant leading bytes.
            if enc.len() > 1 {
                let b0 = enc[0];
                let msb1 = enc[1] & 0x80;
                assert!(
                    !((b0 == 0 && msb1 == 0) || (b0 == 0xff && msb1 != 0)),
                    "non-minimal encoding for {v}: {enc:?}"
                );
            }
        }
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0u64, 1, 127, 128, 255, 256, u32::MAX as u64, u64::MAX] {
            let enc = encode_unsigned(v);
            assert_eq!(decode_unsigned(&enc), Ok(v), "value {v}");
        }
    }

    #[test]
    fn float_roundtrip() {
        for v in [0.0f32, 1.5, -3.25, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(decode_float32(&encode_float32(v)), Ok(v));
        }
    }

    #[test]
    fn nested_structures() {
        let mut inner = Vec::new();
        write_tlv(&mut inner, Tag::universal(0x02), &encode_integer(42));
        write_tlv(&mut inner, Tag::universal(0x02), &encode_integer(-7));
        let mut outer = Vec::new();
        write_tlv(&mut outer, Tag::SEQUENCE, &inner);

        let mut reader = Reader::new(&outer);
        let seq = reader.expect(Tag::SEQUENCE).unwrap();
        let children = seq.children().unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].as_integer(), Ok(42));
        assert_eq!(children[1].as_integer(), Ok(-7));
    }

    #[test]
    fn truncated_rejected() {
        let mut wire = Vec::new();
        write_tlv(&mut wire, Tag::context(0), &[1, 2, 3, 4]);
        for cut in 0..wire.len() {
            let mut reader = Reader::new(&wire[..cut]);
            assert!(reader.read_element().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unexpected_tag_reported() {
        let mut wire = Vec::new();
        write_tlv(&mut wire, Tag::context(1), &[]);
        let mut reader = Reader::new(&wire);
        let err = reader.expect(Tag::context(2)).unwrap_err();
        assert_eq!(
            err,
            BerError::UnexpectedTag {
                expected: 0x82,
                found: 0x81
            }
        );
    }

    #[test]
    fn indefinite_length_rejected() {
        // 0x80 length byte = indefinite form.
        let wire = [0x30, 0x80, 0x00, 0x00];
        let mut reader = Reader::new(&wire);
        assert_eq!(reader.read_element().unwrap_err(), BerError::BadLength);
    }
}
