#![warn(missing_docs)]

//! # sgcr-iec61850
//!
//! An IEC 61850 protocol stack for the smart grid cyber range — the Rust
//! substitute for the libiec61850 C library used by the SG-ML paper's
//! virtual IEDs.
//!
//! What is implemented, mirroring the paper's protocol inventory:
//!
//! * **MMS** (Manufacturing Message Specification) over TPKT/TCP — used
//!   between SCADA↔IED and PLC↔IED for interrogation and control
//!   ([`MmsServer`], [`MmsClient`], [`MmsServerApp`]);
//! * **GOOSE** — multicast L2 status exchange between IEDs with the standard
//!   stNum/sqNum retransmission curve ([`GoosePublisher`],
//!   [`GooseSubscriber`]);
//! * **SV** (Sampled Values) — fixed-rate measurement streaming
//!   ([`SvPublisher`], [`SvSubscriber`]);
//! * **R-GOOSE / R-SV** — the routable variants over UDP for
//!   inter-substation protection ([`SessionSender`], [`SessionReceiver`]);
//! * the underlying **BER** codec ([`ber`]) and the IEC 61850 **data model**
//!   (logical devices/nodes, FC-partitioned data attributes,
//!   `LD/LN$FC$DO$DA` addressing — [`DataModel`], [`ObjectRef`]).
//!
//! # Examples
//!
//! ```
//! use sgcr_iec61850::{DataModel, DataValue, SharedModel, MmsServer, MmsPdu, MmsRequest};
//!
//! let mut model = DataModel::new("IED1");
//! model.insert("IED1LD0/XCBR1$ST$Pos$stVal", DataValue::dbpos_on());
//! let mut server = MmsServer::new(SharedModel::new(model));
//!
//! let req = MmsPdu::ConfirmedRequest {
//!     invoke_id: 1,
//!     request: MmsRequest::Read { items: vec!["IED1LD0/XCBR1$ST$Pos$stVal".into()] },
//! };
//! let reply = server.handle(&req).expect("read gets a response");
//! assert!(matches!(reply, MmsPdu::ConfirmedResponse { .. }));
//! ```

pub mod ber;

mod apps;
mod goose;
mod mms;
mod model;
mod rgoose;
mod sv;

pub use apps::{MmsPollerApp, MmsServerApp, PollResults};
pub use goose::{GooseConfig, GooseObservation, GoosePdu, GoosePublisher, GooseSubscriber};
pub use mms::{
    tpkt_frame, ControlDecision, ControlHandler, DataAccessError, MmsClient, MmsPdu, MmsRequest,
    MmsResponse, MmsServer, SharedModel, TpktDecoder, MMS_PORT,
};
pub use model::{AttrNode, DataModel, DataValue, Fc, LogicalDevice, LogicalNode, ObjectRef};
pub use rgoose::{SessionPacket, SessionPayloadType, SessionReceiver, SessionSender, RGOOSE_PORT};
pub use sv::{SvAsdu, SvPdu, SvPublisher, SvSubscriber};
