//! IEC 61850-9-2 Sampled Values: PDU codec and a fixed-rate publisher.
//!
//! The cyber range uses SV (and R-SV over UDP, see [`crate::rgoose`]) to
//! stream current/voltage measurements between IEDs — the paper's PDIF
//! differential protection compares local and remote R-SV currents.

use crate::ber::{self, BerError, Reader, Tag};
use sgcr_net::{ethertype, EthernetFrame, MacAddr, SimDuration, SimTime};

/// One ASDU (application service data unit) of a sampled-values message.
#[derive(Debug, Clone, PartialEq)]
pub struct SvAsdu {
    /// Sampled-values id.
    pub sv_id: String,
    /// Sample counter (wraps at the configured rate).
    pub smp_cnt: u16,
    /// Configuration revision.
    pub conf_rev: u32,
    /// Synchronization source (0 none, 1 local, 2 global).
    pub smp_synch: u8,
    /// The sample values (phase currents/voltages, magnitude-scaled).
    pub samples: Vec<f32>,
}

impl SvAsdu {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        ber::write_tlv(&mut body, Tag::context(0), self.sv_id.as_bytes());
        ber::write_tlv(
            &mut body,
            Tag::context(1),
            &ber::encode_unsigned(u64::from(self.smp_cnt)),
        );
        ber::write_tlv(
            &mut body,
            Tag::context(2),
            &ber::encode_unsigned(u64::from(self.conf_rev)),
        );
        ber::write_tlv(&mut body, Tag::context(3), &[self.smp_synch]);
        let mut seq = Vec::new();
        for s in &self.samples {
            seq.extend_from_slice(&s.to_be_bytes());
        }
        ber::write_tlv(&mut body, Tag::context(4), &seq);
        ber::write_tlv(out, Tag::SEQUENCE, &body);
    }

    fn decode(el: &ber::Element<'_>) -> Result<SvAsdu, BerError> {
        let mut r = Reader::new(el.contents);
        let sv_id = r.expect(Tag::context(0))?.as_str()?.to_string();
        let smp_cnt = r.expect(Tag::context(1))?.as_unsigned()? as u16;
        let conf_rev = r.expect(Tag::context(2))?.as_unsigned()? as u32;
        let smp_synch = *r
            .expect(Tag::context(3))?
            .contents
            .first()
            .ok_or(BerError::BadContent("smpSynch"))?;
        let seq = r.expect(Tag::context(4))?;
        if seq.contents.len() % 4 != 0 {
            return Err(BerError::BadContent("sample sequence length"));
        }
        let samples = seq
            .contents
            .chunks_exact(4)
            .map(|c| f32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(SvAsdu {
            sv_id,
            smp_cnt,
            conf_rev,
            smp_synch,
            samples,
        })
    }
}

/// A complete SV message (one or more ASDUs).
#[derive(Debug, Clone, PartialEq)]
pub struct SvPdu {
    /// The ASDUs.
    pub asdus: Vec<SvAsdu>,
}

impl SvPdu {
    /// Encodes the Ethernet payload (APPID header + savPdu).
    pub fn encode(&self, appid: u16) -> Vec<u8> {
        let mut asdu_seq = Vec::new();
        for asdu in &self.asdus {
            asdu.encode(&mut asdu_seq);
        }
        let mut body = Vec::new();
        ber::write_tlv(
            &mut body,
            Tag::context(0),
            &ber::encode_unsigned(self.asdus.len() as u64),
        );
        ber::write_tlv(&mut body, Tag::context_constructed(2), &asdu_seq);
        let mut apdu = Vec::new();
        ber::write_tlv(&mut apdu, Tag::application_constructed(0), &body);

        let mut out = Vec::with_capacity(8 + apdu.len());
        out.extend_from_slice(&appid.to_be_bytes());
        out.extend_from_slice(&((8 + apdu.len()) as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]);
        out.extend_from_slice(&apdu);
        out
    }

    /// Decodes an SV Ethernet payload; returns `(appid, pdu)`.
    pub fn decode(payload: &[u8]) -> Result<(u16, SvPdu), BerError> {
        if payload.len() < 8 {
            return Err(BerError::Truncated);
        }
        let appid = u16::from_be_bytes([payload[0], payload[1]]);
        let mut reader = Reader::new(&payload[8..]);
        let apdu = reader.expect(Tag::application_constructed(0))?;
        let mut r = Reader::new(apdu.contents);
        let _count = r.expect(Tag::context(0))?.as_unsigned()?;
        let seq = r.expect(Tag::context_constructed(2))?;
        let mut asdus = Vec::new();
        for child in seq.children()? {
            asdus.push(SvAsdu::decode(&child)?);
        }
        Ok((appid, SvPdu { asdus }))
    }
}

/// A fixed-rate SV publisher for one stream.
#[derive(Debug)]
pub struct SvPublisher {
    /// Stream id.
    pub sv_id: String,
    /// APPID (multicast MAC selector).
    pub appid: u16,
    /// Publication interval.
    pub interval: SimDuration,
    smp_cnt: u16,
    /// Samples per second implied by `interval` (for smpCnt wrap).
    samples_per_second: u16,
}

impl SvPublisher {
    /// Creates a publisher emitting every `interval`.
    pub fn new(sv_id: &str, appid: u16, interval: SimDuration) -> SvPublisher {
        let samples_per_second = (1_000_000_000 / interval.as_nanos().max(1)) as u16;
        SvPublisher {
            sv_id: sv_id.to_string(),
            appid,
            interval,
            smp_cnt: 0,
            samples_per_second: samples_per_second.max(1),
        }
    }

    /// Builds the next frame carrying `samples`.
    pub fn emit(&mut self, _now: SimTime, src_mac: MacAddr, samples: Vec<f32>) -> EthernetFrame {
        let pdu = SvPdu {
            asdus: vec![SvAsdu {
                sv_id: self.sv_id.clone(),
                smp_cnt: self.smp_cnt,
                conf_rev: 1,
                smp_synch: 2,
                samples,
            }],
        };
        self.smp_cnt = (self.smp_cnt + 1) % self.samples_per_second;
        EthernetFrame::new(
            MacAddr::sv_multicast(self.appid),
            src_mac,
            ethertype::SV,
            pdu.encode(self.appid),
        )
    }
}

/// Subscriber for one SV stream: keeps the latest samples.
#[derive(Debug)]
pub struct SvSubscriber {
    /// Stream id to accept.
    pub sv_id: String,
    /// Latest samples.
    pub samples: Vec<f32>,
    /// Last receive time.
    pub last_rx: Option<SimTime>,
    last_cnt: Option<u16>,
    /// Number of messages with a sample-count gap (diagnostics).
    pub gaps: u64,
}

impl SvSubscriber {
    /// Creates a subscriber.
    pub fn new(sv_id: &str) -> SvSubscriber {
        SvSubscriber {
            sv_id: sv_id.to_string(),
            samples: Vec::new(),
            last_rx: None,
            last_cnt: None,
            gaps: 0,
        }
    }

    /// Processes a frame; returns `true` if it carried our stream.
    pub fn process(&mut self, now: SimTime, frame: &EthernetFrame) -> bool {
        if frame.ethertype != ethertype::SV {
            return false;
        }
        let Ok((_, pdu)) = SvPdu::decode(&frame.payload) else {
            return false;
        };
        let mut matched = false;
        for asdu in pdu.asdus {
            if asdu.sv_id != self.sv_id {
                continue;
            }
            if let Some(last) = self.last_cnt {
                let expected = last.wrapping_add(1);
                if asdu.smp_cnt != expected && asdu.smp_cnt != 0 {
                    self.gaps += 1;
                }
            }
            self.last_cnt = Some(asdu.smp_cnt);
            self.samples = asdu.samples;
            self.last_rx = Some(now);
            matched = true;
        }
        matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdu_roundtrip() {
        let pdu = SvPdu {
            asdus: vec![SvAsdu {
                sv_id: "GIED1-SV01".into(),
                smp_cnt: 37,
                conf_rev: 1,
                smp_synch: 2,
                samples: vec![1.0, -2.5, 3.25, 0.0],
            }],
        };
        let wire = pdu.encode(0x4001);
        let (appid, decoded) = SvPdu::decode(&wire).unwrap();
        assert_eq!(appid, 0x4001);
        assert_eq!(decoded, pdu);
    }

    #[test]
    fn publisher_counts_and_wraps() {
        let mut publisher = SvPublisher::new("s1", 1, SimDuration::from_millis(100));
        let src = MacAddr::from_index(1);
        // 10 samples/second → smpCnt wraps at 10.
        let mut counts = Vec::new();
        for _ in 0..12 {
            let frame = publisher.emit(SimTime::ZERO, src, vec![1.0]);
            let (_, pdu) = SvPdu::decode(&frame.payload).unwrap();
            counts.push(pdu.asdus[0].smp_cnt);
        }
        assert_eq!(counts, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1]);
    }

    #[test]
    fn subscriber_tracks_latest_and_gaps() {
        let mut publisher = SvPublisher::new("s1", 1, SimDuration::from_millis(100));
        let mut subscriber = SvSubscriber::new("s1");
        let src = MacAddr::from_index(1);
        let f1 = publisher.emit(SimTime::from_millis(0), src, vec![1.0]);
        let f2 = publisher.emit(SimTime::from_millis(100), src, vec![2.0]);
        let f3 = publisher.emit(SimTime::from_millis(200), src, vec![3.0]);
        assert!(subscriber.process(SimTime::from_millis(0), &f1));
        // Drop f2; deliver f3: gap detected, latest value taken.
        assert!(subscriber.process(SimTime::from_millis(200), &f3));
        assert_eq!(subscriber.samples, vec![3.0]);
        assert_eq!(subscriber.gaps, 1);
        // f2 late delivery still processes (counts as another gap).
        assert!(subscriber.process(SimTime::from_millis(300), &f2));
        assert_eq!(subscriber.gaps, 2);
    }

    #[test]
    fn subscriber_ignores_foreign_streams() {
        let mut publisher = SvPublisher::new("other", 1, SimDuration::from_millis(100));
        let mut subscriber = SvSubscriber::new("mine");
        let frame = publisher.emit(SimTime::ZERO, MacAddr::from_index(1), vec![9.0]);
        assert!(!subscriber.process(SimTime::ZERO, &frame));
        assert!(subscriber.samples.is_empty());
    }
}
