//! The IEC 61850 data model hosted by a virtual IED: logical devices,
//! logical nodes, data objects, and functionally-constrained data attributes.

use crate::ber::{self, BerError, Element, Tag};
use std::collections::BTreeMap;
use std::fmt;

/// Functional constraints (the subset the cyber range uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fc {
    /// Status information.
    ST,
    /// Measurands.
    MX,
    /// Control.
    CO,
    /// Configuration.
    CF,
    /// Set-points.
    SP,
    /// Description.
    DC,
}

impl Fc {
    /// Parses the two-letter mnemonic.
    pub fn parse(s: &str) -> Option<Fc> {
        Some(match s {
            "ST" => Fc::ST,
            "MX" => Fc::MX,
            "CO" => Fc::CO,
            "CF" => Fc::CF,
            "SP" => Fc::SP,
            "DC" => Fc::DC,
            _ => return None,
        })
    }
}

impl fmt::Display for Fc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Fc::ST => "ST",
            Fc::MX => "MX",
            Fc::CO => "CO",
            Fc::CF => "CF",
            Fc::SP => "SP",
            Fc::DC => "DC",
        };
        write!(f, "{s}")
    }
}

/// A value of an IEC 61850 data attribute — the MMS `Data` choice subset
/// exchanged by the cyber range.
#[derive(Debug, Clone, PartialEq)]
pub enum DataValue {
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    Uint(u64),
    /// 32-bit float (measurements).
    Float(f32),
    /// Visible string.
    Str(String),
    /// Bit string with a bit count (quality, double-point positions).
    BitString {
        /// Number of valid bits.
        bits: u8,
        /// Bit data, MSB-first.
        data: Vec<u8>,
    },
    /// UTC timestamp in nanoseconds since the simulation epoch.
    Timestamp(u64),
    /// A structure of nested values.
    Struct(Vec<DataValue>),
}

impl DataValue {
    /// Double-point position "intermediate" (00).
    pub fn dbpos_intermediate() -> DataValue {
        DataValue::BitString {
            bits: 2,
            data: vec![0b0000_0000],
        }
    }

    /// Double-point position "off / open" (01).
    pub fn dbpos_off() -> DataValue {
        DataValue::BitString {
            bits: 2,
            data: vec![0b0100_0000],
        }
    }

    /// Double-point position "on / closed" (10).
    pub fn dbpos_on() -> DataValue {
        DataValue::BitString {
            bits: 2,
            data: vec![0b1000_0000],
        }
    }

    /// Interprets a 2-bit double-point value: `Some(true)` closed,
    /// `Some(false)` open, `None` intermediate/bad.
    pub fn as_dbpos(&self) -> Option<bool> {
        match self {
            DataValue::BitString { bits: 2, data } => match data.first()? >> 6 {
                0b01 => Some(false),
                0b10 => Some(true),
                _ => None,
            },
            _ => None,
        }
    }

    /// The boolean if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            DataValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A float view of `Float`/`Int`/`Uint`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            DataValue::Float(f) => Some(f64::from(*f)),
            DataValue::Int(i) => Some(*i as f64),
            DataValue::Uint(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string if this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            DataValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// BER-encodes using the MMS `Data` context tags.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DataValue::Struct(fields) => {
                let mut inner = Vec::new();
                for f in fields {
                    f.encode(&mut inner);
                }
                ber::write_tlv(out, Tag::context_constructed(2), &inner);
            }
            DataValue::Bool(b) => {
                ber::write_tlv(out, Tag::context(3), &[u8::from(*b)]);
            }
            DataValue::BitString { bits, data } => {
                let unused = (data.len() * 8).saturating_sub(*bits as usize) as u8;
                let mut contents = vec![unused];
                contents.extend_from_slice(data);
                ber::write_tlv(out, Tag::context(4), &contents);
            }
            DataValue::Int(i) => {
                ber::write_tlv(out, Tag::context(5), &ber::encode_integer(*i));
            }
            DataValue::Uint(u) => {
                ber::write_tlv(out, Tag::context(6), &ber::encode_unsigned(*u));
            }
            DataValue::Float(f) => {
                ber::write_tlv(out, Tag::context(7), &ber::encode_float32(*f));
            }
            DataValue::Str(s) => {
                ber::write_tlv(out, Tag::context(10), s.as_bytes());
            }
            DataValue::Timestamp(ns) => {
                // 8-byte UTC time: 4-byte seconds + 3-byte fraction + quality.
                let secs = (ns / 1_000_000_000) as u32;
                let frac_ns = ns % 1_000_000_000;
                let frac = ((frac_ns as u128) << 24) / 1_000_000_000;
                let mut contents = Vec::with_capacity(8);
                contents.extend_from_slice(&secs.to_be_bytes());
                contents.extend_from_slice(&(frac as u32).to_be_bytes()[1..4]);
                contents.push(0x0a); // quality: clock not synchronised flags clear, 10 bits accuracy
                ber::write_tlv(out, Tag::context(17), &contents);
            }
        }
    }

    /// Decodes one MMS `Data` element.
    pub fn decode(el: &Element<'_>) -> Result<DataValue, BerError> {
        match el.tag {
            t if t == Tag::context_constructed(2) => {
                let mut fields = Vec::new();
                for child in el.children()? {
                    fields.push(DataValue::decode(&child)?);
                }
                Ok(DataValue::Struct(fields))
            }
            t if t == Tag::context(3) => Ok(DataValue::Bool(el.as_bool()?)),
            t if t == Tag::context(4) => {
                let (unused, data) = el
                    .contents
                    .split_first()
                    .ok_or(BerError::BadContent("empty bitstring"))?;
                let bits = (data.len() * 8).saturating_sub(*unused as usize) as u8;
                Ok(DataValue::BitString {
                    bits,
                    data: data.to_vec(),
                })
            }
            t if t == Tag::context(5) => Ok(DataValue::Int(el.as_integer()?)),
            t if t == Tag::context(6) => Ok(DataValue::Uint(el.as_unsigned()?)),
            t if t == Tag::context(7) => Ok(DataValue::Float(el.as_float32()?)),
            t if t == Tag::context(10) => Ok(DataValue::Str(el.as_str()?.to_string())),
            t if t == Tag::context(17) => {
                if el.contents.len() != 8 {
                    return Err(BerError::BadContent("utc-time size"));
                }
                let secs = u32::from_be_bytes(el.contents[..4].try_into().expect("4 bytes"));
                let frac = u32::from_be_bytes([0, el.contents[4], el.contents[5], el.contents[6]]);
                let frac_ns = ((frac as u128) * 1_000_000_000) >> 24;
                Ok(DataValue::Timestamp(
                    u64::from(secs) * 1_000_000_000 + frac_ns as u64,
                ))
            }
            other => Err(BerError::UnexpectedTag {
                expected: 0x85,
                found: other.0,
            }),
        }
    }
}

/// A reference to a data attribute: `LD/LN$FC$DO[$DA…]` (MMS item-id form).
///
/// # Examples
///
/// ```
/// use sgcr_iec61850::ObjectRef;
///
/// let r: ObjectRef = "IED1LD0/XCBR1$ST$Pos$stVal".parse().unwrap();
/// assert_eq!(r.ld, "IED1LD0");
/// assert_eq!(r.ln, "XCBR1");
/// assert_eq!(r.fc_str, "ST");
/// assert_eq!(r.path, vec!["Pos".to_string(), "stVal".to_string()]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectRef {
    /// Logical device name.
    pub ld: String,
    /// Logical node name (prefix + class + instance, e.g. `XCBR1`).
    pub ln: String,
    /// Functional constraint mnemonic.
    pub fc_str: String,
    /// Data object / attribute path components.
    pub path: Vec<String>,
}

impl ObjectRef {
    /// The functional constraint, if recognized.
    pub fn fc(&self) -> Option<Fc> {
        Fc::parse(&self.fc_str)
    }

    /// Formats back to `LD/LN$FC$a$b` form.
    pub fn to_item_id(&self) -> String {
        let mut s = format!("{}/{}${}", self.ld, self.ln, self.fc_str);
        for p in &self.path {
            s.push('$');
            s.push_str(p);
        }
        s
    }
}

impl std::str::FromStr for ObjectRef {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ld, rest) = s
            .split_once('/')
            .ok_or_else(|| format!("missing '/' in object reference {s:?}"))?;
        let mut parts = rest.split('$');
        let ln = parts.next().filter(|p| !p.is_empty()).ok_or("missing LN")?;
        let fc = parts.next().filter(|p| !p.is_empty()).ok_or("missing FC")?;
        let path: Vec<String> = parts.map(str::to_string).collect();
        if path.is_empty() || path.iter().any(String::is_empty) {
            return Err(format!("missing data object path in {s:?}"));
        }
        Ok(ObjectRef {
            ld: ld.to_string(),
            ln: ln.to_string(),
            fc_str: fc.to_string(),
            path,
        })
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_item_id())
    }
}

/// A node in an IED's attribute tree.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrNode {
    /// A leaf attribute holding a value.
    Leaf(DataValue),
    /// A composite data object with named children (ordered).
    Composite(BTreeMap<String, AttrNode>),
}

impl AttrNode {
    fn get(&self, path: &[String]) -> Option<&AttrNode> {
        match path.split_first() {
            None => Some(self),
            Some((head, rest)) => match self {
                AttrNode::Composite(children) => children.get(head)?.get(rest),
                AttrNode::Leaf(_) => None,
            },
        }
    }

    fn get_mut(&mut self, path: &[String]) -> Option<&mut AttrNode> {
        match path.split_first() {
            None => Some(self),
            Some((head, rest)) => match self {
                AttrNode::Composite(children) => children.get_mut(head)?.get_mut(rest),
                AttrNode::Leaf(_) => None,
            },
        }
    }

    /// Converts the subtree to a (possibly nested) [`DataValue`].
    pub fn to_value(&self) -> DataValue {
        match self {
            AttrNode::Leaf(v) => v.clone(),
            AttrNode::Composite(children) => {
                DataValue::Struct(children.values().map(AttrNode::to_value).collect())
            }
        }
    }
}

/// A logical node: a named bag of FC-partitioned data objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LogicalNode {
    /// FC → attribute tree root.
    pub by_fc: BTreeMap<String, BTreeMap<String, AttrNode>>,
}

/// A logical device: named logical nodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LogicalDevice {
    /// LN name → node.
    pub nodes: BTreeMap<String, LogicalNode>,
}

/// The full data model of one virtual IED.
///
/// # Examples
///
/// ```
/// use sgcr_iec61850::{DataModel, DataValue};
///
/// let mut model = DataModel::new("IED1");
/// model.insert("LD0/XCBR1$ST$Pos$stVal", DataValue::dbpos_on());
/// let r = model.read("LD0/XCBR1$ST$Pos$stVal").unwrap();
/// assert_eq!(r.as_dbpos(), Some(true));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataModel {
    /// The IED name (MMS identity).
    pub ied_name: String,
    /// LD name → device.
    pub devices: BTreeMap<String, LogicalDevice>,
}

impl DataModel {
    /// Creates an empty model for an IED.
    pub fn new(ied_name: &str) -> DataModel {
        DataModel {
            ied_name: ied_name.to_string(),
            devices: BTreeMap::new(),
        }
    }

    /// Inserts (or replaces) a leaf attribute, creating intermediate nodes.
    ///
    /// # Panics
    ///
    /// Panics if `item_id` does not parse as an object reference.
    pub fn insert(&mut self, item_id: &str, value: DataValue) {
        let r: ObjectRef = item_id.parse().expect("valid object reference");
        let ld = self.devices.entry(r.ld.clone()).or_default();
        let ln = ld.nodes.entry(r.ln.clone()).or_default();
        let root = ln.by_fc.entry(r.fc_str.clone()).or_default();

        let (first, rest) = r.path.split_first().expect("non-empty path");
        let mut node = root
            .entry(first.clone())
            .or_insert_with(|| AttrNode::Composite(BTreeMap::new()));
        for part in rest {
            let AttrNode::Composite(children) = node else {
                // Replacing a leaf with a deeper path: rebuild as composite.
                *node = AttrNode::Composite(BTreeMap::new());
                let AttrNode::Composite(children) = node else {
                    unreachable!()
                };
                node = children
                    .entry(part.clone())
                    .or_insert_with(|| AttrNode::Composite(BTreeMap::new()));
                continue;
            };
            node = children
                .entry(part.clone())
                .or_insert_with(|| AttrNode::Composite(BTreeMap::new()));
        }
        *node = AttrNode::Leaf(value);
    }

    fn resolve(&self, item_id: &str) -> Option<(&AttrNode, ObjectRef)> {
        let r: ObjectRef = item_id.parse().ok()?;
        let ld = self.devices.get(&r.ld)?;
        let ln = ld.nodes.get(&r.ln)?;
        let root = ln.by_fc.get(&r.fc_str)?;
        let (first, rest) = r.path.split_first()?;
        let node = root.get(first)?.get(rest)?;
        Some((node, r))
    }

    /// Reads an attribute (or whole data object as a struct).
    pub fn read(&self, item_id: &str) -> Option<DataValue> {
        self.resolve(item_id).map(|(node, _)| node.to_value())
    }

    /// Writes a leaf attribute; returns `false` if the path does not exist
    /// or is not a leaf.
    pub fn write(&mut self, item_id: &str, value: DataValue) -> bool {
        let Ok(r) = item_id.parse::<ObjectRef>() else {
            return false;
        };
        let Some(ld) = self.devices.get_mut(&r.ld) else {
            return false;
        };
        let Some(ln) = ld.nodes.get_mut(&r.ln) else {
            return false;
        };
        let Some(root) = ln.by_fc.get_mut(&r.fc_str) else {
            return false;
        };
        let Some((first, rest)) = r.path.split_first() else {
            return false;
        };
        let Some(node) = root.get_mut(first).and_then(|n| n.get_mut(rest)) else {
            return false;
        };
        match node {
            AttrNode::Leaf(v) => {
                *v = value;
                true
            }
            AttrNode::Composite(_) => false,
        }
    }

    /// Whether an item exists (leaf or composite).
    pub fn contains(&self, item_id: &str) -> bool {
        self.resolve(item_id).is_some()
    }

    /// Logical device names.
    pub fn device_names(&self) -> Vec<String> {
        self.devices.keys().cloned().collect()
    }

    /// Logical node names within a device.
    pub fn node_names(&self, ld: &str) -> Vec<String> {
        self.devices
            .get(ld)
            .map(|d| d.nodes.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// All leaf item-ids in deterministic order (for name lists / tests).
    pub fn leaf_item_ids(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (ld_name, ld) in &self.devices {
            for (ln_name, ln) in &ld.nodes {
                for (fc, root) in &ln.by_fc {
                    for (do_name, node) in root {
                        collect_leaves(
                            node,
                            &format!("{ld_name}/{ln_name}${fc}${do_name}"),
                            &mut out,
                        );
                    }
                }
            }
        }
        out
    }
}

fn collect_leaves(node: &AttrNode, prefix: &str, out: &mut Vec<String>) {
    match node {
        AttrNode::Leaf(_) => out.push(prefix.to_string()),
        AttrNode::Composite(children) => {
            for (name, child) in children {
                collect_leaves(child, &format!("{prefix}${name}"), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::Reader;

    #[test]
    fn object_ref_parse_and_format() {
        let r: ObjectRef = "LD1/PTOC1$ST$Op$general".parse().unwrap();
        assert_eq!(r.fc(), Some(Fc::ST));
        assert_eq!(r.to_item_id(), "LD1/PTOC1$ST$Op$general");
        assert!("no-slash".parse::<ObjectRef>().is_err());
        assert!("LD/LN".parse::<ObjectRef>().is_err());
        assert!("LD/LN$ST".parse::<ObjectRef>().is_err());
    }

    #[test]
    fn model_insert_read_write() {
        let mut m = DataModel::new("IED1");
        m.insert("LD0/MMXU1$MX$TotW$mag$f", DataValue::Float(12.5));
        m.insert("LD0/XCBR1$ST$Pos$stVal", DataValue::dbpos_on());
        assert_eq!(
            m.read("LD0/MMXU1$MX$TotW$mag$f"),
            Some(DataValue::Float(12.5))
        );
        assert!(m.write("LD0/MMXU1$MX$TotW$mag$f", DataValue::Float(13.0)));
        assert_eq!(
            m.read("LD0/MMXU1$MX$TotW$mag$f"),
            Some(DataValue::Float(13.0))
        );
        assert!(!m.write("LD0/NOPE1$MX$TotW$mag$f", DataValue::Float(0.0)));
        assert!(!m.write("LD0/MMXU1$MX$TotW$mag", DataValue::Float(0.0)));
    }

    #[test]
    fn composite_read_as_struct() {
        let mut m = DataModel::new("IED1");
        m.insert("LD0/MMXU1$MX$TotW$mag$f", DataValue::Float(1.0));
        m.insert(
            "LD0/MMXU1$MX$TotW$q",
            DataValue::BitString {
                bits: 13,
                data: vec![0, 0],
            },
        );
        let v = m.read("LD0/MMXU1$MX$TotW").unwrap();
        assert!(matches!(v, DataValue::Struct(fields) if fields.len() == 2));
    }

    #[test]
    fn leaf_item_ids_sorted() {
        let mut m = DataModel::new("IED1");
        m.insert("LD0/XCBR1$ST$Pos$stVal", DataValue::Bool(true));
        m.insert("LD0/PTOC1$ST$Op$general", DataValue::Bool(false));
        let ids = m.leaf_item_ids();
        assert_eq!(
            ids,
            vec![
                "LD0/PTOC1$ST$Op$general".to_string(),
                "LD0/XCBR1$ST$Pos$stVal".to_string(),
            ]
        );
    }

    #[test]
    fn dbpos_helpers() {
        assert_eq!(DataValue::dbpos_on().as_dbpos(), Some(true));
        assert_eq!(DataValue::dbpos_off().as_dbpos(), Some(false));
        assert_eq!(DataValue::dbpos_intermediate().as_dbpos(), None);
    }

    #[test]
    fn data_value_ber_roundtrip() {
        let values = vec![
            DataValue::Bool(true),
            DataValue::Int(-42),
            DataValue::Uint(65536),
            DataValue::Float(2.5),
            DataValue::Str("EPIC/GIED1".into()),
            DataValue::dbpos_on(),
            DataValue::Timestamp(1_234_567_890_123_456_789),
            DataValue::Struct(vec![
                DataValue::Float(1.0),
                DataValue::Struct(vec![DataValue::Bool(false)]),
            ]),
        ];
        for v in values {
            let mut wire = Vec::new();
            v.encode(&mut wire);
            let mut reader = Reader::new(&wire);
            let el = reader.read_element().unwrap();
            let decoded = DataValue::decode(&el).unwrap();
            match (&v, &decoded) {
                // Timestamp fraction loses sub-2^-24-second precision.
                (DataValue::Timestamp(a), DataValue::Timestamp(b)) => {
                    assert!((*a as i128 - *b as i128).abs() < 100, "{a} vs {b}");
                }
                _ => assert_eq!(v, decoded),
            }
        }
    }
}
